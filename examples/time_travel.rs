//! Fine-grained version control (paper §III-C): every sync-queue node the
//! cloud applies becomes a retained version; browse the history and
//! restore any of them. Also demonstrates the threaded cloud endpoint and
//! the binary wire format.
//!
//! ```text
//! cargo run --example time_travel
//! ```

use deltacfs::core::{spawn_cloud, wire, ClientId, DeltaCfsClient, DeltaCfsConfig, Version};
use deltacfs::net::SimClock;
use deltacfs::vfs::Vfs;

fn main() {
    let clock = SimClock::new();
    let mut client = DeltaCfsClient::new(ClientId(1), DeltaCfsConfig::new(), clock.clone());
    let mut fs = Vfs::new();
    fs.enable_event_log();

    // The cloud runs on its own thread; updates cross it as real bytes.
    let (cloud, join) = spawn_cloud();

    let edit_and_sync = |content: &[u8], client: &mut DeltaCfsClient, fs: &mut Vfs| {
        if !fs.exists("/story.txt") {
            fs.create("/story.txt").unwrap();
        }
        fs.truncate("/story.txt", 0).unwrap();
        fs.write("/story.txt", 0, content).unwrap();
        for e in fs.drain_events() {
            client.handle_event(&e, fs);
        }
        clock.advance(4_000);
        for group in client.tick(fs) {
            // Round-trip each message through the wire format, as a real
            // transport would.
            let shipped: Vec<_> = group
                .iter()
                .map(|m| wire::decode(&wire::encode(m)).expect("wire round-trip"))
                .collect();
            cloud.apply_txn(shipped).expect("cloud alive");
        }
    };

    edit_and_sync(b"Once upon a time.", &mut client, &mut fs);
    edit_and_sync(
        b"Once upon a time, there was a sync engine.",
        &mut client,
        &mut fs,
    );
    edit_and_sync(b"THE END.", &mut client, &mut fs);

    let server = cloud.shutdown().expect("cloud alive");
    join.join().expect("cloud thread");

    let history = server.version_history("/story.txt");
    println!("versions retained for /story.txt:");
    for v in &history {
        let content = server.file_at("/story.txt", *v).unwrap();
        println!("  {v}  {:?}", String::from_utf8_lossy(content));
    }

    // Restore the middle draft.
    let mut server = server;
    let wanted: Version = history[history.len() - 2];
    let restored_as = Version {
        client: ClientId(1),
        counter: 999,
    };
    assert!(server.restore("/story.txt", wanted, restored_as));
    println!(
        "\nrestored {} -> current content: {:?}",
        wanted,
        String::from_utf8_lossy(server.file("/story.txt").unwrap())
    );
}
