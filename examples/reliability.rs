//! Data integrity and consistency (paper §III-E, Table IV): silent
//! corruption and crash inconsistency are detected by DeltaCFS's checksum
//! store instead of being propagated to the cloud.
//!
//! ```text
//! cargo run --example reliability
//! ```

use deltacfs::core::{DeltaCfsConfig, DeltaCfsSystem, SyncEngine};
use deltacfs::net::{LinkSpec, SimClock};
use deltacfs::vfs::Vfs;

fn main() {
    let clock = SimClock::new();
    let mut sys = DeltaCfsSystem::new(DeltaCfsConfig::new(), clock.clone(), LinkSpec::pc());
    let mut fs = Vfs::new();
    fs.enable_event_log();

    // A synced photo library file.
    fs.create("/photo.raw").unwrap();
    fs.write("/photo.raw", 0, &vec![0xC4u8; 256 * 1024])
        .unwrap();
    for e in fs.drain_events() {
        sys.on_event(&e, &fs);
    }
    clock.advance(4_000);
    sys.tick(&fs);
    println!("photo synced: {} KB on the cloud", 256);

    // --- Scenario 1: silent disk corruption -----------------------------
    fs.inject_bit_flip("/photo.raw", 100_000, 2).unwrap();
    // The application touches the same block.
    fs.write("/photo.raw", 100_050, b"tag").unwrap();
    for e in fs.drain_events() {
        sys.on_event(&e, &fs);
    }
    clock.advance(4_000);
    sys.tick(&fs);

    let issue = &sys.client().issues()[0];
    println!(
        "corruption detected in {} (blocks {:?}); file quarantined: {}",
        issue.path,
        issue.blocks,
        sys.client().is_quarantined("/photo.raw")
    );
    // Recover from the cloud's good copy.
    let good = sys.server().file("/photo.raw").unwrap().to_vec();
    sys.client_mut().recover_file("/photo.raw", &good, &mut fs);
    println!(
        "recovered from cloud; quarantine lifted: {}",
        !sys.client().is_quarantined("/photo.raw")
    );

    // --- Scenario 2: crash inconsistency --------------------------------
    // Power was cut during a write: data blocks changed underneath the
    // interception layer (ordered-journaling inconsistency).
    fs.inject_torn_write("/photo.raw", 8_192, &vec![0u8; 2_000])
        .unwrap();
    let found = sys
        .client_mut()
        .crash_recovery_scan(&["/photo.raw".to_string()], &fs);
    println!(
        "post-crash scan flagged {} file(s): blocks {:?}",
        found.len(),
        found[0].blocks
    );
    let good = sys.server().file("/photo.raw").unwrap().to_vec();
    sys.client_mut().recover_file("/photo.raw", &good, &mut fs);
    assert_eq!(fs.peek_all("/photo.raw").unwrap(), good);
    println!("file restored to the cloud's consistent version");

    // --- Scenario 3: causal upload order ---------------------------------
    fs.create("/video.mp4").unwrap();
    fs.write("/video.mp4", 0, &vec![9u8; 2 * 1024 * 1024])
        .unwrap();
    for e in fs.drain_events() {
        sys.on_event(&e, &fs);
    }
    clock.advance(500);
    fs.create("/video.thumb").unwrap();
    fs.write("/video.thumb", 0, &vec![9u8; 500]).unwrap();
    for e in fs.drain_events() {
        sys.on_event(&e, &fs);
    }
    clock.advance(10_000);
    sys.tick(&fs);
    sys.finish(&fs);
    let order = sys.server().apply_order();
    let video = order.iter().position(|p| p == "/video.mp4").unwrap();
    let thumb = order.iter().position(|p| p == "/video.thumb").unwrap();
    println!(
        "causal order preserved: the 2 MB video reached the cloud before its thumbnail ({video} < {thumb})"
    );
    assert!(video < thumb);
}
