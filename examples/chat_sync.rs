//! The in-place-update scenario: a chat application's SQLite database
//! (the paper's WeChat trace) synchronized over a mobile link.
//!
//! ```text
//! cargo run --release --example chat_sync
//! ```
//!
//! Every message the app stores triggers a journaled page update of a
//! large database file — the workload where delta sync is "abused" and
//! NFS-like file RPC shines.

use deltacfs::baselines::DropsyncEngine;
use deltacfs::core::{DeltaCfsConfig, DeltaCfsSystem, SyncEngine};
use deltacfs::net::{LinkSpec, PlatformProfile, SimClock};
use deltacfs::vfs::Vfs;
use deltacfs::workloads::{replay, TraceConfig, WeChatTrace};

fn main() {
    let scale = 0.05; // 6.5 MB database, ~19 modifications
    let cfg = TraceConfig::scaled(scale);
    println!(
        "WeChat trace at scale {scale}: {}\n",
        deltacfs::workloads::Trace::meta(&WeChatTrace::new(cfg)).description
    );
    let mobile = PlatformProfile::mobile();

    // DeltaCFS on the phone.
    let clock = SimClock::new();
    let mut deltacfs =
        DeltaCfsSystem::new(DeltaCfsConfig::new(), clock.clone(), LinkSpec::mobile());
    let mut fs = Vfs::new();
    let report = replay(&WeChatTrace::new(cfg), &mut fs, &mut deltacfs, &clock, 100);
    let er = deltacfs.report();
    println!(
        "DeltaCFS   ticks {:>9}  up {:>8.2} MB  down {:>6.2} MB  TUE {:>5.1}",
        mobile.ticks(&er.client_cost, er.traffic.total_bytes()),
        er.traffic.bytes_up as f64 / 1048576.0,
        er.traffic.bytes_down as f64 / 1048576.0,
        er.traffic.total_bytes() as f64 / report.update_bytes as f64,
    );

    // Dropsync (full-file uploads through the Dropbox API).
    let clock = SimClock::new();
    let mut dropsync = DropsyncEngine::with_defaults(clock.clone());
    let mut fs = Vfs::new();
    let report = replay(&WeChatTrace::new(cfg), &mut fs, &mut dropsync, &clock, 100);
    let er = dropsync.report();
    println!(
        "Dropsync   ticks {:>9}  up {:>8.2} MB  down {:>6.2} MB  TUE {:>5.1}  ({} full uploads)",
        mobile.ticks(&er.client_cost, er.traffic.total_bytes()),
        er.traffic.bytes_up as f64 / 1048576.0,
        er.traffic.bytes_down as f64 / 1048576.0,
        er.traffic.total_bytes() as f64 / report.update_bytes as f64,
        dropsync.upload_count(),
    );

    println!(
        "\nShape to look for (paper Fig. 2 / Fig. 9): Dropsync re-uploads the database \
         wholesale and keeps the radio saturated; DeltaCFS ships only the written pages."
    );
}
