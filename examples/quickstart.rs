//! Quickstart: sync a folder to the cloud with DeltaCFS.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Creates a file, edits it in place, saves it Word-style (transactional
//! rename), and shows which mechanism synchronized each change and how
//! many bytes it cost.

use deltacfs::core::{DeltaCfsConfig, DeltaCfsSystem, SyncEngine};
use deltacfs::net::{LinkSpec, SimClock};
use deltacfs::vfs::Vfs;

fn sync(sys: &mut DeltaCfsSystem, fs: &mut Vfs, clock: &SimClock, label: &str) {
    for event in fs.drain_events() {
        sys.on_event(&event, fs);
    }
    clock.advance(4_000); // past the 3 s sync-queue delay
    let before = sys.report().traffic.bytes_up;
    sys.tick(fs);
    let after = sys.report().traffic.bytes_up;
    println!("{label:<40} uploaded {:>8} bytes", after - before);
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let clock = SimClock::new();
    let mut sys = DeltaCfsSystem::new(DeltaCfsConfig::new(), clock.clone(), LinkSpec::pc());
    let mut fs = Vfs::new();
    fs.enable_event_log();

    // 1. A new file: full content ships as intercepted writes (RPC).
    fs.create("/report.txt")?;
    fs.write("/report.txt", 0, "draft: ".repeat(10_000).as_bytes())?;
    sync(&mut sys, &mut fs, &clock, "initial 70 KB file");

    // 2. An in-place edit: only the written bytes ship.
    fs.write("/report.txt", 7, b"FINAL")?;
    sync(&mut sys, &mut fs, &clock, "5-byte in-place edit");

    // 3. A transactional save (Word-style): the relation table recognizes
    //    the pattern and a local bitwise delta ships instead of the whole
    //    rewritten file.
    let mut doc = fs.peek_all("/report.txt")?;
    doc.extend_from_slice(b" -- appended paragraph");
    fs.rename("/report.txt", "/report.txt.bak")?;
    for e in fs.drain_events() {
        sys.on_event(&e, &fs);
    }
    fs.create("/report.tmp")?;
    fs.write("/report.tmp", 0, &doc)?;
    fs.close_path("/report.tmp")?;
    for e in fs.drain_events() {
        sys.on_event(&e, &fs);
    }
    fs.rename("/report.tmp", "/report.txt")?;
    for e in fs.drain_events() {
        sys.on_event(&e, &fs);
    }
    fs.unlink("/report.txt.bak")?;
    sync(
        &mut sys,
        &mut fs,
        &clock,
        "transactional save (70 KB rewrite)",
    );

    // The cloud converged to the local state.
    let local = fs.peek_all("/report.txt")?;
    assert_eq!(sys.server().file("/report.txt"), Some(&local[..]));
    println!(
        "\ncloud content matches local content ({} bytes)",
        local.len()
    );

    let report = sys.report();
    println!(
        "totals: {} bytes up, {} bytes down, zero strong checksums computed ({} bytes bitwise-compared)",
        report.traffic.bytes_up, report.traffic.bytes_down, report.client_cost.bytes_compared
    );
    assert_eq!(report.client_cost.bytes_strong_hashed, 0);
    Ok(())
}
