//! Multi-client sharing (paper §III-D): two devices editing one folder,
//! with cloud-side forwarding and first-write-wins conflict handling.
//!
//! ```text
//! cargo run --example multi_client
//! ```

use deltacfs::core::{DeltaCfsConfig, SyncHub};
use deltacfs::net::{LinkSpec, SimClock};

fn main() {
    let clock = SimClock::new();
    let mut hub = SyncHub::new(clock.clone());
    let laptop = hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
    let phone = hub.add_client(DeltaCfsConfig::new(), LinkSpec::mobile());

    // The laptop creates a shared note.
    hub.fs_mut(laptop).create("/notes.md").unwrap();
    hub.fs_mut(laptop)
        .write("/notes.md", 0, b"# Shopping\n- milk\n")
        .unwrap();
    hub.pump();
    clock.advance(4_000);
    hub.pump();
    println!(
        "after laptop edit: phone sees {:?}",
        String::from_utf8_lossy(&hub.fs(phone).peek_all("/notes.md").unwrap())
    );

    // The phone appends; the laptop receives the forwarded increment.
    let len = hub.fs(phone).peek_all("/notes.md").unwrap().len() as u64;
    hub.fs_mut(phone)
        .write("/notes.md", len, b"- eggs\n")
        .unwrap();
    hub.pump();
    clock.advance(4_000);
    hub.pump();
    println!(
        "after phone edit:  laptop sees {:?}",
        String::from_utf8_lossy(&hub.fs(laptop).peek_all("/notes.md").unwrap())
    );

    // Concurrent conflicting edits: first write wins, the loser becomes a
    // conflict copy.
    hub.fs_mut(laptop)
        .write("/notes.md", 2, b"GROCERIES")
        .unwrap();
    hub.fs_mut(phone)
        .write("/notes.md", 2, b"Weekend  ")
        .unwrap();
    hub.pump();
    clock.advance(4_000);
    hub.pump();
    hub.flush();

    println!("\ncloud files after concurrent edits:");
    for path in hub.server().paths() {
        println!("  {path}");
    }
    let conflicts = hub.conflicts();
    println!("client-side conflicts recorded: {}", conflicts.len());
    assert!(
        hub.server().paths().iter().any(|p| p.contains("conflict")) || !conflicts.is_empty(),
        "the losing edit must survive somewhere"
    );
}
