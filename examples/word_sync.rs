//! The paper's headline scenario: an editing session in Microsoft Word,
//! synchronized by DeltaCFS vs the Dropbox- and NFS-like baselines.
//!
//! ```text
//! cargo run --release --example word_sync
//! ```
//!
//! Replays the Word trace (transactional saves of a growing document,
//! Fig. 3) through three engines on identical input and prints the
//! paper's headline quantities: client work, upload and download volume.

use deltacfs::baselines::{DropboxEngine, NfsEngine};
use deltacfs::core::{DeltaCfsConfig, DeltaCfsSystem, SyncEngine};
use deltacfs::net::{LinkSpec, PlatformProfile, SimClock};
use deltacfs::vfs::Vfs;
use deltacfs::workloads::{replay, TraceConfig, WordTrace};

fn run(name: &str, mut engine: Box<dyn SyncEngine>, clock: SimClock, scale: f64) {
    let mut fs = Vfs::new();
    let trace = WordTrace::new(TraceConfig::scaled(scale));
    let report = replay(&trace, &mut fs, engine.as_mut(), &clock, 100);
    let er = engine.report();
    let pc = PlatformProfile::pc();
    let ticks = pc.ticks(&er.client_cost, er.traffic.total_bytes());
    println!(
        "{name:<10} client-ticks {:>8}  up {:>7.2} MB  down {:>7.2} MB  (app wrote {:.2} MB)",
        ticks,
        er.traffic.bytes_up as f64 / 1048576.0,
        er.traffic.bytes_down as f64 / 1048576.0,
        report.update_bytes as f64 / 1048576.0,
    );
}

fn main() {
    // 10% of the paper's document size keeps this example snappy; ratios
    // are preserved. Pass `--release` or be patient.
    let scale = 0.1;
    let trace = WordTrace::new(TraceConfig::scaled(scale));
    println!(
        "Word trace at scale {scale}: {}\n",
        deltacfs::workloads::Trace::meta(&trace).description
    );

    let clock = SimClock::new();
    run(
        "DeltaCFS",
        Box::new(DeltaCfsSystem::new(
            DeltaCfsConfig::new(),
            clock.clone(),
            LinkSpec::pc(),
        )),
        clock,
        scale,
    );
    let clock = SimClock::new();
    run(
        "Dropbox",
        Box::new(DropboxEngine::with_defaults(clock.clone())),
        clock,
        scale,
    );
    let clock = SimClock::new();
    run(
        "NFSv4",
        Box::new(NfsEngine::with_defaults(clock.clone())),
        clock,
        scale,
    );

    println!(
        "\nShape to look for (paper Fig. 8c / Table II): DeltaCFS uploads the least and \
         does the least client work; NFS moves whole files both ways; Dropbox burns CPU \
         re-hashing the document on every save."
    );
}
