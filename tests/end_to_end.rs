//! End-to-end integration: full traces through full engines, checking
//! convergence and the paper's qualitative claims.

use deltacfs::baselines::{DropboxEngine, NfsEngine, SeafileEngine};
use deltacfs::core::{DeltaCfsConfig, DeltaCfsSystem, SyncEngine};
use deltacfs::net::{LinkSpec, PlatformProfile, SimClock};
use deltacfs::vfs::Vfs;
use deltacfs::workloads::{
    replay, AppendTrace, GeditTrace, RandomWriteTrace, Trace, TraceConfig, WeChatTrace, WordTrace,
};

const SCALE: f64 = 0.02;

fn run_deltacfs(trace: &dyn Trace) -> (DeltaCfsSystem, Vfs, u64) {
    let clock = SimClock::new();
    let mut sys = DeltaCfsSystem::new(DeltaCfsConfig::new(), clock.clone(), LinkSpec::pc());
    let mut fs = Vfs::new();
    let report = replay(trace, &mut fs, &mut sys, &clock, 100);
    (sys, fs, report.update_bytes)
}

/// The cloud's files must byte-match the client's for every trace.
#[test]
fn deltacfs_converges_on_every_standard_trace() {
    let cfg = TraceConfig::scaled(SCALE);
    let traces: Vec<Box<dyn Trace>> = vec![
        Box::new(AppendTrace::new(cfg)),
        Box::new(RandomWriteTrace::new(cfg)),
        Box::new(WordTrace::new(cfg)),
        Box::new(WeChatTrace::new(cfg)),
        Box::new(GeditTrace::new(cfg)),
    ];
    for trace in traces {
        let name = trace.meta().name;
        let (sys, fs, _) = run_deltacfs(trace.as_ref());
        for path in fs.walk_files("/").unwrap() {
            let local = fs.peek_all(path.as_str()).unwrap();
            assert_eq!(
                sys.server().file(path.as_str()),
                Some(&local[..]),
                "{name}: {path} diverged"
            );
        }
        // And no stray temp files on the cloud.
        for cloud_path in sys.server().paths() {
            assert!(
                fs.exists(&cloud_path),
                "{name}: cloud has {cloud_path} which does not exist locally"
            );
        }
    }
}

#[test]
fn gedit_trace_link_pattern_syncs_exactly() {
    let cfg = TraceConfig::scaled(0.2);
    let (sys, fs, update) = run_deltacfs(&GeditTrace::new(cfg));
    let local = fs.peek_all("/notes.txt").unwrap();
    assert_eq!(sys.server().file("/notes.txt"), Some(&local[..]));
    // The backup hard link exists on both sides.
    assert!(fs.exists("/notes.txt~"));
    assert!(sys.server().file("/notes.txt~").is_some());
    // Rewrite-everything saves synced with far less traffic than written.
    let up = sys.report().traffic.bytes_up;
    assert!(up < update, "uploaded {up} of {update} written");
}

#[test]
fn deltacfs_never_strong_hashes_anywhere() {
    let cfg = TraceConfig::scaled(SCALE);
    for trace in [
        Box::new(WordTrace::new(cfg)) as Box<dyn Trace>,
        Box::new(WeChatTrace::new(cfg)),
    ] {
        let (sys, _, _) = run_deltacfs(trace.as_ref());
        assert_eq!(sys.report().client_cost.bytes_strong_hashed, 0);
        assert_eq!(sys.server().cost().bytes_strong_hashed, 0);
    }
}

#[test]
fn paper_claim_client_work_ordering_on_inplace_traces() {
    // Table II: DeltaCFS ≪ Seafile ≪ Dropbox on append/random/wechat.
    let cfg = TraceConfig::scaled(SCALE);
    let pc = PlatformProfile::pc();
    for trace_ctor in [
        || Box::new(AppendTrace::new(TraceConfig::scaled(SCALE))) as Box<dyn Trace>,
        || Box::new(WeChatTrace::new(TraceConfig::scaled(SCALE))) as Box<dyn Trace>,
    ] {
        let _ = cfg;
        let mut ticks = Vec::new();
        // DeltaCFS
        let (sys, _, _) = run_deltacfs(trace_ctor().as_ref());
        let er = sys.report();
        ticks.push((
            "deltacfs",
            pc.ticks(&er.client_cost, er.traffic.total_bytes()),
        ));
        // Seafile
        let clock = SimClock::new();
        let mut engine = SeafileEngine::with_defaults(clock.clone());
        let mut fs = Vfs::new();
        replay(trace_ctor().as_ref(), &mut fs, &mut engine, &clock, 100);
        let er = engine.report();
        ticks.push((
            "seafile",
            pc.ticks(&er.client_cost, er.traffic.total_bytes()),
        ));
        // Dropbox
        let clock = SimClock::new();
        let mut engine = DropboxEngine::with_defaults(clock.clone());
        let mut fs = Vfs::new();
        replay(trace_ctor().as_ref(), &mut fs, &mut engine, &clock, 100);
        let er = engine.report();
        ticks.push((
            "dropbox",
            pc.ticks(&er.client_cost, er.traffic.total_bytes()),
        ));

        assert!(
            ticks[0].1 < ticks[1].1 && ticks[1].1 < ticks[2].1,
            "ordering violated: {ticks:?}"
        );
    }
}

#[test]
fn paper_claim_nfs_word_downloads_whole_files() {
    let clock = SimClock::new();
    let mut engine = NfsEngine::with_defaults(clock.clone());
    let mut fs = Vfs::new();
    let trace = WordTrace::new(TraceConfig::scaled(SCALE));
    replay(&trace, &mut fs, &mut engine, &clock, 100);
    let t = engine.report().traffic;
    // The paper's surprise: the server sends back nearly as much as the
    // client uploads, although the trace never reads.
    assert!(
        t.bytes_down * 3 > t.bytes_up,
        "down {} vs up {}",
        t.bytes_down,
        t.bytes_up
    );
}

#[test]
fn paper_claim_seafile_uploads_dwarf_deltacfs_on_small_writes() {
    let cfg = TraceConfig::scaled(SCALE);
    let clock = SimClock::new();
    let mut seafile = SeafileEngine::with_defaults(clock.clone());
    let mut fs = Vfs::new();
    replay(&WeChatTrace::new(cfg), &mut fs, &mut seafile, &clock, 100);
    let seafile_up = seafile.report().traffic.bytes_up;

    let (sys, _, _) = run_deltacfs(&WeChatTrace::new(cfg));
    let deltacfs_up = sys.report().traffic.bytes_up;
    assert!(
        seafile_up > deltacfs_up,
        "seafile {seafile_up} vs deltacfs {deltacfs_up}"
    );
}

#[test]
fn deltacfs_download_traffic_is_negligible() {
    // §IV-C1: "There is almost no data transmitted from server to client,
    // since the generation of incremental data does not require the
    // involvement of servers."
    let cfg = TraceConfig::scaled(SCALE);
    for trace in [
        Box::new(WordTrace::new(cfg)) as Box<dyn Trace>,
        Box::new(AppendTrace::new(cfg)),
    ] {
        let (sys, _, _) = run_deltacfs(trace.as_ref());
        let t = sys.report().traffic;
        assert!(
            t.bytes_down < t.bytes_up / 20 + 4096,
            "down {} vs up {}",
            t.bytes_down,
            t.bytes_up
        );
    }
}

#[test]
fn desktop_mix_routes_each_file_to_the_right_mechanism() {
    use deltacfs::workloads::DesktopTrace;
    let cfg = TraceConfig::scaled(0.05);
    let (sys, fs, _) = run_deltacfs(&DesktopTrace::new(cfg));
    // Everything converged.
    for path in fs.walk_files("/").unwrap() {
        let local = fs.peek_all(path.as_str()).unwrap();
        assert_eq!(
            sys.server().file(path.as_str()),
            Some(&local[..]),
            "{path} diverged"
        );
    }
    // Adaptivity: no MD5 anywhere, yet the document's transactional saves
    // still synced via bitwise-verified deltas (compared bytes > 0), and
    // the database's pages shipped without any delta machinery touching
    // the bulk of them.
    let cost = sys.report().client_cost;
    assert_eq!(cost.bytes_strong_hashed, 0);
    assert!(cost.bytes_compared > 0, "no delta ran for the document");
    // Temp files from either save pattern never reached the cloud.
    for cloud_path in sys.server().paths() {
        assert!(
            fs.exists(&cloud_path),
            "stray {cloud_path} left on the cloud"
        );
    }
}
