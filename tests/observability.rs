//! Integration tests for the unified observability layer: one registry
//! snapshot covering every subsystem, deterministic sync-pipeline traces
//! under pinned-seed fault runs, and the flight recorder that dumps the
//! causal event timeline when a run fails.

use std::panic;

use deltacfs::core::{DeltaCfsConfig, SyncHub};
use deltacfs::net::{FaultSpec, LinkSpec, SimClock};
use deltacfs::obs::{DumpGuard, MetricValue, Obs, TraceEvent};

const SEED: u64 = 7;

/// A pinned-seed two-writer faulty run with tracing enabled: concurrent
/// edits on disjoint files, then a Word-style transactional save on
/// client 1 (so the relation-table trigger and the parallel delta
/// encoder both leave trace spans), settled to convergence.
fn faulty_multi_writer_run(seed: u64) -> SyncHub {
    let clock = SimClock::new();
    let mut hub = SyncHub::new(clock.clone());
    hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
    hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
    hub.enable_observability(Obs::with_tracing(8192));
    hub.enable_fault_topology(vec![
        FaultSpec::clean(seed)
            .with_rates(0.25, 0.15, 0.25)
            .with_reorder(0.5),
        FaultSpec::clean(seed ^ 0xBEEF).with_rates(0.2, 0.2, 0.2),
    ]);

    hub.fs_mut(0).create("/a.txt").unwrap();
    hub.fs_mut(0).write("/a.txt", 0, b"alpha round one").unwrap();
    hub.fs_mut(1).create("/b.txt").unwrap();
    hub.fs_mut(1).write("/b.txt", 0, &vec![7u8; 20_000]).unwrap();
    hub.pump();
    clock.advance(4_000);
    hub.pump();

    // Word-style save on client 1: rename away, write the new version
    // under a temp name, rename it into place, drop the old copy.
    let mut doc = hub.fs(1).peek_all("/b.txt").unwrap();
    doc[10_000] = 9;
    hub.fs_mut(1).rename("/b.txt", "/b.bak").unwrap();
    hub.pump();
    hub.fs_mut(1).create("/b.tmp").unwrap();
    hub.pump();
    hub.fs_mut(1).write("/b.tmp", 0, &doc).unwrap();
    hub.pump();
    hub.fs_mut(1).close_path("/b.tmp").unwrap();
    hub.pump();
    hub.fs_mut(1).rename("/b.tmp", "/b.txt").unwrap();
    hub.pump();
    hub.fs_mut(1).unlink("/b.bak").unwrap();
    hub.pump();
    clock.advance(4_000);
    hub.pump();
    hub.settle(600_000);
    hub
}

fn stages(events: &[TraceEvent]) -> Vec<&str> {
    events.iter().map(|e| e.stage.as_str()).collect()
}

#[test]
fn unified_snapshot_covers_every_subsystem() {
    let hub = faulty_multi_writer_run(SEED);
    let snap = hub.export_metrics();

    // Per-client counters are labeled client="<n>".
    for id in ["1", "2"] {
        for name in [
            "traffic_bytes_up",
            "traffic_bytes_down",
            "io_bytes_written",
            "io_mutations",
            "delta_cost_bytes_copied",
            "retry_retransmissions",
        ] {
            assert!(
                snap.get_labeled(name, id).is_some(),
                "missing {name}{{client=\"{id}\"}}"
            );
        }
    }
    // Something actually moved on the wire.
    match snap.get_labeled("traffic_bytes_up", "1") {
        Some(MetricValue::Counter(v)) => assert!(*v > 0),
        other => panic!("traffic_bytes_up: {other:?}"),
    }
    // The delta encoder ran on client 2 (the transactional save).
    match snap.get_labeled("delta_cost_bytes_rolled", "2") {
        Some(MetricValue::Counter(v)) => assert!(*v > 0, "no rolling checksums charged"),
        other => panic!("delta_cost_bytes_rolled: {other:?}"),
    }
    // Server-side and fault-layer counters are unlabeled singletons.
    assert!(snap.get("server_cost_bytes_copied").is_some());
    assert!(snap.get("server_duplicates_ignored").is_some());
    match snap.get("fault_injections_fired") {
        Some(MetricValue::Counter(v)) => assert!(*v > 0, "no injections fired"),
        other => panic!("fault_injections_fired: {other:?}"),
    }
    // Retry backoff delays landed in the histogram.
    match snap.get("retry_backoff_ms") {
        Some(MetricValue::Histogram { count, max, .. }) => {
            assert!(*count > 0, "no backoff delays recorded");
            assert!(*max <= 8_000, "delay beyond cap: {max}");
        }
        other => panic!("retry_backoff_ms: {other:?}"),
    }
    // The flight recorder's drop counter is part of the snapshot, and a
    // generously sized ring drops nothing on this run.
    match snap.get("trace_events_dropped") {
        Some(MetricValue::Counter(v)) => assert_eq!(*v, 0, "ring dropped events"),
        other => panic!("trace_events_dropped: {other:?}"),
    }
    // Both export formats include the labeled and histogram series.
    let json = snap.to_json();
    let prom = snap.to_prometheus();
    assert!(json.contains("\"retry_backoff_ms\""));
    assert!(json.contains("\"+Inf\""));
    assert!(prom.contains("traffic_bytes_up{client=\"1\"}"));
    assert!(prom.contains("retry_backoff_ms_bucket{le=\"8000\"}"));
}

#[test]
fn wire_codec_metrics_and_trace_cover_the_compressed_stream() {
    // A compressible streamed upload on a mobile platform must leave
    // the codec's full observability surface behind: compressed/raw
    // chunk counters, the bytes-saved counter, the ratio histogram,
    // and a `wire.compress` trace event per codec decision.
    use deltacfs::core::{DeltaCfsSystem, SyncEngine};
    use deltacfs::net::PlatformProfile;

    let clock = SimClock::new();
    let cfg = DeltaCfsConfig::new()
        .with_streaming(true)
        .with_chunk_budget(4096)
        .with_wire_compression(true);
    let mut sys = DeltaCfsSystem::new(cfg, clock.clone(), LinkSpec::mobile());
    sys.set_platform(PlatformProfile::mobile());
    let obs = Obs::with_tracing(8192);
    sys.enable_observability(obs.clone());

    let mut fs = deltacfs::vfs::Vfs::new();
    fs.enable_event_log();
    fs.create("/doc.txt").unwrap();
    // Highly repetitive content: every chunk clears the cost-benefit
    // bar on a mobile link.
    let text: Vec<u8> = b"the quick brown fox jumps over the lazy dog. "
        .iter()
        .copied()
        .cycle()
        .take(64 * 1024)
        .collect();
    fs.write("/doc.txt", 0, &text).unwrap();
    for e in fs.drain_events() {
        sys.on_event(&e, &fs);
    }
    clock.advance(4_000);
    sys.finish(&fs);
    assert_eq!(sys.server().file("/doc.txt"), Some(&text[..]));

    let snap = obs.registry.snapshot();
    let counter = |name: &str| match snap.get(name) {
        Some(MetricValue::Counter(v)) => *v,
        other => panic!("{name}: {other:?}"),
    };
    let compressed = counter("wire_compress_chunks");
    assert!(compressed > 0, "no chunk was compressed");
    assert!(
        counter("wire_compress_bytes_saved") > 0,
        "compression saved nothing"
    );
    match snap.get("wire_compress_ratio_pct") {
        Some(MetricValue::Histogram { count, .. }) => {
            assert_eq!(*count, compressed, "one ratio sample per compressed chunk");
        }
        other => panic!("wire_compress_ratio_pct: {other:?}"),
    }
    // The codec's CPU stays out of the client's cost accumulator but is
    // visible through its own.
    assert!(sys.codec_cost().bytes_compressed > 0);
    assert_eq!(sys.report().client_cost.bytes_compressed, 0);
    // Every codec decision left a trace event.
    let events = obs.tracer.events();
    let compress_events = events
        .iter()
        .filter(|e| e.stage == "wire.compress")
        .count() as u64;
    assert!(
        compress_events >= compressed,
        "codec traced {compress_events} events for {compressed} compressed chunks"
    );
}

#[test]
fn pinned_seed_trace_is_deterministic() {
    // Satellite check: the same pinned-seed multi-writer topology run
    // twice produces byte-identical traces — same event ordering, same
    // timestamps, same span nesting.
    let first = faulty_multi_writer_run(SEED);
    let second = faulty_multi_writer_run(SEED);
    let a = first.obs().tracer.events();
    let b = second.obs().tracer.events();
    assert!(!a.is_empty(), "trace is empty");
    assert_eq!(a.len(), b.len(), "event counts differ");
    assert_eq!(a, b, "event sequences differ");
    // Determinism only holds when the ring kept everything.
    assert_eq!(first.obs().tracer.dropped(), 0, "ring dropped events");
    assert_eq!(second.obs().tracer.dropped(), 0, "ring dropped events");
    assert_eq!(
        first.obs().tracer.dump(),
        second.obs().tracer.dump(),
        "rendered dumps differ"
    );

    // Every pipeline stage left its mark.
    let st = stages(&a);
    for stage in [
        "vfs.op",
        "relation.trigger",
        "delta.encode",
        "delta.segment",
        "sync.group",
        "wire.upload",
        "server.apply",
        "fault.inject",
        "retry.backoff",
        "wire.forward",
    ] {
        assert!(st.contains(&stage), "stage {stage} never traced");
    }
    // Span nesting: the delta.encode enter/exit pair brackets its
    // per-worker segment events at depth 1.
    let enter = st.iter().position(|s| *s == "delta.encode").unwrap();
    let seg = a
        .iter()
        .find(|e| e.stage == "delta.segment")
        .expect("segment event");
    assert_eq!(seg.depth, 1, "segment events nest inside the encode span");
    assert_eq!(a[enter].depth, 0);
}

#[test]
fn flight_recorder_dumps_causal_timeline_on_failure() {
    // A deliberately failed pinned-seed fault run must leave a flight
    // recorder dump with the causal timeline of the "diverging" file,
    // byte-identical across two runs of the same seed.
    let run_and_fail = |tag: &str| -> String {
        let path = std::env::temp_dir().join(format!(
            "deltacfs-obs-test-{}-{tag}.dump",
            std::process::id()
        ));
        std::fs::remove_file(&path).ok();
        std::env::set_var("DELTACFS_TRACE_DUMP", &path);
        let result = panic::catch_unwind(panic::AssertUnwindSafe(|| {
            let hub = faulty_multi_writer_run(SEED);
            // Absorb component counters so the dump's metrics section
            // reflects the full picture at failure time.
            let _ = hub.export_metrics();
            let _guard = DumpGuard::new("seed 7 two-writer fault run", &hub.obs().tracer)
                .with_registry(&hub.obs().registry);
            // Deliberate divergence assertion — this is the failure the
            // recorder exists to explain.
            assert_eq!(
                hub.fs(0).peek_all("/b.txt").unwrap(),
                b"content that is not there",
                "deliberate failure"
            );
        }));
        std::env::remove_var("DELTACFS_TRACE_DUMP");
        assert!(result.is_err(), "the run was supposed to fail");
        let dump = std::fs::read_to_string(&path).expect("dump file written");
        std::fs::remove_file(&path).ok();
        dump
    };

    let first = run_and_fail("first");
    let second = run_and_fail("second");
    assert_eq!(first, second, "dump is not reproducible");

    // The header names the run, the timeline covers the diverging file's
    // causal chain, and the metrics snapshot rides along.
    assert!(first.contains("=== DeltaCFS flight recorder dump: seed 7 two-writer fault run ==="));
    assert!(first.contains("flight recorder:"), "missing event header");
    assert!(first.contains("/b.txt"), "diverging file absent from trace");
    assert!(first.contains("relation.trigger"), "no trigger decision");
    assert!(first.contains("delta.encode"), "no encode span");
    assert!(first.contains("server.apply"), "no server apply event");
    assert!(first.contains("=== metrics at failure ==="));
    assert!(first.contains("fault_injections_fired"));
}
