//! Sharded-hub regression tests (DESIGN.md §13).
//!
//! Sharding is a dispatch optimization: routing state across striped
//! locks must never change what the server stores, what clients see, or
//! which duplicates are recognized. These tests pin the hazards the
//! refactor introduced — cross-shard groups, replicated group records,
//! per-shard persistence — plus the multi-tenant kvstore layer the
//! shards sit on.

use deltacfs::core::{
    ApplyOutcome, ClientId, DeltaCfsConfig, GroupId, Payload, ShardRouter, ShardedServer, SyncHub,
    UpdateMsg, UpdatePayload, Version,
};
use deltacfs::kvstore::{BatchOp, KeyValue, MemStore, ReadCache, TenantView};
use deltacfs::net::{FaultSpec, LinkSpec, SimClock};

const SETTLE_MS: u64 = 600_000;

/// Picks `n` top-level directory names that all land on *different*
/// shards of an `shards`-way router, so tests exercise genuinely
/// cross-shard traffic regardless of how FNV happens to distribute.
fn distinct_shard_dirs(shards: usize, n: usize) -> Vec<String> {
    let router = ShardRouter::new(shards);
    let mut dirs: Vec<String> = Vec::new();
    let mut taken: Vec<usize> = Vec::new();
    for i in 0.. {
        let name = format!("d{i}");
        let s = router.shard_of_namespace(&name);
        if !taken.contains(&s) {
            taken.push(s);
            dirs.push(name);
            if dirs.len() == n {
                break;
            }
        }
        assert!(i < 10_000, "router failed to spread {n} names over {shards} shards");
    }
    dirs
}

fn pump_round(hub: &mut SyncHub, clock: &SimClock) {
    hub.pump();
    clock.advance(4_000);
    hub.pump();
}

/// Everything a shard count must not change about a hub run.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    server_files: Vec<(String, Option<Vec<u8>>)>,
    apply_order: Vec<String>,
    client_files: Vec<Vec<(String, Vec<u8>)>>,
    traffic: Vec<(u64, u64)>,
    conflicts: usize,
}

fn fingerprint(hub: &SyncHub) -> Fingerprint {
    let paths = hub.server().paths();
    Fingerprint {
        server_files: paths
            .iter()
            .map(|p| (p.clone(), hub.server().file(p)))
            .collect(),
        apply_order: hub.server().apply_order(),
        client_files: (0..hub.client_count())
            .map(|idx| {
                let mut files: Vec<(String, Vec<u8>)> = hub
                    .fs(idx)
                    .walk_files("/")
                    .unwrap_or_default()
                    .into_iter()
                    .map(|p| {
                        let content = hub.fs(idx).peek_all(p.as_str()).unwrap();
                        (p.to_string(), content)
                    })
                    .collect();
                files.sort();
                files
            })
            .collect(),
        traffic: (0..hub.client_count())
            .map(|idx| (hub.traffic(idx).bytes_up, hub.traffic(idx).bytes_down))
            .collect(),
        conflicts: hub.conflicts().len(),
    }
}

/// A fixed root-client workload that deliberately spans shards: writes
/// in several top-level directories plus a rename whose source and
/// destination live on different shards.
#[test]
fn root_hub_is_shard_count_invariant() {
    let dirs = distinct_shard_dirs(8, 3);
    let run = |shards: usize| {
        let clock = SimClock::new();
        let mut hub = SyncHub::with_shards(clock.clone(), shards);
        let a = hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
        let b = hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
        for d in &dirs {
            hub.fs_mut(a).mkdir_all(&format!("/{d}")).unwrap();
        }
        let f0 = format!("/{}/notes.txt", dirs[0]);
        let f1 = format!("/{}/log.bin", dirs[1]);
        hub.fs_mut(a).create(&f0).unwrap();
        hub.fs_mut(a).write(&f0, 0, b"first component zero").unwrap();
        hub.fs_mut(a).create(&f1).unwrap();
        hub.fs_mut(a).write(&f1, 0, &vec![7u8; 4_000]).unwrap();
        pump_round(&mut hub, &clock);

        // Cross-shard rename: source in dirs[0], destination in dirs[2].
        let moved = format!("/{}/notes-moved.txt", dirs[2]);
        hub.fs_mut(a).rename(&f0, &moved).unwrap();
        pump_round(&mut hub, &clock);

        // The peer edits a forwarded file in place.
        hub.fs_mut(b).write(&f1, 100, b"peer patch").unwrap();
        pump_round(&mut hub, &clock);
        hub.flush();
        hub
    };

    let single = run(1);
    let sharded = run(8);
    assert_eq!(fingerprint(&single), fingerprint(&sharded));
    // The multi-shard run really took the cross-shard path (the rename
    // spans two shards), while the single-shard run never can.
    assert_eq!(single.server().cross_shard_groups(), 0);
    assert!(sharded.server().cross_shard_groups() > 0);
    let moved = format!("/{}/notes-moved.txt", dirs[2]);
    assert_eq!(
        sharded.server().file(&moved).as_deref(),
        Some(&b"first component zero"[..])
    );
}

/// Regression: the PR 2 dedup hole, now across shards. A pure rename
/// carries no file version, so only the `<CliID, GroupSeq>` record can
/// recognize its late duplicate. When the rename spans shards, that
/// record must be found no matter which shard the resend consults —
/// a duplicated copy deferred past the path's re-creation must not
/// re-execute the rename and clobber the fresh file.
#[test]
fn cross_shard_rename_replay_after_recreate_is_deduped() {
    let dirs = distinct_shard_dirs(8, 2);
    let seed = 5u64;
    let clock = SimClock::new();
    let mut hub = SyncHub::with_shards(clock.clone(), 8);
    hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
    hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
    let old = format!("/{}/old", dirs[0]);
    let new = format!("/{}/new", dirs[1]);
    for d in &dirs {
        hub.fs_mut(0).mkdir_all(&format!("/{d}")).unwrap();
    }
    hub.fs_mut(0).create(&old).unwrap();
    hub.fs_mut(0).write(&old, 0, b"payload").unwrap();
    pump_round(&mut hub, &clock);
    assert_eq!(hub.server().file(&old).as_deref(), Some(&b"payload"[..]));

    // Every delivery duplicated, every duplicate redelivered late.
    hub.enable_faults(
        FaultSpec::clean(seed)
            .with_rates(0.0, 0.0, 1.0)
            .with_reorder(1.0),
    );
    hub.fs_mut(0).rename(&old, &new).unwrap();
    hub.fs_mut(0).create(&old).unwrap();
    hub.fs_mut(0).write(&old, 0, b"fresh").unwrap();
    pump_round(&mut hub, &clock);
    let drained = hub.settle(SETTLE_MS);
    assert!(drained, "seed {seed}: courier never drained");
    assert_eq!(hub.deferred_len(), 0, "seed {seed}: deferred queue leaked");
    assert!(
        hub.server().cross_shard_groups() > 0,
        "seed {seed}: the rename never took the cross-shard path"
    );
    assert!(
        hub.server().duplicates_ignored() > 0,
        "seed {seed}: dedup never engaged"
    );
    assert_eq!(
        hub.server().file(&new).as_deref(),
        Some(&b"payload"[..]),
        "seed {seed}: late cross-shard rename replay clobbered {new}"
    );
    assert_eq!(
        hub.server().file(&old).as_deref(),
        Some(&b"fresh"[..]),
        "seed {seed}: late cross-shard rename replay removed the recreated {old}"
    );
}

/// A whole-group resend of a *committed* cross-shard group must replay
/// the recorded outcomes verbatim from whichever shard it lands on,
/// applying nothing twice — the group record is replicated to every
/// involved shard in one insert apiece.
#[test]
fn whole_group_resend_on_committed_shards_replays_verbatim() {
    let server = ShardedServer::new(4);
    let router = server.router();
    // Two paths on provably different shards.
    let dirs = distinct_shard_dirs(4, 2);
    let pa = format!("/{}/a", dirs[0]);
    let pb = format!("/{}/b", dirs[1]);
    assert_ne!(router.shard_of_path(&pa), router.shard_of_path(&pb));

    let cli = ClientId(9);
    let gid = GroupId { client: cli, seq: 1 };
    let group: Vec<UpdateMsg> = [(&pa, 1u64), (&pb, 2u64)]
        .into_iter()
        .map(|(path, counter)| UpdateMsg {
            path: path.clone(),
            base: None,
            version: Some(Version { client: cli, counter }),
            payload: UpdatePayload::Full(Payload::copy_from_slice(path.as_bytes())),
            txn: Some(1),
            group: Some(gid),
        })
        .collect();

    let (first, dup) = server.apply_txn_idempotent(&group);
    assert!(!dup);
    assert_eq!(first, vec![ApplyOutcome::Applied, ApplyOutcome::Applied]);
    assert_eq!(server.cross_shard_groups(), 1);
    let order_after_commit = server.apply_order();

    // The record is on *every* involved shard, so the resend is caught
    // wherever it routes first.
    for &s in &[router.shard_of_path(&pa), router.shard_of_path(&pb)] {
        assert!(server.with_shard(s, |cs| cs.has_seen_group(gid)));
    }

    let (replayed, dup) = server.apply_txn_idempotent(&group);
    assert!(dup, "resend of a committed group must be recognized");
    assert_eq!(replayed, first);
    assert_eq!(server.duplicates_ignored(), 1);
    assert_eq!(server.cross_shard_groups(), 1, "no second cross-shard apply");
    assert_eq!(server.apply_order(), order_after_commit, "no re-application");
    assert_eq!(server.file(&pa).as_deref(), Some(pa.as_bytes()));
    assert_eq!(server.file(&pb).as_deref(), Some(pb.as_bytes()));
}

// --- Multi-tenant kvstore ------------------------------------------------

/// Per-namespace views over one shard's store share the LRU cache
/// without leaking hits across tenants: the same user-level key read by
/// two tenants is two distinct cache entries with distinct contents.
#[test]
fn tenant_cache_hits_never_leak_across_namespaces() {
    let mut shard = ReadCache::new(MemStore::new(), 32);
    TenantView::new(&mut shard, "t1").put(b"seg:0", b"tenant-one data").unwrap();
    TenantView::new(&mut shard, "t2").put(b"seg:0", b"tenant-two data").unwrap();

    // Tenant 1 warms the cache for its fenced key.
    assert_eq!(
        TenantView::new(&mut shard, "t1").get(b"seg:0").unwrap(),
        Some(b"tenant-one data".to_vec())
    );
    let (hits_before, misses_before) = (shard.hits(), shard.misses());

    // Tenant 2 reading the same user key must MISS (different fenced
    // key) and must see its own bytes, never tenant 1's cached value.
    assert_eq!(
        TenantView::new(&mut shard, "t2").get(b"seg:0").unwrap(),
        Some(b"tenant-two data".to_vec())
    );
    assert_eq!(shard.hits(), hits_before, "cross-tenant read served from cache");
    assert_eq!(shard.misses(), misses_before + 1);

    // Re-reads inside each tenant do hit.
    assert_eq!(
        TenantView::new(&mut shard, "t1").get(b"seg:0").unwrap(),
        Some(b"tenant-one data".to_vec())
    );
    assert_eq!(shard.hits(), hits_before + 1);
}

/// Writer invalidation is shard-local by construction: each shard wraps
/// its own store with its own cache, so invalidating a segment on one
/// shard can never leave another shard serving stale bytes — the other
/// shard's cache never held that segment, and its own entries are
/// invalidated by its own writers.
#[test]
fn writer_invalidation_cannot_serve_stale_segments_across_shards() {
    let mut shard_a = ReadCache::new(MemStore::new(), 32);
    let mut shard_b = ReadCache::new(MemStore::new(), 32);

    // The same tenant has segments on both shards (its files hash to
    // different shards after a cross-shard rename, say).
    TenantView::new(&mut shard_a, "t1").put(b"seg:7", b"v1").unwrap();
    TenantView::new(&mut shard_b, "t1").put(b"seg:9", b"w1").unwrap();
    assert_eq!(
        TenantView::new(&mut shard_a, "t1").get(b"seg:7").unwrap(),
        Some(b"v1".to_vec())
    );
    assert_eq!(
        TenantView::new(&mut shard_b, "t1").get(b"seg:9").unwrap(),
        Some(b"w1".to_vec())
    );

    // A writer rewrites both segments, each through its own shard; the
    // batch goes through the cache wrapper so invalidation is atomic
    // with the write.
    TenantView::new(&mut shard_a, "t1")
        .write_batch(&[BatchOp::put(&b"seg:7"[..], &b"v2"[..])])
        .unwrap();
    TenantView::new(&mut shard_b, "t1")
        .write_batch(&[BatchOp::put(&b"seg:9"[..], &b"w2"[..])])
        .unwrap();

    // Neither shard serves the stale pre-write bytes.
    assert_eq!(
        TenantView::new(&mut shard_a, "t1").get(b"seg:7").unwrap(),
        Some(b"v2".to_vec())
    );
    assert_eq!(
        TenantView::new(&mut shard_b, "t1").get(b"seg:9").unwrap(),
        Some(b"w2".to_vec())
    );

    // And shard A's invalidation touched only shard A's cache: shard B
    // still has its (fresh) entry cached.
    let b_misses = shard_b.misses();
    assert_eq!(
        TenantView::new(&mut shard_b, "t1").get(b"seg:9").unwrap(),
        Some(b"w2".to_vec())
    );
    assert_eq!(shard_b.misses(), b_misses, "shard B lost its cache entry");
}
