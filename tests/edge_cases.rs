//! Edge-case integration tests for the DeltaCFS engine.

use deltacfs::core::{DeltaCfsConfig, DeltaCfsSystem, SyncEngine};
use deltacfs::net::{LinkSpec, SimClock};
use deltacfs::vfs::Vfs;

struct Rig {
    sys: DeltaCfsSystem,
    fs: Vfs,
    clock: SimClock,
}

impl Rig {
    fn new() -> Self {
        let clock = SimClock::new();
        let sys = DeltaCfsSystem::new(DeltaCfsConfig::new(), clock.clone(), LinkSpec::pc());
        let mut fs = Vfs::new();
        fs.enable_event_log();
        Rig { sys, fs, clock }
    }

    /// Pumps events synchronously (the FUSE contract).
    fn pump(&mut self) {
        for e in self.fs.drain_events() {
            self.sys.on_event(&e, &self.fs);
        }
    }

    fn sync(&mut self) {
        self.pump();
        self.clock.advance(4_000);
        self.sys.tick(&self.fs);
    }

    fn assert_converged(&self) {
        for path in self.fs.walk_files("/").unwrap() {
            let local = self.fs.peek_all(path.as_str()).unwrap();
            assert_eq!(
                self.sys.server().file(path.as_str()),
                Some(&local[..]),
                "{path} diverged"
            );
        }
    }
}

#[test]
fn directories_sync() {
    let mut rig = Rig::new();
    rig.fs.mkdir_all("/a/b/c").unwrap();
    rig.fs.create("/a/b/c/deep.txt").unwrap();
    rig.fs.write("/a/b/c/deep.txt", 0, b"nested").unwrap();
    rig.sync();
    assert!(rig.sys.server().has_dir("/a"));
    assert!(rig.sys.server().has_dir("/a/b/c"));
    assert_eq!(
        rig.sys.server().file("/a/b/c/deep.txt"),
        Some(&b"nested"[..])
    );
    rig.fs.unlink("/a/b/c/deep.txt").unwrap();
    rig.fs.rmdir("/a/b/c").unwrap();
    rig.sync();
    assert!(!rig.sys.server().has_dir("/a/b/c"));
    assert!(rig.sys.server().file("/a/b/c/deep.txt").is_none());
}

#[test]
fn empty_file_syncs() {
    let mut rig = Rig::new();
    rig.fs.create("/empty").unwrap();
    rig.sync();
    assert_eq!(rig.sys.server().file("/empty"), Some(&b""[..]));
}

#[test]
fn zero_byte_write_is_harmless() {
    let mut rig = Rig::new();
    rig.fs.create("/f").unwrap();
    rig.fs.write("/f", 0, b"content").unwrap();
    rig.fs.write("/f", 3, b"").unwrap();
    rig.sync();
    rig.assert_converged();
}

#[test]
fn rename_chain_follows_through() {
    let mut rig = Rig::new();
    rig.fs.create("/a").unwrap();
    rig.fs.write("/a", 0, b"traveling").unwrap();
    rig.sync();
    rig.fs.rename("/a", "/b").unwrap();
    rig.pump();
    rig.fs.rename("/b", "/c").unwrap();
    rig.pump();
    rig.fs.rename("/c", "/d").unwrap();
    rig.sync();
    assert_eq!(rig.sys.server().file("/d"), Some(&b"traveling"[..]));
    for gone in ["/a", "/b", "/c"] {
        assert!(rig.sys.server().file(gone).is_none(), "{gone} lingers");
    }
    rig.assert_converged();
}

#[test]
fn writes_after_transactional_save_still_converge() {
    let mut rig = Rig::new();
    rig.fs.create("/f").unwrap();
    rig.fs.write("/f", 0, &vec![5u8; 20_000]).unwrap();
    rig.sync();
    // Transactional save...
    let mut doc = rig.fs.peek_all("/f").unwrap();
    doc[10] = 6;
    rig.fs.rename("/f", "/f.bak").unwrap();
    rig.pump();
    rig.fs.create("/f.tmp").unwrap();
    rig.pump();
    rig.fs.write("/f.tmp", 0, &doc).unwrap();
    rig.pump();
    rig.fs.close_path("/f.tmp").unwrap();
    rig.pump();
    rig.fs.rename("/f.tmp", "/f").unwrap();
    rig.pump();
    rig.fs.unlink("/f.bak").unwrap();
    rig.pump();
    // ...followed immediately by more in-place writes before any upload.
    rig.fs.write("/f", 100, b"post-save edit").unwrap();
    rig.fs.write("/f", 19_000, b"tail edit").unwrap();
    rig.sync();
    rig.clock.advance(10_000);
    rig.sys.tick(&rig.fs);
    rig.sys.finish(&rig.fs);
    rig.assert_converged();
}

#[test]
fn truncate_to_zero_and_regrow() {
    let mut rig = Rig::new();
    rig.fs.create("/log").unwrap();
    rig.fs.write("/log", 0, &vec![1u8; 10_000]).unwrap();
    rig.sync();
    rig.fs.truncate("/log", 0).unwrap();
    rig.pump();
    rig.fs.write("/log", 0, b"fresh start").unwrap();
    rig.sync();
    rig.sys.finish(&rig.fs);
    assert_eq!(rig.sys.server().file("/log"), Some(&b"fresh start"[..]));
}

#[test]
fn interleaved_files_preserve_order_under_load() {
    let mut rig = Rig::new();
    for round in 0..5u8 {
        for f in 0..4u8 {
            let path = format!("/f{f}");
            if round == 0 {
                rig.fs.create(&path).unwrap();
            }
            rig.fs
                .write(&path, (round as u64) * 100, &[round * 16 + f; 100])
                .unwrap();
        }
        rig.pump();
        rig.clock.advance(1_000);
        rig.sys.tick(&rig.fs);
    }
    rig.clock.advance(10_000);
    rig.sys.tick(&rig.fs);
    rig.sys.finish(&rig.fs);
    rig.assert_converged();
}

#[test]
fn hard_link_then_divergence() {
    let mut rig = Rig::new();
    rig.fs.create("/orig").unwrap();
    rig.fs.write("/orig", 0, b"shared inode").unwrap();
    rig.pump();
    rig.fs.link("/orig", "/alias").unwrap();
    rig.sync();
    assert_eq!(rig.sys.server().file("/alias"), Some(&b"shared inode"[..]));
    // A write through one name updates both locally; the engine ships the
    // write against the written name. Cloud-side the alias is a copy, so
    // after unlinking the original, the alias content remains valid.
    rig.fs.unlink("/orig").unwrap();
    rig.sync();
    rig.sys.finish(&rig.fs);
    assert!(rig.sys.server().file("/orig").is_none());
    assert_eq!(rig.sys.server().file("/alias"), Some(&b"shared inode"[..]));
}

#[test]
fn strict_fifo_mode_converges_but_uploads_more() {
    let run = |strict: bool| -> (u64, Vec<u8>, Option<Vec<u8>>) {
        use deltacfs::core::CausalMode;
        let clock = SimClock::new();
        let cfg = DeltaCfsConfig::new().with_causal_mode(if strict {
            CausalMode::StrictFifo
        } else {
            CausalMode::Backindex
        });
        let mut sys = DeltaCfsSystem::new(cfg, clock.clone(), LinkSpec::pc());
        let mut fs = Vfs::new();
        fs.enable_event_log();
        let pump = |sys: &mut DeltaCfsSystem, fs: &mut Vfs| {
            for e in fs.drain_events() {
                sys.on_event(&e, fs);
            }
        };
        fs.create("/f").unwrap();
        fs.write("/f", 0, &vec![3u8; 50_000]).unwrap();
        pump(&mut sys, &mut fs);
        clock.advance(4_000);
        sys.tick(&fs);
        // One transactional save.
        let mut doc = fs.peek_all("/f").unwrap();
        doc.push(9);
        fs.rename("/f", "/f.bak").unwrap();
        pump(&mut sys, &mut fs);
        fs.create("/f.tmp").unwrap();
        pump(&mut sys, &mut fs);
        fs.write("/f.tmp", 0, &doc).unwrap();
        pump(&mut sys, &mut fs);
        fs.close_path("/f.tmp").unwrap();
        pump(&mut sys, &mut fs);
        fs.rename("/f.tmp", "/f").unwrap();
        pump(&mut sys, &mut fs);
        fs.unlink("/f.bak").unwrap();
        pump(&mut sys, &mut fs);
        clock.advance(10_000);
        sys.tick(&fs);
        sys.finish(&fs);
        (
            sys.report().traffic.bytes_up,
            fs.peek_all("/f").unwrap(),
            sys.server().file("/f").map(<[u8]>::to_vec),
        )
    };
    let (up_fast, local_fast, cloud_fast) = run(false);
    let (up_strict, local_strict, cloud_strict) = run(true);
    assert_eq!(cloud_fast.as_deref(), Some(&local_fast[..]));
    assert_eq!(cloud_strict.as_deref(), Some(&local_strict[..]));
    // Strict FIFO forfeits the delta optimisation: the save re-uploads
    // the file.
    assert!(
        up_strict > up_fast + 40_000,
        "strict {up_strict} vs backindex {up_fast}"
    );
}

#[test]
fn capacity_pressure_does_not_derail_sync() {
    let clock = SimClock::new();
    let mut sys = DeltaCfsSystem::new(DeltaCfsConfig::new(), clock.clone(), LinkSpec::pc());
    let mut fs = Vfs::with_capacity(100_000);
    fs.enable_event_log();
    fs.create("/f").unwrap();
    fs.write("/f", 0, &vec![1u8; 90_000]).unwrap();
    // This write exceeds capacity and fails; no event is emitted for it.
    assert!(fs.write("/f", 90_000, &vec![1u8; 20_000]).is_err());
    for e in fs.drain_events() {
        sys.on_event(&e, &fs);
    }
    clock.advance(4_000);
    sys.tick(&fs);
    assert_eq!(sys.server().file("/f").map(<[u8]>::len), Some(90_000));
}

#[test]
fn snapshot_mode_converges_and_seals_whole_queue() {
    use deltacfs::core::CausalMode;
    let clock = SimClock::new();
    let cfg = DeltaCfsConfig::new().with_causal_mode(CausalMode::Snapshot {
        interval_ms: 10_000,
    });
    let mut sys = DeltaCfsSystem::new(cfg, clock.clone(), LinkSpec::pc());
    let mut fs = Vfs::new();
    fs.enable_event_log();
    let pump = |sys: &mut DeltaCfsSystem, fs: &mut Vfs| {
        for e in fs.drain_events() {
            sys.on_event(&e, fs);
        }
    };
    fs.create("/a").unwrap();
    fs.write("/a", 0, b"first").unwrap();
    pump(&mut sys, &mut fs);
    // Well past the 3 s node delay but before the 10 s snapshot: nothing
    // uploads in snapshot mode.
    clock.advance(8_000);
    sys.tick(&fs);
    assert!(sys.server().file("/a").is_none());
    fs.create("/b").unwrap();
    fs.write("/b", 0, b"second").unwrap();
    pump(&mut sys, &mut fs);
    clock.advance(3_000); // crosses the snapshot boundary
    sys.tick(&fs);
    assert_eq!(sys.server().file("/a"), Some(&b"first"[..]));
    assert_eq!(sys.server().file("/b"), Some(&b"second"[..]));
    // Everything arrived; later edits wait for the next snapshot.
    fs.write("/a", 0, b"FIRST").unwrap();
    pump(&mut sys, &mut fs);
    clock.advance(5_000);
    sys.tick(&fs);
    assert_eq!(sys.server().file("/a"), Some(&b"first"[..]));
    clock.advance(6_000);
    sys.tick(&fs);
    sys.finish(&fs);
    assert_eq!(sys.server().file("/a"), Some(&b"FIRST"[..]));
}

#[test]
fn snapshot_mode_transactional_save_still_converges() {
    use deltacfs::core::CausalMode;
    let clock = SimClock::new();
    // A pathological 1 ms snapshot interval: every tick seals the queue,
    // so the save's temp-file nodes upload *before* the trigger fires —
    // the paper's first objection to snapshots. Convergence must survive.
    let cfg = DeltaCfsConfig::new().with_causal_mode(CausalMode::Snapshot { interval_ms: 1 });
    let mut sys = DeltaCfsSystem::new(cfg, clock.clone(), LinkSpec::pc());
    let mut fs = Vfs::new();
    fs.enable_event_log();
    let step = |sys: &mut DeltaCfsSystem, fs: &mut Vfs, clock: &SimClock| {
        for e in fs.drain_events() {
            sys.on_event(&e, fs);
        }
        clock.advance(100);
        sys.tick(fs);
    };
    fs.create("/f").unwrap();
    fs.write("/f", 0, &vec![2u8; 30_000]).unwrap();
    step(&mut sys, &mut fs, &clock);

    let mut doc = fs.peek_all("/f").unwrap();
    doc.push(3);
    fs.rename("/f", "/f.bak").unwrap();
    step(&mut sys, &mut fs, &clock);
    fs.create("/f.tmp").unwrap();
    step(&mut sys, &mut fs, &clock);
    fs.write("/f.tmp", 0, &doc).unwrap();
    step(&mut sys, &mut fs, &clock);
    fs.close_path("/f.tmp").unwrap();
    step(&mut sys, &mut fs, &clock);
    fs.rename("/f.tmp", "/f").unwrap();
    step(&mut sys, &mut fs, &clock);
    fs.unlink("/f.bak").unwrap();
    step(&mut sys, &mut fs, &clock);
    clock.advance(5_000);
    sys.tick(&fs);
    sys.finish(&fs);
    // Converged, including cleanup of the mid-save temp upload.
    for path in fs.walk_files("/").unwrap() {
        let local = fs.peek_all(path.as_str()).unwrap();
        assert_eq!(sys.server().file(path.as_str()), Some(&local[..]), "{path}");
    }
    for cloud_path in sys.server().paths() {
        assert!(fs.exists(&cloud_path), "stray {cloud_path} on cloud");
    }
}
