//! Integration tests for the causal span profiler: pinned-seed golden
//! determinism of the span tree and its Chrome trace export, the
//! critical-path attribution invariant (per-group stage attribution
//! sums exactly to the observed end-to-end time), the SLO lag gauges in
//! the unified snapshot, and the intentionally unclosed spans a fault
//! matrix leaves behind.

use deltacfs::core::{DeltaCfsConfig, HubConfig, SyncHub};
use deltacfs::net::{FaultSpec, LinkSpec, SimClock};
use deltacfs::obs::{MetricValue, Obs, Profiler};

const SEED: u64 = 7;

/// The pinned-seed two-writer faulty run of `tests/observability.rs`,
/// with causal span profiling armed: concurrent edits on disjoint
/// files, a Word-style transactional save on client 1, settled to
/// convergence under independent per-writer fault schedules.
fn faulty_profiled_run(seed: u64) -> SyncHub {
    let clock = SimClock::new();
    let mut hub = SyncHub::with_config(clock.clone(), HubConfig::new().with_profiling(true));
    hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
    hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
    hub.enable_observability(Obs::with_profiling(8192));
    hub.enable_fault_topology(vec![
        FaultSpec::clean(seed)
            .with_rates(0.25, 0.15, 0.25)
            .with_reorder(0.5),
        FaultSpec::clean(seed ^ 0xBEEF).with_rates(0.2, 0.2, 0.2),
    ]);

    hub.fs_mut(0).create("/a.txt").unwrap();
    hub.fs_mut(0).write("/a.txt", 0, b"alpha round one").unwrap();
    hub.fs_mut(1).create("/b.txt").unwrap();
    hub.fs_mut(1).write("/b.txt", 0, &vec![7u8; 20_000]).unwrap();
    hub.pump();
    clock.advance(4_000);
    hub.pump();

    let mut doc = hub.fs(1).peek_all("/b.txt").unwrap();
    doc[10_000] = 9;
    hub.fs_mut(1).rename("/b.txt", "/b.bak").unwrap();
    hub.pump();
    hub.fs_mut(1).create("/b.tmp").unwrap();
    hub.pump();
    hub.fs_mut(1).write("/b.tmp", 0, &doc).unwrap();
    hub.pump();
    hub.fs_mut(1).close_path("/b.tmp").unwrap();
    hub.pump();
    hub.fs_mut(1).rename("/b.tmp", "/b.txt").unwrap();
    hub.pump();
    hub.fs_mut(1).unlink("/b.bak").unwrap();
    hub.pump();
    clock.advance(4_000);
    hub.pump();
    hub.settle(600_000);
    hub
}

#[test]
fn pinned_seed_span_tree_and_chrome_trace_are_byte_identical() {
    // Tentpole golden: the same pinned-seed fault-matrix run twice must
    // produce the same span table, the same rendered report, and the
    // same Chrome trace-event JSON — byte for byte. This includes the
    // intentionally unclosed spans (attempts the fault plan dropped).
    let first = faulty_profiled_run(SEED);
    let second = faulty_profiled_run(SEED);
    assert_eq!(first.obs().spans.dropped(), 0, "span table overflowed");
    assert_eq!(second.obs().spans.dropped(), 0, "span table overflowed");

    let a = first.obs().spans.records();
    let b = second.obs().spans.records();
    assert!(!a.is_empty(), "no spans recorded");
    assert_eq!(a, b, "span tables differ");

    let pa = first.profiler();
    let pb = second.profiler();
    assert_eq!(pa.text_report(), pb.text_report(), "reports differ");
    assert_eq!(pa.chrome_trace(), pb.chrome_trace(), "trace exports differ");

    // The fault matrix drops upload attempts and cuts forward streams:
    // those spans stay open on purpose and the report says so.
    let open = a.iter().filter(|r| r.end_ms.is_none()).count();
    assert!(open > 0, "expected unclosed spans from dropped attempts");
    assert!(pa.text_report().contains("open span(s)"));
    // Open spans export as `B` begin-only events, closed ones as `X`.
    assert!(pa.chrome_trace().contains("\"ph\":\"B\""));
    assert!(pa.chrome_trace().contains("\"ph\":\"X\""));
}

#[test]
fn critical_path_attribution_sums_to_end_to_end_time() {
    let hub = faulty_profiled_run(SEED);
    let profiler = hub.profiler();
    let groups = profiler.groups();
    assert!(!groups.is_empty(), "no groups profiled");
    for g in &groups {
        let total: u64 = g.attribution.iter().map(|(_, ms)| ms).sum();
        assert_eq!(
            total, g.e2e_ms,
            "group {}: attribution {total}ms != e2e {}ms",
            g.group, g.e2e_ms
        );
    }
    // Both sides of the wire joined each tree: client-recorded roots
    // (vfs.write) and server/link stages keyed by the same group.
    let stages: Vec<&str> = profiler.records().iter().map(|r| r.stage.as_str()).collect();
    for stage in ["vfs.write", "relation.trigger", "delta.encode", "wire.upload", "server.apply", "forward"] {
        assert!(stages.contains(&stage), "stage {stage} never recorded");
    }
    // Every non-root span links to a parent within its own group.
    for r in profiler.records() {
        if let Some(parent) = r.parent {
            let p = profiler
                .records()
                .iter()
                .find(|x| x.id == parent)
                .unwrap_or_else(|| panic!("span {:?} has dangling parent", r.id));
            assert_eq!(p.group, r.group, "parent crosses group boundary");
        }
    }
}

#[test]
fn profiled_snapshot_exports_stage_histograms_and_lag_gauges() {
    let hub = faulty_profiled_run(SEED);
    let snap = hub.export_metrics();

    // Per-stage critical-path histograms, labeled stage="...".
    for stage in ["vfs.write", "wire.upload", "pipeline.wait"] {
        match snap.get_labeled("span_stage_ms", stage) {
            Some(MetricValue::Histogram { count, .. }) => {
                assert!(*count > 0, "span_stage_ms{{stage={stage}}} has no samples")
            }
            other => panic!("span_stage_ms{{stage={stage}}}: {other:?}"),
        }
    }
    // Sync-lag per client and the all-replica convergence lag.
    let sync_lag = |client: &str| match snap.get_labeled("sync_lag_ms", client) {
        Some(MetricValue::Gauge(v)) => *v,
        other => panic!("sync_lag_ms{{client={client}}}: {other:?}"),
    };
    let convergence = match snap.get("convergence_lag_ms") {
        Some(MetricValue::Gauge(v)) => *v,
        other => panic!("convergence_lag_ms: {other:?}"),
    };
    assert!(sync_lag("1") > 0);
    assert!(sync_lag("2") > 0);
    // Both SLOs measure from the same VFS-write origin; the convergence
    // gauge covers the whole fan-out, so it lands in the same order of
    // magnitude as the worst sync lag (forwards ride pump ticks, so it
    // is not strictly ordered above it).
    assert!(convergence > 0, "convergence lag gauge empty");
    // Span accounting counters ride along; nothing was dropped.
    match snap.get("spans_open") {
        Some(MetricValue::Counter(v)) => assert!(*v > 0, "no open spans counted"),
        other => panic!("spans_open: {other:?}"),
    }
    match snap.get("trace_events_dropped") {
        Some(MetricValue::Counter(v)) => assert_eq!(*v, 0),
        other => panic!("trace_events_dropped: {other:?}"),
    }
    // Both export formats carry the labeled profiler series.
    let prom = snap.to_prometheus();
    assert!(prom.contains("span_stage_ms_bucket{stage=\"vfs.write\""));
    assert!(prom.contains("sync_lag_ms{client=\"1\"}"));
    assert!(prom.contains("convergence_lag_ms"));
    assert!(snap.to_json().contains("\"span_stage_ms\""));
}

#[test]
fn profiling_off_records_no_spans() {
    // The default hub (profiling off) must leave the span table empty —
    // the disabled path is one relaxed atomic load per span site, and
    // the snapshot carries no profiler series.
    let clock = SimClock::new();
    let mut hub = SyncHub::new(clock.clone());
    hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
    hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
    hub.enable_observability(Obs::with_tracing(1024));
    hub.fs_mut(0).create("/x").unwrap();
    hub.fs_mut(0).write("/x", 0, b"payload").unwrap();
    hub.pump();
    clock.advance(4_000);
    hub.pump();
    hub.settle(60_000);
    assert!(hub.obs().spans.is_empty(), "spans recorded while disabled");
    assert_eq!(hub.fs(1).peek_all("/x").unwrap(), b"payload");
    let snap = hub.export_metrics();
    assert!(snap.get("spans_recorded").is_none());
    assert!(snap.get("convergence_lag_ms").is_none());
}

#[test]
fn streaming_upload_spans_cover_compress_and_stage() {
    // The chunk-streamed upload direction (engine → codec → link →
    // server stager) keys every span off the group header riding the
    // wire frames: wire.compress on compressed frames, per-frame
    // wire.upload, and the zero-width server.stage / server.apply pair
    // at commit.
    use deltacfs::core::{DeltaCfsSystem, SyncEngine};
    use deltacfs::net::PlatformProfile;

    let clock = SimClock::new();
    let cfg = DeltaCfsConfig::new()
        .with_streaming(true)
        .with_chunk_budget(4096)
        .with_wire_compression(true);
    let mut sys = DeltaCfsSystem::new(cfg, clock.clone(), LinkSpec::mobile());
    sys.set_platform(PlatformProfile::mobile());
    let obs = Obs::with_profiling(8192);
    sys.enable_observability(obs.clone());

    let mut fs = deltacfs::vfs::Vfs::new();
    fs.enable_event_log();
    fs.create("/doc.txt").unwrap();
    let text: Vec<u8> = b"the quick brown fox jumps over the lazy dog. "
        .iter()
        .copied()
        .cycle()
        .take(64 * 1024)
        .collect();
    fs.write("/doc.txt", 0, &text).unwrap();
    for e in fs.drain_events() {
        sys.on_event(&e, &fs);
    }
    clock.advance(4_000);
    sys.finish(&fs);
    assert_eq!(sys.server().file("/doc.txt"), Some(&text[..]));

    let profiler = Profiler::new(obs.spans.records());
    let stages: Vec<&str> = profiler.records().iter().map(|r| r.stage.as_str()).collect();
    for stage in ["vfs.write", "wire.compress", "wire.upload", "server.stage", "server.apply"] {
        assert!(stages.contains(&stage), "stage {stage} never recorded");
    }
    // Clean run: every span closed, and attribution still balances.
    assert!(profiler.records().iter().all(|r| r.end_ms.is_some()));
    for g in profiler.groups() {
        let total: u64 = g.attribution.iter().map(|(_, ms)| ms).sum();
        assert_eq!(total, g.e2e_ms);
    }
}
