//! Model-based property test: the Vfs behaves like a trivial
//! `HashMap<String, Vec<u8>>` reference model under arbitrary valid
//! operation sequences, and its event stream faithfully describes every
//! mutation (replaying the events reconstructs the same state).

use std::collections::HashMap;

use deltacfs::vfs::{OpEvent, Vfs};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum ModelOp {
    Create(u8),
    Write(u8, u16, Vec<u8>),
    Truncate(u8, u16),
    Rename(u8, u8),
    Link(u8, u8),
    Unlink(u8),
}

fn op_strategy() -> impl Strategy<Value = ModelOp> {
    prop_oneof![
        (0u8..6).prop_map(ModelOp::Create),
        (
            0u8..6,
            any::<u16>(),
            proptest::collection::vec(any::<u8>(), 0..64)
        )
            .prop_map(|(f, o, d)| ModelOp::Write(f, o % 512, d)),
        (0u8..6, any::<u16>()).prop_map(|(f, s)| ModelOp::Truncate(f, s % 700)),
        (0u8..6, 0u8..6).prop_map(|(a, b)| ModelOp::Rename(a, b)),
        (0u8..6, 0u8..6).prop_map(|(a, b)| ModelOp::Link(a, b)),
        (0u8..6).prop_map(ModelOp::Unlink),
    ]
}

fn name(f: u8) -> String {
    format!("/file{f}")
}

/// Applies an op to the reference model, mirroring POSIX semantics.
/// Returns whether the op should succeed on the real Vfs.
fn apply_model(model: &mut HashMap<String, Vec<u8>>, op: &ModelOp) -> bool {
    match op {
        ModelOp::Create(f) => {
            let p = name(*f);
            if let std::collections::hash_map::Entry::Vacant(e) = model.entry(p) {
                e.insert(Vec::new());
                true
            } else {
                false
            }
        }
        ModelOp::Write(f, offset, data) => {
            let p = name(*f);
            match model.get_mut(&p) {
                Some(content) => {
                    let end = *offset as usize + data.len();
                    if end > content.len() {
                        content.resize(end, 0);
                    }
                    content[*offset as usize..end].copy_from_slice(data);
                    true
                }
                None => false,
            }
        }
        ModelOp::Truncate(f, size) => {
            let p = name(*f);
            match model.get_mut(&p) {
                Some(content) => {
                    content.resize(*size as usize, 0);
                    true
                }
                None => false,
            }
        }
        ModelOp::Rename(a, b) => {
            let (pa, pb) = (name(*a), name(*b));
            if !model.contains_key(&pa) {
                return false;
            }
            if pa == pb {
                return true;
            }
            let content = model.remove(&pa).expect("checked");
            model.insert(pb, content);
            true
        }
        ModelOp::Link(a, b) => {
            // NOTE: the model does not track shared inodes; to keep it a
            // plain map we only allow links whose source is never written
            // again — instead we model link as a snapshot copy and then
            // *unlink the source*, keeping semantics exact. Simpler: skip
            // aliasing by rejecting links in the model comparison when
            // both names persist. To stay faithful we instead treat Link
            // as create-copy and immediately... this is handled below by
            // not generating writes through the alias: the Vfs shares
            // content, the model copies. We therefore only compare when
            // no write follows a link — enforced by filtering in the test
            // body. Here: copy.
            let (pa, pb) = (name(*a), name(*b));
            if !model.contains_key(&pa) || model.contains_key(&pb) || pa == pb {
                return false;
            }
            let content = model.get(&pa).expect("checked").clone();
            model.insert(pb, content);
            true
        }
        ModelOp::Unlink(f) => model.remove(&name(*f)).is_some(),
    }
}

fn apply_real(fs: &mut Vfs, op: &ModelOp) -> bool {
    match op {
        ModelOp::Create(f) => fs.create(&name(*f)).is_ok(),
        ModelOp::Write(f, offset, data) => fs.write(&name(*f), *offset as u64, data).is_ok(),
        ModelOp::Truncate(f, size) => fs.truncate(&name(*f), *size as u64).is_ok(),
        ModelOp::Rename(a, b) => fs.rename(&name(*a), &name(*b)).is_ok(),
        ModelOp::Link(a, b) => fs.link(&name(*a), &name(*b)).is_ok(),
        ModelOp::Unlink(f) => fs.unlink(&name(*f)).is_ok(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Vfs state matches the reference model after any op sequence that
    /// avoids hard-link aliasing (writes through one of two link names),
    /// which a flat map cannot model.
    #[test]
    fn vfs_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 0..64)) {
        // Filter out aliasing: once a Link succeeds, drop subsequent
        // Write/Truncate ops to either endpoint.
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();
        let mut fs = Vfs::new();
        let mut aliased: std::collections::HashSet<String> = std::collections::HashSet::new();
        for op in &ops {
            if let ModelOp::Write(f, ..) | ModelOp::Truncate(f, _) = op {
                if aliased.contains(&name(*f)) {
                    continue;
                }
            }
            let expect = apply_model(&mut model, op);
            let got = apply_real(&mut fs, op);
            prop_assert_eq!(expect, got, "op {:?} disagreed", op);
            if let (ModelOp::Link(a, b), true) = (op, got) {
                aliased.insert(name(*a));
                aliased.insert(name(*b));
            }
            // Renames move aliasing along.
            if let (ModelOp::Rename(a, b), true) = (op, got) {
                if aliased.remove(&name(*a)) {
                    aliased.insert(name(*b));
                }
            }
        }
        // Final state comparison.
        let mut real: HashMap<String, Vec<u8>> = HashMap::new();
        for path in fs.walk_files("/").unwrap() {
            real.insert(path.to_string(), fs.peek_all(path.as_str()).unwrap());
        }
        prop_assert_eq!(real, model);
    }

    /// Replaying the emitted event stream into a second Vfs reproduces
    /// the exact same file state — the event stream is a complete and
    /// faithful description of every mutation (what the sync engines
    /// rely on).
    #[test]
    fn event_stream_is_complete(ops in proptest::collection::vec(op_strategy(), 0..64)) {
        let mut fs = Vfs::new();
        fs.enable_event_log();
        for op in &ops {
            let _ = apply_real(&mut fs, op);
        }
        let events = fs.drain_events();

        let mut replayed = Vfs::new();
        for event in &events {
            match event {
                OpEvent::Create { path } => { replayed.create(path.as_str()).unwrap(); }
                OpEvent::Write { path, offset, data, .. } => {
                    replayed.write(path.as_str(), *offset, data).unwrap();
                }
                OpEvent::Truncate { path, size, .. } => {
                    replayed.truncate(path.as_str(), *size).unwrap();
                }
                OpEvent::Rename { src, dst, .. } => {
                    replayed.rename(src.as_str(), dst.as_str()).unwrap();
                }
                OpEvent::Link { src, dst } => {
                    replayed.link(src.as_str(), dst.as_str()).unwrap();
                }
                OpEvent::Unlink { path, .. } => {
                    replayed.unlink(path.as_str()).unwrap();
                }
                OpEvent::Mkdir { path } => { replayed.mkdir(path.as_str()).unwrap(); }
                OpEvent::Rmdir { path } => { replayed.rmdir(path.as_str()).unwrap(); }
                OpEvent::Close { .. } | OpEvent::Fsync { .. } => {}
            }
        }
        for path in fs.walk_files("/").unwrap() {
            prop_assert_eq!(
                fs.peek_all(path.as_str()).unwrap(),
                replayed.peek_all(path.as_str()).unwrap(),
                "{} diverged", path
            );
        }
        prop_assert_eq!(
            fs.walk_files("/").unwrap().len(),
            replayed.walk_files("/").unwrap().len()
        );
    }
}
