//! Property-based tests on the core invariants.

use bytes::Bytes;
use deltacfs::core::{ClientId, CloudServer, DeltaCfsClient, DeltaCfsConfig, UndoLog};
use deltacfs::delta::{cdc, compress, local, rsync, Cost, DeltaParams};
use deltacfs::net::SimClock;
use deltacfs::vfs::Vfs;
use proptest::prelude::*;

fn buffer(max: usize) -> impl Strategy<Value = Vec<u8>> {
    // Skewed toward repetitive content so copies/matches actually occur.
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..max),
        proptest::collection::vec(0u8..4, 0..max),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// rsync reconstructs any new file from any old file.
    #[test]
    fn rsync_roundtrip(old in buffer(8192), new in buffer(8192), bs in 1usize..256) {
        let params = DeltaParams::with_block_size(bs);
        let mut cost = Cost::new();
        let sig = rsync::signature(&old, &params, &mut cost);
        let delta = rsync::diff(&sig, &new, &params, &mut cost);
        prop_assert_eq!(delta.apply(&old).unwrap(), new);
    }

    /// The local bitwise variant reconstructs identically and never
    /// strong-hashes.
    #[test]
    fn local_diff_roundtrip_without_md5(old in buffer(8192), new in buffer(8192), bs in 1usize..256) {
        let params = DeltaParams::with_block_size(bs);
        let mut cost = Cost::new();
        let delta = local::diff(&old, &new, &params, &mut cost);
        prop_assert_eq!(delta.apply(&old).unwrap(), new);
        prop_assert_eq!(cost.bytes_strong_hashed, 0);
    }

    /// The parallel delta paths are byte-identical to the sequential ones
    /// — same `Delta`, same `Cost` totals — for any worker count. This is
    /// the determinism contract of DESIGN.md §10: parallelism may only
    /// change wall-clock time, never output or accounting.
    #[test]
    fn parallel_diff_is_byte_identical(
        old in buffer(8192),
        new in buffer(8192),
        bs in 1usize..256,
        workers in 1usize..8,
    ) {
        // Drop the size gate so small generated inputs actually take the
        // parallel path instead of falling back to the sequential walk.
        let params = DeltaParams::with_block_size(bs).with_min_parallel_bytes(0);

        let mut seq_cost = Cost::new();
        let seq = local::diff(&old, &new, &params, &mut seq_cost);
        let mut par_cost = Cost::new();
        let par = local::diff_parallel(&old, &new, &params, workers, &mut par_cost);
        prop_assert_eq!(&par, &seq);
        prop_assert_eq!(par_cost, seq_cost);

        let mut seq_cost = Cost::new();
        let sig = rsync::signature(&old, &params, &mut seq_cost);
        let seq = rsync::diff(&sig, &new, &params, &mut seq_cost);
        let mut par_cost = Cost::new();
        let sig_p = rsync::signature(&old, &params, &mut par_cost);
        let par = rsync::diff_parallel(&sig_p, &new, &params, workers, &mut par_cost);
        prop_assert_eq!(&par, &seq);
        prop_assert_eq!(par_cost, seq_cost);

        prop_assert_eq!(par.apply(&old).unwrap(), new);
    }

    /// The streaming chunked encoders are indistinguishable from the
    /// materializing ones once the chunks are reassembled: byte-identical
    /// `Delta`, identical `Cost`, for any worker count and any chunk
    /// budget — boundary splits re-merge losslessly. This is the
    /// correctness contract of the zero-copy upload pipeline (DESIGN.md
    /// §12): what goes over the wire in chunks is exactly what the
    /// one-shot encoder would have sent.
    #[test]
    fn streaming_equals_materialized(
        old in buffer(8192),
        new in buffer(8192),
        bs in 1usize..256,
        workers in 1usize..5,
        budget in 1usize..4096,
    ) {
        use deltacfs::delta::Delta;

        let params = DeltaParams::with_block_size(bs).with_min_parallel_bytes(0);

        let mut mat_cost = Cost::new();
        let mat = local::diff(&old, &new, &params, &mut mat_cost);
        let mut st_cost = Cost::new();
        let mut chunks = Vec::new();
        local::diff_streaming(&old, &new, &params, workers, &mut st_cost, budget, |c| {
            chunks.push(c);
        });
        let st = Delta::from_chunks(chunks);
        prop_assert_eq!(&st, &mat);
        prop_assert_eq!(st_cost, mat_cost);
        prop_assert_eq!(st.apply(&old).unwrap(), new.clone());

        let mut mat_cost = Cost::new();
        let sig = rsync::signature(&old, &params, &mut mat_cost);
        let mat = rsync::diff(&sig, &new, &params, &mut mat_cost);
        let mut st_cost = Cost::new();
        let sig_s = rsync::signature(&old, &params, &mut st_cost);
        let mut chunks = Vec::new();
        rsync::diff_streaming(&sig_s, &new, &params, workers, &mut st_cost, budget, |c| {
            chunks.push(c);
        });
        let st = Delta::from_chunks(chunks);
        prop_assert_eq!(&st, &mat);
        prop_assert_eq!(st_cost, mat_cost);
        prop_assert_eq!(st.apply(&old).unwrap(), new);
    }

    /// The hierarchical coarse→fine matcher is byte-identical to the
    /// sequential greedy walk — same `Delta`, same `Cost` totals — for
    /// local and rsync, across level fan-outs, worker counts, and chunk
    /// budgets (including the streaming paths). The shingle tree may only
    /// change wall-clock time, never output or accounting. `new` is
    /// derived from `old` (prefix shift + XOR edit + tail) so identical
    /// spans actually exist for the tree to pair; the tiny level params
    /// make the tree engage on kilobyte inputs.
    #[test]
    fn hierarchical_diff_is_byte_identical(
        old in buffer(16384),
        prefix in proptest::collection::vec(any::<u8>(), 0..128),
        tail in proptest::collection::vec(any::<u8>(), 0..256),
        edit_at in 0usize..16384,
        edit_len in 0usize..64,
        bs in 1usize..256,
        levels in 1usize..4,
        workers in 1usize..5,
        budget in 1usize..4096,
    ) {
        use deltacfs::delta::{take_hierarchy_stats, Delta, HierarchyParams};

        let mut new = prefix.clone();
        new.extend_from_slice(&old);
        if !old.is_empty() {
            let at = prefix.len() + edit_at % old.len();
            let end = (at + edit_len).min(new.len());
            for b in &mut new[at..end] {
                *b ^= 0x5A;
            }
        }
        new.extend_from_slice(&tail);

        let tiny = [
            cdc::CdcParams { min_size: 64, mask_bits: 6, max_size: 1024 },
            cdc::CdcParams { min_size: 16, mask_bits: 4, max_size: 256 },
            cdc::CdcParams { min_size: 4, mask_bits: 2, max_size: 64 },
        ];
        let h = HierarchyParams::from_levels(&tiny[..levels]).with_min_file_bytes(0);
        let params = DeltaParams::with_block_size(bs);
        let hier_params = params.with_hierarchy(Some(h));

        let mut seq_cost = Cost::new();
        let seq = local::diff(&old, &new, &params, &mut seq_cost);

        let mut h_cost = Cost::new();
        let hd = local::diff_parallel(&old, &new, &hier_params, workers, &mut h_cost);
        let _ = take_hierarchy_stats();
        prop_assert_eq!(&hd, &seq);
        prop_assert_eq!(h_cost, seq_cost);

        let mut st_cost = Cost::new();
        let mut chunks = Vec::new();
        local::diff_streaming(&old, &new, &hier_params, workers, &mut st_cost, budget, |c| {
            chunks.push(c);
        });
        let _ = take_hierarchy_stats();
        let st = Delta::from_chunks(chunks);
        prop_assert_eq!(&st, &seq);
        prop_assert_eq!(st_cost, seq_cost);
        prop_assert_eq!(st.apply(&old).unwrap(), new.clone());

        let mut seq_cost = Cost::new();
        let sig = rsync::signature(&old, &params, &mut seq_cost);
        let seq_r = rsync::diff(&sig, &new, &params, &mut seq_cost);

        let mut h_cost = Cost::new();
        let sig_h = rsync::signature(&old, &params, &mut h_cost);
        let hd = rsync::diff_hierarchical(&sig_h, &old, &new, &h, &params, workers, &mut h_cost);
        let _ = take_hierarchy_stats();
        prop_assert_eq!(&hd, &seq_r);
        prop_assert_eq!(h_cost, seq_cost);

        let mut st_cost = Cost::new();
        let sig_s = rsync::signature(&old, &params, &mut st_cost);
        let mut chunks = Vec::new();
        rsync::diff_hierarchical_streaming(
            &sig_s, &old, &new, &h, &params, workers, &mut st_cost, budget, |c| chunks.push(c),
        );
        let _ = take_hierarchy_stats();
        let st = Delta::from_chunks(chunks);
        prop_assert_eq!(&st, &seq_r);
        prop_assert_eq!(st_cost, seq_cost);
        prop_assert_eq!(st.apply(&old).unwrap(), new);
    }

    /// Local and remote rsync produce deltas of identical output length
    /// (they may differ in matching choices but must rebuild the same file).
    #[test]
    fn local_and_rsync_rebuild_identically(old in buffer(4096), new in buffer(4096)) {
        let params = DeltaParams::with_block_size(64);
        let mut cost = Cost::new();
        let d1 = local::diff(&old, &new, &params, &mut cost);
        let sig = rsync::signature(&old, &params, &mut cost);
        let d2 = rsync::diff(&sig, &new, &params, &mut cost);
        prop_assert_eq!(d1.apply(&old).unwrap(), d2.apply(&old).unwrap());
    }

    /// CDC chunks always partition the input exactly.
    #[test]
    fn cdc_partitions_input(data in buffer(64 * 1024)) {
        let params = cdc::CdcParams { min_size: 64, mask_bits: 8, max_size: 2048 };
        let spans = cdc::chunks(&data, &params, &mut Cost::new());
        let mut pos = 0u64;
        for s in &spans {
            prop_assert_eq!(s.offset, pos);
            prop_assert!(s.len > 0);
            pos += s.len;
        }
        prop_assert_eq!(pos, data.len() as u64);
    }

    /// Compression round-trips on arbitrary input.
    #[test]
    fn compress_roundtrip(data in buffer(32 * 1024)) {
        let compressed = compress::compress(&data, &mut Cost::new());
        prop_assert_eq!(compress::decompress(&compressed), Some(data));
    }

    /// The undo log reconstructs the pre-image of any write/truncate
    /// sequence.
    #[test]
    fn undo_log_reconstructs(initial in buffer(2048), ops in proptest::collection::vec((0usize..3000, buffer(256), any::<bool>()), 0..16)) {
        let original = initial.clone();
        let mut content = initial;
        let mut log = UndoLog::new();
        for (pos, data, is_truncate) in ops {
            let old_len = content.len() as u64;
            if is_truncate {
                let size = pos.min(content.len() + 512);
                let cut = if size < content.len() {
                    Bytes::copy_from_slice(&content[size..])
                } else {
                    Bytes::new()
                };
                content.resize(size, 0);
                log.record_truncate(old_len, size as u64, cut);
            } else {
                if data.is_empty() { continue; }
                let offset = pos.min(content.len());
                let end = offset + data.len();
                let overwritten = Bytes::copy_from_slice(
                    &content[offset.min(content.len())..end.min(content.len())],
                );
                if end > content.len() {
                    content.resize(end, 0);
                }
                content[offset..end].copy_from_slice(&data);
                log.record_write(old_len, offset as u64, overwritten, data.len() as u64);
            }
        }
        prop_assert_eq!(log.reconstruct(&content), original);
    }

    /// Whatever in-place write/truncate sequence an application performs,
    /// the cloud converges to the client's file content.
    #[test]
    fn client_server_converge_on_random_inplace_ops(
        ops in proptest::collection::vec((0u64..4096, buffer(512), any::<bool>()), 1..24)
    ) {
        let clock = SimClock::new();
        let mut client = DeltaCfsClient::new(ClientId(1), DeltaCfsConfig::new(), clock.clone());
        let mut server = CloudServer::new();
        let mut fs = Vfs::new();
        fs.enable_event_log();
        fs.create("/f").unwrap();
        for (offset, data, truncate) in ops {
            if truncate {
                fs.truncate("/f", offset).unwrap();
            } else if !data.is_empty() {
                fs.write("/f", offset, &data).unwrap();
            }
            for e in fs.drain_events() {
                client.handle_event(&e, &fs);
            }
            // Occasionally let time pass so multiple nodes form.
            clock.advance(1500);
            for group in client.tick(&fs) {
                server.apply_txn(&group);
            }
        }
        clock.advance(10_000);
        for group in client.flush(&fs) {
            server.apply_txn(&group);
        }
        let local_content = fs.peek_all("/f").unwrap();
        prop_assert_eq!(server.file("/f"), Some(&local_content[..]));
    }

    /// Transactional renames with arbitrary edits still converge.
    #[test]
    fn client_server_converge_on_transactional_saves(
        edits in proptest::collection::vec(buffer(1024), 1..6)
    ) {
        let clock = SimClock::new();
        let mut client = DeltaCfsClient::new(ClientId(1), DeltaCfsConfig::new(), clock.clone());
        let mut server = CloudServer::new();
        let mut fs = Vfs::new();
        fs.enable_event_log();
        let pump = |client: &mut DeltaCfsClient, fs: &mut Vfs| {
            for e in fs.drain_events() {
                client.handle_event(&e, fs);
            }
        };
        fs.create("/f").unwrap();
        fs.write("/f", 0, b"initial content for the transactional file").unwrap();
        pump(&mut client, &mut fs);
        clock.advance(4000);
        for group in client.tick(&fs) {
            server.apply_txn(&group);
        }
        for (i, edit) in edits.iter().enumerate() {
            let tmp0 = format!("/f.old{i}");
            let tmp1 = format!("/f.new{i}");
            fs.rename("/f", &tmp0).unwrap();
            pump(&mut client, &mut fs);
            fs.create(&tmp1).unwrap();
            pump(&mut client, &mut fs);
            let mut doc = fs.peek_all(&tmp0).unwrap();
            doc.extend_from_slice(edit);
            fs.write(&tmp1, 0, &doc).unwrap();
            pump(&mut client, &mut fs);
            fs.close_path(&tmp1).unwrap();
            pump(&mut client, &mut fs);
            fs.rename(&tmp1, "/f").unwrap();
            pump(&mut client, &mut fs);
            fs.unlink(&tmp0).unwrap();
            pump(&mut client, &mut fs);
            clock.advance(4000);
            for group in client.tick(&fs) {
                server.apply_txn(&group);
            }
        }
        clock.advance(10_000);
        for group in client.flush(&fs) {
            server.apply_txn(&group);
        }
        let local_content = fs.peek_all("/f").unwrap();
        prop_assert_eq!(server.file("/f"), Some(&local_content[..]));
        // No temp files linger on the cloud.
        for p in server.paths() {
            prop_assert!(!p.contains(".old") && !p.contains(".new"), "stray {p}");
        }
    }
}

// --- Wire-format properties --------------------------------------------

use deltacfs::core::{wire, FileOpItem, Payload, UpdateMsg, UpdatePayload};
use deltacfs::delta::{Delta, DeltaOp};

fn arb_version() -> impl Strategy<Value = Option<deltacfs::core::Version>> {
    proptest::option::of(
        (any::<u32>(), any::<u64>()).prop_map(|(c, n)| deltacfs::core::Version {
            client: ClientId(c),
            counter: n,
        }),
    )
}

fn arb_group() -> impl Strategy<Value = Option<deltacfs::core::GroupId>> {
    proptest::option::of(
        (any::<u32>(), any::<u64>()).prop_map(|(c, n)| deltacfs::core::GroupId {
            client: ClientId(c),
            seq: n,
        }),
    )
}

fn arb_payload() -> impl Strategy<Value = UpdatePayload> {
    prop_oneof![
        Just(UpdatePayload::Create),
        Just(UpdatePayload::Unlink),
        Just(UpdatePayload::Mkdir),
        Just(UpdatePayload::Rmdir),
        "[a-z/]{1,20}".prop_map(|to| UpdatePayload::Rename { to }),
        "[a-z/]{1,20}".prop_map(|to| UpdatePayload::Link { to }),
        proptest::collection::vec(any::<u8>(), 0..256)
            .prop_map(|d| UpdatePayload::Full(Payload::from(d))),
        proptest::collection::vec(
            prop_oneof![
                (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..64)).prop_map(|(o, d)| {
                    FileOpItem::Write {
                        offset: o,
                        data: Payload::from(d),
                    }
                }),
                any::<u64>().prop_map(|s| FileOpItem::Truncate { size: s }),
            ],
            0..8
        )
        .prop_map(UpdatePayload::Ops),
        (
            "[a-z/]{1,20}",
            proptest::collection::vec(
                prop_oneof![
                    (any::<u64>(), 1u64..10_000)
                        .prop_map(|(o, l)| DeltaOp::Copy { offset: o, len: l }),
                    proptest::collection::vec(any::<u8>(), 1..64)
                        .prop_map(|d| DeltaOp::Literal(Bytes::from(d))),
                ],
                0..8
            )
        )
            .prop_map(|(base_path, ops)| UpdatePayload::Delta {
                base_path,
                delta: Delta::from_ops(ops),
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every message round-trips through the wire format.
    #[test]
    fn wire_roundtrip(
        path in "[a-z0-9/._-]{1,40}",
        base in arb_version(),
        version in arb_version(),
        txn in proptest::option::of(1u64..u64::MAX),
        group in arb_group(),
        payload in arb_payload(),
    ) {
        let msg = UpdateMsg { path, base, version, payload, txn, group };
        let decoded = wire::decode(&wire::encode(&msg)).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    /// Decoding arbitrary bytes never panics (it may error).
    #[test]
    fn wire_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = wire::decode(&bytes);
    }

    /// Decoding a randomly corrupted valid message never panics.
    #[test]
    fn wire_decode_survives_corruption(
        payload in arb_payload(),
        group in arb_group(),
        flip_at in any::<u16>(),
        flip_bit in 0u8..8,
    ) {
        let msg = UpdateMsg {
            path: "/f".into(),
            base: None,
            version: None,
            payload,
            txn: None,
            group,
        };
        let mut bytes = wire::encode(&msg);
        let idx = flip_at as usize % bytes.len();
        bytes[idx] ^= 1 << flip_bit;
        // Either it errors, or it decodes to *some* message — but never
        // panics or loops.
        let _ = wire::decode(&bytes);
    }
}

// --- Multi-client convergence ------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Two clients editing disjoint files through the hub always converge
    /// to identical folder states (no conflicts possible).
    #[test]
    fn hub_converges_on_disjoint_edits(
        ops in proptest::collection::vec(
            (any::<bool>(), 0u8..3, 0u64..2048, buffer(256)),
            1..24
        )
    ) {
        use deltacfs::core::{DeltaCfsConfig, SyncHub};
        use deltacfs::net::LinkSpec;

        let clock = SimClock::new();
        let mut hub = SyncHub::new(clock.clone());
        let a = hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
        let b = hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());

        for (who, file, offset, data) in ops {
            let (idx, prefix) = if who { (a, "a") } else { (b, "b") };
            let path = format!("/{prefix}{file}");
            if !hub.fs(idx).exists(&path) {
                hub.fs_mut(idx).create(&path).unwrap();
            }
            if !data.is_empty() {
                hub.fs_mut(idx).write(&path, offset, &data).unwrap();
            }
            hub.pump();
            clock.advance(1_000);
            hub.pump();
        }
        clock.advance(10_000);
        hub.pump();
        hub.flush();

        // Both clients and the cloud hold identical file sets.
        let files_a = hub.fs(a).walk_files("/").unwrap();
        let files_b = hub.fs(b).walk_files("/").unwrap();
        prop_assert_eq!(&files_a, &files_b);
        for path in files_a {
            let ca = hub.fs(a).peek_all(path.as_str()).unwrap();
            let cb = hub.fs(b).peek_all(path.as_str()).unwrap();
            prop_assert_eq!(&ca, &cb, "{} diverged between clients", path);
            prop_assert_eq!(
                hub.server().file(path.as_str()).as_deref(),
                Some(&ca[..]),
                "{} diverged from cloud", path
            );
        }
        prop_assert!(hub.conflicts().is_empty());
    }
}

// --- Cloud-server invariants --------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever mix of (possibly stale) updates arrives, the server keeps
    /// its invariants: the current content is always retrievable at the
    /// current version, history stays bounded, and stale writers never
    /// clobber the first writer.
    #[test]
    fn server_invariants_under_update_storms(
        updates in proptest::collection::vec(
            (0u8..3, any::<bool>(), proptest::collection::vec(any::<u8>(), 0..64)),
            1..40
        )
    ) {
        use deltacfs::core::{ApplyOutcome, UpdateMsg, UpdatePayload, Version};

        let mut server = CloudServer::new();
        let mut latest: std::collections::HashMap<String, Version> =
            std::collections::HashMap::new();
        for (n, (file, stale, data)) in updates.into_iter().enumerate() {
            let path = format!("/f{file}");
            let version = Version { client: ClientId(1), counter: n as u64 + 1 };
            // A stale writer uses a base that is one behind (or absent).
            let base = if stale { None } else { latest.get(&path).copied() };
            let outcome = server.apply_msg(&UpdateMsg {
                path: path.clone(),
                base,
                version: Some(version),
                payload: UpdatePayload::Full(Payload::from(data.clone())),
                txn: None,
                group: None,
            });
            match outcome {
                ApplyOutcome::Applied => {
                    latest.insert(path.clone(), version);
                    // Current content is what we just wrote.
                    prop_assert_eq!(server.file(&path), Some(&data[..]));
                    prop_assert_eq!(server.version(&path), Some(version));
                }
                ApplyOutcome::Conflict { stored_as } => {
                    // The current version must be untouched...
                    prop_assert_eq!(server.version(&path), latest.get(&path).copied());
                    // ...and the losing content preserved somewhere.
                    prop_assert!(server.file(&stored_as).is_some());
                }
                ApplyOutcome::Rejected { .. } => {
                    prop_assert_eq!(server.version(&path), latest.get(&path).copied());
                }
            }
            // History is bounded and its entries all resolve.
            for v in server.version_history(&path) {
                prop_assert!(server.file_at(&path, v).is_some());
            }
            prop_assert!(server.version_history(&path).len() <= 9);
        }
    }
}

// --- Fault-injection invariants ------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A random write/rename/unlink workload pushed through a seeded
    /// fault schedule (drops, duplicates, reordered redeliveries, lost
    /// acks) still converges, and the server acknowledges each client's
    /// versions in strictly increasing order — the sync queue's causal
    /// order survives retransmission and duplicate delivery.
    #[test]
    fn faulty_sync_converges_and_preserves_causal_order(
        seed in any::<u64>(),
        upload_drop in 0.0f64..0.4,
        download_drop in 0.0f64..0.3,
        duplicate in 0.0f64..0.5,
        reorder in 0.0f64..1.0,
        ops in proptest::collection::vec(
            (0u8..5, 0usize..4, 0u64..2048, buffer(256)),
            1..20
        )
    ) {
        use deltacfs::core::SyncHub;
        use deltacfs::net::{FaultSpec, LinkSpec};

        let clock = SimClock::new();
        let mut hub = SyncHub::new(clock.clone());
        hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
        hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
        hub.enable_faults(
            FaultSpec::clean(seed)
                .with_rates(upload_drop, download_drop, duplicate)
                .with_reorder(reorder),
        );

        // Client 0 runs the workload over a small pool of live paths;
        // renames move files to fresh names so late duplicates of
        // rename groups would be caught clobbering recreated paths.
        let mut live: Vec<String> = Vec::new();
        let mut next_name = 0usize;
        for (kind, sel, offset, data) in ops {
            match kind {
                // Write (create on first touch) — the common case.
                0..=2 => {
                    let path = if live.is_empty() || (kind == 0 && live.len() < 4) {
                        let p = format!("/w{next_name}");
                        next_name += 1;
                        hub.fs_mut(0).create(&p).unwrap();
                        live.push(p.clone());
                        p
                    } else {
                        live[sel % live.len()].clone()
                    };
                    let len = hub.fs_mut(0).metadata(&path).map(|m| m.size).unwrap_or(0);
                    let off = offset.min(len);
                    if !data.is_empty() {
                        hub.fs_mut(0).write(&path, off, &data).unwrap();
                    }
                }
                3 => {
                    if !live.is_empty() {
                        let src = live.remove(sel % live.len());
                        let dst = format!("/r{next_name}");
                        next_name += 1;
                        hub.fs_mut(0).rename(&src, &dst).unwrap();
                        live.push(dst);
                    }
                }
                _ => {
                    if !live.is_empty() {
                        let victim = live.remove(sel % live.len());
                        hub.fs_mut(0).unlink(&victim).unwrap();
                    }
                }
            }
            hub.pump();
            clock.advance(2_500);
            hub.pump();
        }
        let drained = hub.settle(600_000);
        prop_assert!(drained, "seed {}: courier gave up or never drained", seed);

        // Convergence: the uploader, the passive peer, and the server
        // agree on every path the server holds.
        for path in hub.server().paths() {
            let server = hub.server().file(&path).unwrap();
            for idx in 0..2 {
                let local = hub.fs(idx).peek_all(&path).unwrap_or_default();
                prop_assert_eq!(
                    &local, &server,
                    "seed {}: client {} diverged on {}", seed, idx, path
                );
            }
        }
        // Causal order: per client, acked version counters strictly
        // increase — no retry or duplicate was committed out of order.
        let mut last: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
        for (client, path, version) in hub.acked() {
            let prev = last.insert(*client, version.counter);
            prop_assert!(
                prev.is_none_or(|p| version.counter > p),
                "seed {}: client {} acked v{} after v{:?} ({})",
                seed, client, version.counter, prev, path
            );
        }
    }

    /// Two *concurrently faulty* writers, each under its own independent
    /// drop/dup/reorder schedule (its own seed and RNG), still converge
    /// with the server, and each writer's acked versions stay in causal
    /// order. Renames keep version-less groups in play, so this also
    /// exercises the `<CliID, GroupSeq>` replay index under interleaved
    /// duplicate redelivery from both writers.
    #[test]
    fn multi_writer_fault_topology_converges(
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        drop_a in 0.0f64..0.35,
        drop_b in 0.0f64..0.35,
        dup_a in 0.0f64..0.5,
        dup_b in 0.0f64..0.5,
        reorder in 0.0f64..1.0,
        ops in proptest::collection::vec(
            (any::<bool>(), 0u8..5, 0usize..4, 0u64..2048, buffer(192)),
            1..20
        )
    ) {
        use deltacfs::core::SyncHub;
        use deltacfs::net::{FaultSpec, LinkSpec};

        let clock = SimClock::new();
        let mut hub = SyncHub::new(clock.clone());
        hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
        hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
        hub.enable_fault_topology(vec![
            FaultSpec::clean(seed_a)
                .with_rates(drop_a, 0.2, dup_a)
                .with_reorder(reorder),
            FaultSpec::clean(seed_b)
                .with_rates(drop_b, 0.15, dup_b)
                .with_reorder(1.0 - reorder),
        ]);

        // Each writer mutates its own namespace: the contention under
        // test lives in the fault layer (interleaved retries, duplicate
        // redeliveries, per-writer schedules), not in file conflicts.
        let mut live: [Vec<String>; 2] = [Vec::new(), Vec::new()];
        let mut next_name = 0usize;
        for (who, kind, sel, offset, data) in ops {
            let w = usize::from(who);
            let prefix = if w == 0 { "a" } else { "b" };
            match kind {
                0..=2 => {
                    let path = if live[w].is_empty() || (kind == 0 && live[w].len() < 4) {
                        let p = format!("/{prefix}{next_name}");
                        next_name += 1;
                        hub.fs_mut(w).create(&p).unwrap();
                        live[w].push(p.clone());
                        p
                    } else {
                        live[w][sel % live[w].len()].clone()
                    };
                    let len = hub.fs_mut(w).metadata(&path).map(|m| m.size).unwrap_or(0);
                    let off = offset.min(len);
                    if !data.is_empty() {
                        hub.fs_mut(w).write(&path, off, &data).unwrap();
                    }
                }
                3 => {
                    if !live[w].is_empty() {
                        let src = live[w].remove(sel % live[w].len());
                        let dst = format!("/{prefix}r{next_name}");
                        next_name += 1;
                        hub.fs_mut(w).rename(&src, &dst).unwrap();
                        live[w].push(dst);
                    }
                }
                _ => {
                    if !live[w].is_empty() {
                        let victim = live[w].remove(sel % live[w].len());
                        hub.fs_mut(w).unlink(&victim).unwrap();
                    }
                }
            }
            hub.pump();
            clock.advance(2_500);
            hub.pump();
        }
        let drained = hub.settle(600_000);
        prop_assert!(
            drained,
            "seeds {}/{}: a courier gave up or never drained", seed_a, seed_b
        );
        // Every held-back duplicate was redelivered by the time the hub
        // settled.
        prop_assert_eq!(hub.deferred_len(), 0);

        // Convergence: both writers and the server agree on every path
        // the server holds.
        for path in hub.server().paths() {
            let server = hub.server().file(&path).unwrap();
            for idx in 0..2 {
                let local = hub.fs(idx).peek_all(&path).unwrap_or_default();
                prop_assert_eq!(
                    &local, &server,
                    "seeds {}/{}: client {} diverged on {}", seed_a, seed_b, idx, path
                );
            }
        }
        // Causal order per writer, independent of the other writer's
        // interleaved retries.
        let mut last: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
        for (client, path, version) in hub.acked() {
            let prev = last.insert(*client, version.counter);
            prop_assert!(
                prev.is_none_or(|p| version.counter > p),
                "seeds {}/{}: client {} acked v{} after v{:?} ({})",
                seed_a, seed_b, client, version.counter, prev, path
            );
        }
    }
}

// --- Shard invariance (DESIGN.md §13) ------------------------------------

use deltacfs::core::{ShardRouter, SyncHub};
use deltacfs::net::{FaultSpec, LinkSpec};

/// Drives a multi-tenant workload on a hub with `shards` shards: four
/// tenants, two clients each, writes/renames/unlinks confined to each
/// tenant's namespace. Returns everything shard count must not change.
#[allow(clippy::type_complexity)]
fn run_tenant_workload(
    shards: usize,
    ops: &[(u8, bool, u8, usize, u64, Vec<u8>)],
) -> (
    Vec<(String, Option<Vec<u8>>)>,      // server content
    Vec<String>,                         // causal apply order
    Vec<Vec<(String, Vec<u8>)>>,         // per-client file state
    Vec<(u64, u64)>,                     // per-client traffic totals
    Vec<(usize, String, u64)>,           // acked versions, in ack order
    usize,                               // conflicts observed
) {
    use deltacfs::core::DeltaCfsConfig;

    let clock = SimClock::new();
    let mut hub = SyncHub::with_shards(clock.clone(), shards);
    let mut clients = Vec::new();
    for t in 0..4 {
        let ns = format!("t{t}");
        let a = hub.add_client_in(&ns, DeltaCfsConfig::new(), LinkSpec::pc());
        let b = hub.add_client_in(&ns, DeltaCfsConfig::new(), LinkSpec::pc());
        hub.fs_mut(a).mkdir_all(&format!("/{ns}")).unwrap();
        clients.push((a, b));
    }
    let mut live: Vec<Vec<String>> = vec![Vec::new(); 4];
    let mut next_name = 0usize;
    for (tenant, second, kind, sel, offset, data) in ops {
        let t = (*tenant as usize) % 4;
        let idx = if *second { clients[t].1 } else { clients[t].0 };
        match kind {
            0..=2 => {
                let path = if live[t].is_empty() || (*kind == 0 && live[t].len() < 4) {
                    let p = format!("/t{t}/w{next_name}");
                    next_name += 1;
                    // Only the dir-owning writer may create before the
                    // Mkdir forwards; both clients of a tenant share the
                    // namespace dir made above by client a, which has
                    // been forwarded by the first pump.
                    if !hub.fs(idx).exists(&format!("/t{t}")) {
                        hub.fs_mut(idx).mkdir_all(&format!("/t{t}")).unwrap();
                    }
                    hub.fs_mut(idx).create(&p).unwrap();
                    live[t].push(p.clone());
                    p
                } else {
                    live[t][sel % live[t].len()].clone()
                };
                if !hub.fs(idx).exists(&path) {
                    continue; // peer hasn't received the create yet
                }
                let len = hub.fs_mut(idx).metadata(&path).map(|m| m.size).unwrap_or(0);
                let off = offset.min(&len).to_owned();
                if !data.is_empty() {
                    hub.fs_mut(idx).write(&path, off, data).unwrap();
                }
            }
            3 => {
                if !live[t].is_empty() {
                    let pick = sel % live[t].len();
                    let src = live[t].remove(pick);
                    if hub.fs(idx).exists(&src) {
                        let dst = format!("/t{t}/r{next_name}");
                        next_name += 1;
                        hub.fs_mut(idx).rename(&src, &dst).unwrap();
                        live[t].push(dst);
                    }
                }
            }
            _ => {
                if !live[t].is_empty() {
                    let pick = sel % live[t].len();
                    let victim = live[t].remove(pick);
                    if hub.fs(idx).exists(&victim) {
                        hub.fs_mut(idx).unlink(&victim).unwrap();
                    }
                }
            }
        }
        hub.pump();
        clock.advance(2_500);
        hub.pump();
    }
    clock.advance(10_000);
    hub.pump();
    hub.flush();

    let server_content = hub
        .server()
        .paths()
        .into_iter()
        .map(|p| {
            let c = hub.server().file(&p);
            (p, c)
        })
        .collect();
    let client_files = (0..hub.client_count())
        .map(|idx| {
            let mut files: Vec<(String, Vec<u8>)> = hub
                .fs(idx)
                .walk_files("/")
                .unwrap_or_default()
                .into_iter()
                .map(|p| {
                    let c = hub.fs(idx).peek_all(p.as_str()).unwrap();
                    (p.to_string(), c)
                })
                .collect();
            files.sort();
            files
        })
        .collect();
    let traffic = (0..hub.client_count())
        .map(|idx| (hub.traffic(idx).bytes_up, hub.traffic(idx).bytes_down))
        .collect();
    let acked = hub
        .acked()
        .iter()
        .map(|(c, p, v)| (*c, p.clone(), v.counter))
        .collect();
    (
        server_content,
        hub.server().apply_order(),
        client_files,
        traffic,
        acked,
        hub.conflicts().len(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sharding is a pure dispatch optimization (DESIGN.md §13): the same
    /// multi-tenant workload run on 1-, 4- and 16-shard hubs produces
    /// identical server content, identical per-client state, identical
    /// traffic totals, and the identical causal apply order. The striped
    /// locks, per-shard persistence and batched fan-out may only change
    /// wall-clock time, never outcomes.
    #[test]
    fn sharded_hub_matches_single_shard(
        ops in proptest::collection::vec(
            (0u8..4, any::<bool>(), 0u8..5, 0usize..4, 0u64..2048, buffer(192)),
            1..16
        )
    ) {
        let baseline = run_tenant_workload(1, &ops);
        for shards in [4usize, 16] {
            let sharded = run_tenant_workload(shards, &ops);
            prop_assert_eq!(&sharded.0, &baseline.0, "server content, {} shards", shards);
            prop_assert_eq!(&sharded.1, &baseline.1, "apply order, {} shards", shards);
            prop_assert_eq!(&sharded.2, &baseline.2, "client state, {} shards", shards);
            prop_assert_eq!(&sharded.3, &baseline.3, "traffic, {} shards", shards);
            prop_assert_eq!(&sharded.4, &baseline.4, "acked order, {} shards", shards);
            prop_assert_eq!(sharded.5, baseline.5, "conflicts, {} shards", shards);
        }
    }

    /// The multi-writer fault topology test, on a sharded hub: two
    /// writers whose namespaces live on different shards of four, each
    /// under its own independent drop/dup/reorder schedule, with a
    /// passive reader per namespace so forwarded downloads stay in play.
    /// Sharded dispatch, per-shard snapshots and replicated group
    /// records must preserve convergence and per-writer causal order.
    #[test]
    fn sharded_multi_writer_fault_topology_converges(
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        drop_a in 0.0f64..0.35,
        drop_b in 0.0f64..0.35,
        dup_a in 0.0f64..0.5,
        dup_b in 0.0f64..0.5,
        reorder in 0.0f64..1.0,
        ops in proptest::collection::vec(
            (any::<bool>(), 0u8..5, 0usize..4, 0u64..2048, buffer(192)),
            1..16
        )
    ) {
        use deltacfs::core::DeltaCfsConfig;

        // Two namespaces guaranteed to live on different shards.
        let router = ShardRouter::new(4);
        let ns_a = "a".to_string();
        let ns_b = (0..)
            .map(|i| format!("b{i}"))
            .find(|ns| router.shard_of_namespace(ns) != router.shard_of_namespace(&ns_a))
            .unwrap();

        let clock = SimClock::new();
        let mut hub = SyncHub::with_shards(clock.clone(), 4);
        let wa = hub.add_client_in(&ns_a, DeltaCfsConfig::new(), LinkSpec::pc());
        let wb = hub.add_client_in(&ns_b, DeltaCfsConfig::new(), LinkSpec::pc());
        let _ra = hub.add_client_in(&ns_a, DeltaCfsConfig::new(), LinkSpec::pc());
        let _rb = hub.add_client_in(&ns_b, DeltaCfsConfig::new(), LinkSpec::pc());
        prop_assert!(hub.home_shard(wa) != hub.home_shard(wb));
        hub.fs_mut(wa).mkdir_all(&format!("/{ns_a}")).unwrap();
        hub.fs_mut(wb).mkdir_all(&format!("/{ns_b}")).unwrap();
        hub.enable_fault_topology(vec![
            FaultSpec::clean(seed_a)
                .with_rates(drop_a, 0.2, dup_a)
                .with_reorder(reorder),
            FaultSpec::clean(seed_b)
                .with_rates(drop_b, 0.15, dup_b)
                .with_reorder(1.0 - reorder),
            FaultSpec::clean(seed_a ^ 0xA5A5)
                .with_rates(0.0, 0.25, 0.0),
            FaultSpec::clean(seed_b ^ 0x5A5A)
                .with_rates(0.0, 0.25, 0.0),
        ]);

        let writers = [(wa, ns_a.clone()), (wb, ns_b.clone())];
        let mut live: [Vec<String>; 2] = [Vec::new(), Vec::new()];
        let mut next_name = 0usize;
        for (who, kind, sel, offset, data) in ops {
            let w = usize::from(who);
            let (idx, ns) = (&writers[w].0, &writers[w].1);
            match kind {
                0..=2 => {
                    let path = if live[w].is_empty() || (kind == 0 && live[w].len() < 4) {
                        let p = format!("/{ns}/{next_name}");
                        next_name += 1;
                        hub.fs_mut(*idx).create(&p).unwrap();
                        live[w].push(p.clone());
                        p
                    } else {
                        live[w][sel % live[w].len()].clone()
                    };
                    let len = hub.fs_mut(*idx).metadata(&path).map(|m| m.size).unwrap_or(0);
                    let off = offset.min(len);
                    if !data.is_empty() {
                        hub.fs_mut(*idx).write(&path, off, &data).unwrap();
                    }
                }
                3 => {
                    if !live[w].is_empty() {
                        let src = live[w].remove(sel % live[w].len());
                        let dst = format!("/{ns}/r{next_name}");
                        next_name += 1;
                        hub.fs_mut(*idx).rename(&src, &dst).unwrap();
                        live[w].push(dst);
                    }
                }
                _ => {
                    if !live[w].is_empty() {
                        let victim = live[w].remove(sel % live[w].len());
                        hub.fs_mut(*idx).unlink(&victim).unwrap();
                    }
                }
            }
            hub.pump();
            clock.advance(2_500);
            hub.pump();
        }
        let drained = hub.settle(600_000);
        prop_assert!(
            drained,
            "seeds {}/{}: a courier gave up or never drained", seed_a, seed_b
        );
        prop_assert_eq!(hub.deferred_len(), 0);

        // Convergence per namespace: each client agrees with the server
        // on every path inside its own namespace.
        for idx in 0..hub.client_count() {
            let ns = hub.namespace(idx).to_string();
            for path in hub.server().paths_in_namespace(&ns) {
                let server = hub.server().file(&path).unwrap();
                let local = hub.fs(idx).peek_all(&path).unwrap_or_default();
                prop_assert_eq!(
                    &local, &server,
                    "seeds {}/{}: client {} diverged on {}", seed_a, seed_b, idx, path
                );
            }
        }
        // Causal order per writer, independent of the other shard's
        // interleaved retries.
        let mut last: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
        for (client, path, version) in hub.acked() {
            let prev = last.insert(*client, version.counter);
            prop_assert!(
                prev.is_none_or(|p| version.counter > p),
                "seeds {}/{}: client {} acked v{} after v{:?} ({})",
                seed_a, seed_b, client, version.counter, prev, path
            );
        }
    }
}

// --- Bidirectional sync (DESIGN.md §14) -----------------------------------

/// Two replicas of one shared namespace editing concurrently under a
/// seeded fault topology: every group either replica uploads is planned
/// against the other's version table and streamed back out as chunked
/// forward frames, so the download-direction framing, staging and
/// atomic group commit run in both directions at once. Returns
/// everything the shard count must not change.
#[allow(clippy::type_complexity)]
fn run_bidirectional_workload(
    shards: usize,
    seeds: (u64, u64),
    rates: (f64, f64, f64, f64),
    ops: &[(bool, u8, usize, u64, Vec<u8>)],
) -> (
    bool,                           // settled without give-up
    usize,                          // deferred duplicates left
    usize,                          // conflicts observed
    Vec<(String, Option<Vec<u8>>)>, // server content
    Vec<Vec<(String, Vec<u8>)>>,    // per-replica file state
    Vec<(u64, u64)>,                // per-replica traffic totals
) {
    use deltacfs::core::DeltaCfsConfig;

    let clock = SimClock::new();
    let mut hub = SyncHub::with_shards(clock.clone(), shards);
    let a = hub.add_client_in("shared", DeltaCfsConfig::new(), LinkSpec::pc());
    let b = hub.add_client_in("shared", DeltaCfsConfig::new(), LinkSpec::pc());
    hub.fs_mut(a).mkdir_all("/shared").unwrap();
    let (up_a, down_a, up_b, down_b) = rates;
    hub.enable_fault_topology(vec![
        FaultSpec::clean(seeds.0)
            .with_rates(up_a, down_a, 0.3)
            .with_reorder(0.5),
        FaultSpec::clean(seeds.1)
            .with_rates(up_b, down_b, 0.4)
            .with_reorder(0.5),
    ]);

    // Each replica edits its own files, but inside the one shared
    // namespace — so every committed group fans back out to the other
    // replica and both downlinks carry streamed forwards concurrently.
    let replicas = [a, b];
    let mut live: [Vec<String>; 2] = [Vec::new(), Vec::new()];
    let mut next_name = 0usize;
    for (who, kind, sel, offset, data) in ops {
        let w = usize::from(*who);
        let idx = replicas[w];
        let prefix = if w == 0 { "a" } else { "b" };
        match kind {
            0..=2 => {
                let path = if live[w].is_empty() || (*kind == 0 && live[w].len() < 4) {
                    let p = format!("/shared/{prefix}{next_name}");
                    next_name += 1;
                    if !hub.fs(idx).exists("/shared") {
                        // The Mkdir forward was lost on this replica's
                        // downlink; recreate the namespace dir locally.
                        hub.fs_mut(idx).mkdir_all("/shared").unwrap();
                    }
                    hub.fs_mut(idx).create(&p).unwrap();
                    live[w].push(p.clone());
                    p
                } else {
                    live[w][sel % live[w].len()].clone()
                };
                let len = hub.fs_mut(idx).metadata(&path).map(|m| m.size).unwrap_or(0);
                let off = (*offset).min(len);
                if !data.is_empty() {
                    hub.fs_mut(idx).write(&path, off, data).unwrap();
                }
            }
            3 => {
                if !live[w].is_empty() {
                    let src = live[w].remove(sel % live[w].len());
                    let dst = format!("/shared/{prefix}r{next_name}");
                    next_name += 1;
                    hub.fs_mut(idx).rename(&src, &dst).unwrap();
                    live[w].push(dst);
                }
            }
            _ => {
                if !live[w].is_empty() {
                    let victim = live[w].remove(sel % live[w].len());
                    hub.fs_mut(idx).unlink(&victim).unwrap();
                }
            }
        }
        hub.pump();
        clock.advance(2_500);
        hub.pump();
    }
    let settled = hub.settle(600_000);

    let mut server_content: Vec<(String, Option<Vec<u8>>)> = hub
        .server()
        .paths()
        .into_iter()
        .map(|p| {
            let c = hub.server().file(&p);
            (p, c)
        })
        .collect();
    server_content.sort();
    let replica_state = replicas
        .iter()
        .map(|&idx| {
            let mut files: Vec<(String, Vec<u8>)> = hub
                .fs(idx)
                .walk_files("/")
                .unwrap_or_default()
                .into_iter()
                .map(|p| {
                    let c = hub.fs(idx).peek_all(p.as_str()).unwrap();
                    (p.to_string(), c)
                })
                .collect();
            files.sort();
            files
        })
        .collect();
    let traffic = replicas
        .iter()
        .map(|&idx| (hub.traffic(idx).bytes_up, hub.traffic(idx).bytes_down))
        .collect();
    (
        settled,
        hub.deferred_len(),
        hub.conflicts().len(),
        server_content,
        replica_state,
        traffic,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Bidirectional sync: two replicas of one namespace exchanging
    /// concurrent edits under independent per-replica fault schedules
    /// always converge — each replica ends holding exactly the server's
    /// file set byte for byte, with no deferred duplicates and no
    /// conflict copies (the replicas edit disjoint files; only the
    /// fault layer and the forwarded streams contend).
    #[test]
    fn bidirectional_replicas_converge_under_fault_topology(
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        up_a in 0.0f64..0.3,
        down_a in 0.0f64..0.3,
        up_b in 0.0f64..0.3,
        down_b in 0.0f64..0.3,
        ops in proptest::collection::vec(
            (any::<bool>(), 0u8..5, 0usize..4, 0u64..2048, buffer(192)),
            1..16
        )
    ) {
        let (settled, deferred, conflicts, server, replicas, _traffic) =
            run_bidirectional_workload(1, (seed_a, seed_b), (up_a, down_a, up_b, down_b), &ops);
        prop_assert!(
            settled,
            "seeds {}/{}: a courier gave up or never drained", seed_a, seed_b
        );
        prop_assert_eq!(deferred, 0);
        prop_assert_eq!(conflicts, 0);
        for (path, content) in &server {
            let content = content.as_ref().expect("listed path exists");
            for (idx, files) in replicas.iter().enumerate() {
                let local = files.iter().find(|(p, _)| p == path).map(|(_, c)| c);
                prop_assert_eq!(
                    local, Some(content),
                    "seeds {}/{}: replica {} diverged on {}", seed_a, seed_b, idx, path
                );
            }
        }
        for (idx, files) in replicas.iter().enumerate() {
            for (path, _) in files {
                if !path.contains(".conflict-") {
                    prop_assert!(
                        server.iter().any(|(p, _)| p == path),
                        "seeds {}/{}: replica {} holds {} the server lacks",
                        seed_a, seed_b, idx, path
                    );
                }
            }
        }
    }
}

/// The bidirectional scenario is shard-invariant: the same pinned-seed
/// concurrent-edit workload run on 1-, 2-, 4- and 8-shard hubs lands
/// byte-identical server content, replica states and traffic totals —
/// forwarded chunk streams cross the sharded server without perturbing
/// any outcome.
#[test]
fn bidirectional_sync_is_byte_identical_for_any_shard_count() {
    let ops: Vec<(bool, u8, usize, u64, Vec<u8>)> = (0..24usize)
        .map(|i| {
            let data = vec![(i * 17 % 251) as u8; 48 + (i * 29) % 160];
            (
                i % 2 == 0,
                (i * 7 % 5) as u8,
                i * 3,
                (i as u64 * 137) % 1024,
                data,
            )
        })
        .collect();
    let seeds = (0xB1D1u64, 0xB1D2u64);
    let rates = (0.25, 0.25, 0.2, 0.3);

    let baseline = run_bidirectional_workload(1, seeds, rates, &ops);
    assert!(baseline.0, "single-shard baseline never drained");
    assert_eq!(baseline.1, 0, "deferred duplicates leaked");
    assert_eq!(baseline.2, 0, "disjoint-file replicas must not conflict");
    for (path, content) in &baseline.3 {
        let content = content.as_ref().expect("listed path exists");
        for (idx, files) in baseline.4.iter().enumerate() {
            let local = files.iter().find(|(p, _)| p == path).map(|(_, c)| c);
            assert_eq!(local, Some(content), "replica {idx} diverged on {path}");
        }
    }
    for shards in [2usize, 4, 8] {
        let run = run_bidirectional_workload(shards, seeds, rates, &ops);
        assert_eq!(
            run, baseline,
            "{shards}-shard run diverged from the single-shard baseline"
        );
    }
}

/// Runs one streamed two-group workload through a [`DeltaCfsSystem`]
/// with the given codec policy (`None` = wire compression off) and
/// returns everything the codec must NOT perturb — synced content,
/// client cost, group outcomes — plus the uplink bytes it may only
/// shrink.
fn run_codec_workload(
    policy: Option<deltacfs::core::CodecPolicy>,
    base: &[u8],
    edit: &[u8],
    offset: usize,
    budget: usize,
) -> (
    Option<Vec<u8>>,
    Cost,
    Vec<deltacfs::core::ApplyOutcome>,
    u64,
) {
    use deltacfs::core::{DeltaCfsSystem, SyncEngine};
    use deltacfs::net::LinkSpec;

    let clock = SimClock::new();
    let cfg = DeltaCfsConfig::new()
        .with_streaming(true)
        .with_chunk_budget(budget)
        .with_pipeline_depth(2)
        .with_min_parallel_bytes(0)
        .with_wire_compression(policy.is_some());
    let mut sys = DeltaCfsSystem::new(cfg, clock.clone(), LinkSpec::mobile());
    if let Some(policy) = policy {
        sys.set_codec_policy(policy);
        sys.set_platform(deltacfs::net::PlatformProfile::mobile());
    }
    let mut fs = Vfs::new();
    fs.enable_event_log();
    fs.create("/f").unwrap();
    fs.write("/f", 0, base).unwrap();
    for e in fs.drain_events() {
        sys.on_event(&e, &fs);
    }
    clock.advance(4_000);
    sys.tick(&fs);
    fs.write("/f", offset as u64, edit).unwrap();
    for e in fs.drain_events() {
        sys.on_event(&e, &fs);
    }
    clock.advance(4_000);
    sys.finish(&fs);
    let report = sys.report();
    (
        sys.server().file("/f").map(<[u8]>::to_vec),
        report.client_cost,
        sys.outcomes().to_vec(),
        report.traffic.bytes_up,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The adaptive wire codec is invisible to everything but traffic:
    /// for any workload, any chunk budget, and ANY per-chunk
    /// compress/raw decision schedule — including schedules the
    /// cost-benefit controller would never pick — the synced content,
    /// the client `Cost` totals, and the group outcomes are
    /// byte-identical to a raw-wire run, and the compressed uplink
    /// never exceeds the raw uplink (DESIGN.md §15). The controller can
    /// only ever trade wire bytes against codec-side CPU; it has no
    /// channel through which to perturb state.
    #[test]
    fn compressed_wire_is_state_identical(
        base in buffer(16 * 1024),
        edit in buffer(4 * 1024),
        offset in 0usize..8 * 1024,
        budget in 64usize..2048,
        schedule in proptest::collection::vec(any::<bool>(), 1..12),
    ) {
        use deltacfs::core::CodecPolicy;

        let raw = run_codec_workload(None, &base, &edit, offset, budget);
        for policy in [
            CodecPolicy::Schedule(schedule.clone()),
            CodecPolicy::Adaptive,
            CodecPolicy::Always,
        ] {
            let tag = format!("{policy:?}");
            let run = run_codec_workload(Some(policy), &base, &edit, offset, budget);
            prop_assert_eq!(&run.0, &raw.0, "content diverged under {}", &tag);
            prop_assert_eq!(&run.1, &raw.1, "client cost diverged under {}", &tag);
            prop_assert_eq!(&run.2, &raw.2, "outcomes diverged under {}", &tag);
            prop_assert!(
                run.3 <= raw.3,
                "{}: compressed uplink {} exceeds raw {}", &tag, run.3, raw.3
            );
        }
    }
}
