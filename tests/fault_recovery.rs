//! Fault-injection matrix: the reliability layer must converge client
//! and server state under seeded loss, duplication, reordering, server
//! crash/restart, and client disconnection.
//!
//! Every assertion embeds the seed that reproduces the failing schedule:
//! re-run with that seed pinned in a `FaultSpec` to replay it exactly.

use deltacfs::core::{ApplyOutcome, DeltaCfsConfig, ShardRouter, SyncHub};
use deltacfs::net::{CrashPhase, FaultSpec, LinkSpec, SimClock};

const SETTLE_MS: u64 = 600_000;

fn two_client_hub() -> (SyncHub, SimClock) {
    let clock = SimClock::new();
    let mut hub = SyncHub::new(clock.clone());
    hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
    hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
    (hub, clock)
}

/// Ingest pending events, then advance past the upload delay and pump
/// again so the aged nodes actually go on the (faulty) wire.
fn pump_round(hub: &mut SyncHub, clock: &SimClock) {
    hub.pump();
    clock.advance(4_000);
    hub.pump();
}

/// Asserts that every file the server holds is byte-identical on every
/// client, and that no client holds stray non-conflict files the server
/// lacks.
fn assert_converged(hub: &SyncHub, seed: u64) {
    for path in hub.server().paths() {
        let server = hub.server().file(&path).unwrap();
        for idx in 0..hub.client_count() {
            let local = hub.fs(idx).peek_all(&path).unwrap_or_default();
            assert_eq!(
                local, server,
                "seed {seed}: client {idx} diverged from server on {path}"
            );
        }
    }
    for idx in 0..hub.client_count() {
        for path in hub.fs(idx).walk_files("/").unwrap_or_default() {
            let path = path.to_string();
            if !path.contains(".conflict-") {
                assert!(
                    hub.server().file(&path).is_some(),
                    "seed {seed}: client {idx} holds {path} the server lacks"
                );
            }
        }
    }
}

/// A small two-client workload on disjoint paths: several rounds of
/// creates and in-place edits, each round a separate upload group.
fn run_disjoint_workload(hub: &mut SyncHub, clock: &SimClock) {
    hub.fs_mut(0).create("/a.txt").unwrap();
    hub.fs_mut(0).write("/a.txt", 0, b"alpha round one").unwrap();
    hub.fs_mut(1).create("/b.txt").unwrap();
    hub.fs_mut(1).write("/b.txt", 0, b"bravo round one").unwrap();
    pump_round(hub, clock);

    hub.fs_mut(0).write("/a.txt", 6, b"ROUND TWO").unwrap();
    hub.fs_mut(1).write("/b.txt", 0, b"BRAVO").unwrap();
    pump_round(hub, clock);

    hub.fs_mut(0).create("/a2.txt").unwrap();
    hub.fs_mut(0).write("/a2.txt", 0, &vec![7u8; 2_000]).unwrap();
    hub.fs_mut(1).write("/b.txt", 15, b" plus a tail").unwrap();
    pump_round(hub, clock);
}

#[test]
fn drop_matrix_converges() {
    for seed in 0..8u64 {
        let (mut hub, clock) = two_client_hub();
        hub.enable_faults(
            FaultSpec::clean(seed)
                .with_rates(0.3, 0.2, 0.3)
                .with_reorder(0.5),
        );
        run_disjoint_workload(&mut hub, &clock);
        let drained = hub.settle(SETTLE_MS);
        assert!(drained, "seed {seed}: a courier gave up or never drained");
        assert_eq!(hub.given_up(0) + hub.given_up(1), 0, "seed {seed}");
        assert_converged(&hub, seed);
    }
}

#[test]
fn drop_matrix_converges_with_wire_compression() {
    // The reliability layer is codec-agnostic: the same loss /
    // duplication / reorder matrix converges with the adaptive wire
    // codec compressing forwarded chunk frames. Retries replay whole
    // groups, the replay index dedups on group ids, and a frame's codec
    // decision never leaks into any of it.
    let cfg = DeltaCfsConfig::new().with_wire_compression(true);
    for seed in 0..8u64 {
        let clock = SimClock::new();
        let mut hub = SyncHub::new(clock.clone());
        hub.add_client(cfg, LinkSpec::pc());
        hub.add_client(cfg, LinkSpec::mobile());
        hub.enable_faults(
            FaultSpec::clean(seed)
                .with_rates(0.3, 0.2, 0.3)
                .with_reorder(0.5),
        );
        run_disjoint_workload(&mut hub, &clock);
        let drained = hub.settle(SETTLE_MS);
        assert!(drained, "seed {seed}: a courier gave up or never drained");
        assert_eq!(hub.given_up(0) + hub.given_up(1), 0, "seed {seed}");
        assert_converged(&hub, seed);
    }
}

#[test]
fn server_crash_matrix_loses_no_committed_version() {
    for seed in 0..8u64 {
        for phase in [CrashPhase::BeforeApply, CrashPhase::AfterApply] {
            // Crash a different upload attempt per seed so the matrix
            // sweeps injection points across the whole exchange.
            let crash_at = seed % 4 + 1;
            let (mut hub, clock) = two_client_hub();
            hub.enable_faults(FaultSpec::clean(seed).with_crash(crash_at, phase));
            run_disjoint_workload(&mut hub, &clock);
            let drained = hub.settle(SETTLE_MS);
            assert!(
                drained,
                "seed {seed} crash@{crash_at} {phase:?}: courier never drained"
            );
            assert_converged(&hub, seed);
            // Zero lost committed versions: everything the server acked
            // is still retrievable from its (restarted) state.
            assert!(
                !hub.acked().is_empty(),
                "seed {seed} crash@{crash_at} {phase:?}: nothing was acked"
            );
            for (client, path, version) in hub.acked() {
                assert!(
                    hub.server().version_history(path).contains(version),
                    "seed {seed} crash@{crash_at} {phase:?}: acked version \
                     {version:?} from client {client} lost on {path}"
                );
            }
        }
    }
}

#[test]
fn first_write_wins_when_losers_upload_is_delayed_by_loss() {
    let seed = 42u64;
    let (mut hub, clock) = two_client_hub();
    // Shared baseline, synced before faults are armed.
    hub.fs_mut(0).create("/doc").unwrap();
    hub.fs_mut(0).write("/doc", 0, &vec![b'x'; 50_000]).unwrap();
    pump_round(&mut hub, &clock);
    assert_eq!(hub.server().file("/doc").as_deref().map(<[u8]>::len), Some(50_000));

    // Upload attempt 1 (client 1's edit) is dropped; the retry arrives
    // only after client 0's competing edit has been applied.
    hub.enable_faults(FaultSpec::clean(seed).with_dropped_upload(1));
    let up_before = hub.traffic(1).bytes_up;

    hub.fs_mut(1).write("/doc", 0, b"SECOND").unwrap();
    pump_round(&mut hub, &clock); // dropped, courier backs off

    hub.fs_mut(0).write("/doc", 0, b"FIRST!").unwrap();
    pump_round(&mut hub, &clock); // client 0 wins; client 1 retries late
    let drained = hub.settle(SETTLE_MS);
    assert!(drained, "seed {seed}: courier never drained");

    // First write wins: the cloud kept client 0's content.
    let doc = hub.server().file("/doc").unwrap();
    assert_eq!(&doc[..6], b"FIRST!", "seed {seed}");
    // The late loser was stored as a cloud-side conflict copy, built
    // from its incremental ops against the historical base.
    let conflict_path = "/doc.conflict-c2";
    let copy = hub
        .server()
        .file(conflict_path)
        .unwrap_or_else(|| panic!("seed {seed}: no conflict copy {conflict_path}"));
    assert_eq!(&copy[..6], b"SECOND", "seed {seed}");
    assert_eq!(copy.len(), 50_000, "seed {seed}: copy not built on full base");
    assert!(
        hub.server_outcomes()
            .iter()
            .any(|o| matches!(o, ApplyOutcome::Conflict { .. })),
        "seed {seed}: server never recorded the conflict"
    );
    // The losing edit travelled as incremental ops both times — never as
    // a re-upload of the whole 50 KB file.
    let up = hub.traffic(1).bytes_up - up_before;
    assert!(
        up < 10_000,
        "seed {seed}: client 1 uploaded {up} bytes for a 6-byte edit"
    );
    assert_converged(&hub, seed);
}

#[test]
fn client_crash_restart_replays_undo_log_as_delta() {
    let seed = 7u64;
    let (mut hub, clock) = two_client_hub();
    hub.fs_mut(0).create("/db").unwrap();
    hub.fs_mut(0).write("/db", 0, &vec![3u8; 40_000]).unwrap();
    pump_round(&mut hub, &clock);
    hub.enable_faults(FaultSpec::clean(seed));
    let up_before = hub.traffic(0).bytes_up;

    // In-place edits that never reach the wire before the crash.
    hub.fs_mut(0).write("/db", 1_000, &[9u8; 64]).unwrap();
    hub.fs_mut(0).write("/db", 30_000, &[8u8; 32]).unwrap();
    let replayed = hub.crash_and_restart_client(0);
    assert_eq!(replayed, vec!["/db".to_string()], "seed {seed}");

    let drained = hub.settle(SETTLE_MS);
    assert!(drained, "seed {seed}");
    let mut expect = vec![3u8; 40_000];
    expect[1_000..1_064].copy_from_slice(&[9u8; 64]);
    expect[30_000..30_032].copy_from_slice(&[8u8; 32]);
    assert_eq!(hub.server().file("/db").as_deref(), Some(&expect[..]), "seed {seed}");
    assert_converged(&hub, seed);
    // The replay shipped a delta against the cloud's base, not 40 KB.
    let up = hub.traffic(0).bytes_up - up_before;
    assert!(
        up < 10_000,
        "seed {seed}: crash replay uploaded {up} bytes for ~100 changed bytes"
    );
}

#[test]
fn client_crash_restart_ships_unsynced_file_whole() {
    let seed = 11u64;
    let (mut hub, clock) = two_client_hub();
    hub.enable_faults(FaultSpec::clean(seed));
    // A brand-new file the cloud has never seen; the queue dies with the
    // crash, so recovery must fall back to full content.
    hub.fs_mut(0).create("/fresh").unwrap();
    hub.fs_mut(0).write("/fresh", 0, b"never uploaded").unwrap();
    let replayed = hub.crash_and_restart_client(0);
    assert_eq!(replayed, vec!["/fresh".to_string()], "seed {seed}");
    let drained = hub.settle(SETTLE_MS);
    assert!(drained, "seed {seed}");
    assert_eq!(
        hub.server().file("/fresh").as_deref(),
        Some(&b"never uploaded"[..]),
        "seed {seed}"
    );
    let _ = clock;
    assert_converged(&hub, seed);
}

#[test]
fn duplicate_and_reordered_deliveries_are_absorbed() {
    for seed in 0..8u64 {
        let (mut hub, clock) = two_client_hub();
        hub.enable_faults(
            FaultSpec::clean(seed)
                .with_rates(0.0, 0.0, 1.0) // every delivery duplicated
                .with_reorder(1.0), // every duplicate arrives late
        );
        run_disjoint_workload(&mut hub, &clock);
        let drained = hub.settle(SETTLE_MS);
        assert!(drained, "seed {seed}");
        assert!(
            hub.server().duplicates_ignored() > 0,
            "seed {seed}: dedup never engaged"
        );
        // No version was applied twice: histories hold distinct versions.
        for path in hub.server().paths() {
            let history = hub.server().version_history(&path);
            let mut dedup = history.clone();
            dedup.dedup();
            assert_eq!(
                history, dedup,
                "seed {seed}: duplicate application left twin versions on {path}"
            );
        }
        assert_converged(&hub, seed);
    }
}

#[test]
fn multi_writer_fault_matrix_converges() {
    // Two *concurrently faulty* writers, each under its own pinned,
    // independent schedule: distinct seeds, distinct drop/dup/reorder
    // rates, and (on odd seeds) a server crash keyed on writer 1's own
    // upload attempts. One writer's retries never perturb the other's
    // decision stream, and both must still converge with the server.
    for seed in 0..8u64 {
        let (mut hub, clock) = two_client_hub();
        let mut spec_b = FaultSpec::clean(seed ^ 0x00DE_C0DE)
            .with_rates(0.25, 0.15, 0.5)
            .with_reorder(1.0);
        if seed % 2 == 1 {
            spec_b = spec_b.with_crash(seed % 3 + 1, CrashPhase::AfterApply);
        }
        hub.enable_fault_topology(vec![
            FaultSpec::clean(seed)
                .with_rates(0.3, 0.2, 0.4)
                .with_reorder(0.5),
            spec_b,
        ]);
        run_disjoint_workload(&mut hub, &clock);
        // Rename traffic keeps version-less (namespace-only) groups in
        // play on both writers while duplicates are being deferred.
        hub.fs_mut(0).rename("/a.txt", "/a-renamed.txt").unwrap();
        hub.fs_mut(1).rename("/b.txt", "/b-renamed.txt").unwrap();
        pump_round(&mut hub, &clock);
        let drained = hub.settle(SETTLE_MS);
        assert!(drained, "seed {seed}: a courier gave up or never drained");
        // Every held-back duplicate was redelivered before settle returned.
        assert_eq!(hub.deferred_len(), 0, "seed {seed}: deferred queue leaked");
        assert_converged(&hub, seed);
        // Causal order per writer, independent of the other writer's
        // interleaved retries.
        for idx in 0..hub.client_count() {
            let counters: Vec<u64> = hub
                .acked()
                .iter()
                .filter(|(c, _, _)| *c == idx)
                .map(|(_, _, v)| v.counter)
                .collect();
            for pair in counters.windows(2) {
                assert!(
                    pair[1] > pair[0],
                    "seed {seed}: client {idx} acked v{} after v{}",
                    pair[1],
                    pair[0]
                );
            }
        }
        // Nothing the server acked was lost, crash or no crash. A rename
        // carries a file's history to its new path, so search every
        // current path's history, not just the path the ack named.
        for (client, path, version) in hub.acked() {
            let survives = hub
                .server()
                .paths()
                .iter()
                .any(|p| hub.server().version_history(p).contains(version));
            assert!(
                survives,
                "seed {seed}: acked version {version:?} from client {client} lost on {path}"
            );
        }
    }
}

#[test]
fn late_rename_replay_after_recreate_is_deduped() {
    // Regression for the version-less dedup hole: a pure rename group
    // carries no file version, so the `<CliID, VerCnt>` index never saw
    // it — a duplicated copy deferred past the path's re-creation used
    // to re-execute the rename and clobber the fresh file. The
    // `<CliID, GroupSeq>` replay index recognizes the late copy instead.
    let seed = 5u64;
    let (mut hub, clock) = two_client_hub();
    hub.fs_mut(0).create("/old").unwrap();
    hub.fs_mut(0).write("/old", 0, b"payload").unwrap();
    pump_round(&mut hub, &clock);
    assert_eq!(hub.server().file("/old").as_deref(), Some(&b"payload"[..]));

    // Every delivery duplicated, every duplicate redelivered late.
    hub.enable_faults(
        FaultSpec::clean(seed)
            .with_rates(0.0, 0.0, 1.0)
            .with_reorder(1.0),
    );
    hub.fs_mut(0).rename("/old", "/new").unwrap();
    hub.fs_mut(0).create("/old").unwrap();
    hub.fs_mut(0).write("/old", 0, b"fresh").unwrap();
    pump_round(&mut hub, &clock);
    let drained = hub.settle(SETTLE_MS);
    assert!(drained, "seed {seed}: courier never drained");
    assert_eq!(hub.deferred_len(), 0, "seed {seed}: deferred queue leaked");
    assert!(
        hub.server().duplicates_ignored() > 0,
        "seed {seed}: dedup never engaged"
    );
    assert_eq!(
        hub.server().file("/new").as_deref(),
        Some(&b"payload"[..]),
        "seed {seed}: late rename replay clobbered /new"
    );
    assert_eq!(
        hub.server().file("/old").as_deref(),
        Some(&b"fresh"[..]),
        "seed {seed}: late rename replay removed the recreated /old"
    );
    assert_converged(&hub, seed);
}

#[test]
fn disconnect_window_defers_and_heals() {
    let seed = 3u64;
    let (mut hub, clock) = two_client_hub();
    // Client 1 is offline for the first 20 s of the run.
    hub.enable_faults(FaultSpec::clean(seed).with_disconnect(1, 0, 20_000));

    hub.fs_mut(0).create("/from0").unwrap();
    hub.fs_mut(0).write("/from0", 0, b"while peer offline").unwrap();
    hub.fs_mut(1).create("/from1").unwrap();
    hub.fs_mut(1).write("/from1", 0, b"queued while offline").unwrap();
    pump_round(&mut hub, &clock);

    // Inside the window nothing from client 1 reached the cloud.
    assert!(
        hub.server().file("/from1").is_none(),
        "seed {seed}: disconnected client still uploaded"
    );
    let stats = hub.fault_stats().unwrap();
    assert!(stats.disconnected_sends > 0, "seed {seed}");

    // Settling advances past the window; everything converges.
    let drained = hub.settle(SETTLE_MS);
    assert!(drained, "seed {seed}");
    assert_eq!(
        hub.server().file("/from1").as_deref(),
        Some(&b"queued while offline"[..]),
        "seed {seed}"
    );
    assert_converged(&hub, seed);
}

// --- Sharded-hub fault matrix (DESIGN.md §13) ----------------------------

/// A 4-shard hub whose two writers live in namespaces pinned to
/// *different* shards, so every fault schedule below exercises striped
/// locks, per-shard snapshots, and per-shard crash reloads.
fn two_writer_sharded_hub() -> (SyncHub, SimClock, [String; 2]) {
    let router = ShardRouter::new(4);
    let ns_a = "alpha".to_string();
    let ns_b = (0..)
        .map(|i| format!("beta{i}"))
        .find(|ns| router.shard_of_namespace(ns) != router.shard_of_namespace(&ns_a))
        .unwrap();
    let clock = SimClock::new();
    let mut hub = SyncHub::with_shards(clock.clone(), 4);
    hub.add_client_in(&ns_a, DeltaCfsConfig::new(), LinkSpec::pc());
    hub.add_client_in(&ns_b, DeltaCfsConfig::new(), LinkSpec::pc());
    assert_ne!(hub.home_shard(0), hub.home_shard(1), "writers share a shard");
    hub.fs_mut(0).mkdir_all(&format!("/{ns_a}")).unwrap();
    hub.fs_mut(1).mkdir_all(&format!("/{ns_b}")).unwrap();
    (hub, clock, [ns_a, ns_b])
}

/// The disjoint workload of `run_disjoint_workload`, with each writer's
/// paths under its own namespace (and therefore on its own shard).
fn run_sharded_disjoint_workload(hub: &mut SyncHub, clock: &SimClock, ns: &[String; 2]) {
    let a = |p: &str| format!("/{}/{p}", ns[0]);
    let b = |p: &str| format!("/{}/{p}", ns[1]);
    hub.fs_mut(0).create(&a("a.txt")).unwrap();
    hub.fs_mut(0).write(&a("a.txt"), 0, b"alpha round one").unwrap();
    hub.fs_mut(1).create(&b("b.txt")).unwrap();
    hub.fs_mut(1).write(&b("b.txt"), 0, b"bravo round one").unwrap();
    pump_round(hub, clock);

    hub.fs_mut(0).write(&a("a.txt"), 6, b"ROUND TWO").unwrap();
    hub.fs_mut(1).write(&b("b.txt"), 0, b"BRAVO").unwrap();
    pump_round(hub, clock);

    hub.fs_mut(0).create(&a("a2.txt")).unwrap();
    hub.fs_mut(0).write(&a("a2.txt"), 0, &vec![7u8; 2_000]).unwrap();
    hub.fs_mut(1).write(&b("b.txt"), 15, b" plus a tail").unwrap();
    pump_round(hub, clock);
}

/// Namespace-aware convergence: each client agrees with the server on
/// every path inside its own namespace, and holds no stray non-conflict
/// files the server lacks.
fn assert_converged_sharded(hub: &SyncHub, seed: u64) {
    for idx in 0..hub.client_count() {
        let ns = hub.namespace(idx).to_string();
        for path in hub.server().paths_in_namespace(&ns) {
            let server = hub.server().file(&path).unwrap();
            let local = hub.fs(idx).peek_all(&path).unwrap_or_default();
            assert_eq!(
                local, server,
                "seed {seed}: client {idx} diverged from server on {path}"
            );
        }
        for path in hub.fs(idx).walk_files("/").unwrap_or_default() {
            let path = path.to_string();
            if !path.contains(".conflict-") {
                assert!(
                    hub.server().file(&path).is_some(),
                    "seed {seed}: client {idx} holds {path} the server lacks"
                );
            }
        }
    }
}

#[test]
fn sharded_drop_matrix_converges() {
    // The pinned-seed drop/dup/reorder matrix of `drop_matrix_converges`,
    // against a sharded hub with the writers split across shards.
    for seed in 0..8u64 {
        let (mut hub, clock, ns) = two_writer_sharded_hub();
        hub.enable_faults(
            FaultSpec::clean(seed)
                .with_rates(0.3, 0.2, 0.3)
                .with_reorder(0.5),
        );
        run_sharded_disjoint_workload(&mut hub, &clock, &ns);
        let drained = hub.settle(SETTLE_MS);
        assert!(drained, "seed {seed}: a courier gave up or never drained");
        assert_eq!(hub.given_up(0) + hub.given_up(1), 0, "seed {seed}");
        assert_converged_sharded(&hub, seed);
    }
}

#[test]
fn sharded_multi_writer_fault_topology_converges() {
    // `multi_writer_fault_matrix_converges` on a sharded hub: distinct
    // per-writer schedules, server crashes on odd seeds (reloading every
    // shard's snapshot), writers on different shards throughout.
    for seed in 0..8u64 {
        let (mut hub, clock, ns) = two_writer_sharded_hub();
        let mut spec_b = FaultSpec::clean(seed ^ 0x00DE_C0DE)
            .with_rates(0.25, 0.15, 0.5)
            .with_reorder(1.0);
        if seed % 2 == 1 {
            spec_b = spec_b.with_crash(seed % 3 + 1, CrashPhase::AfterApply);
        }
        hub.enable_fault_topology(vec![
            FaultSpec::clean(seed)
                .with_rates(0.3, 0.2, 0.4)
                .with_reorder(0.5),
            spec_b,
        ]);
        run_sharded_disjoint_workload(&mut hub, &clock, &ns);
        // Version-less rename groups on both shards while duplicates are
        // being deferred.
        let a_renamed = format!("/{}/a-renamed.txt", ns[0]);
        let b_renamed = format!("/{}/b-renamed.txt", ns[1]);
        hub.fs_mut(0)
            .rename(&format!("/{}/a.txt", ns[0]), &a_renamed)
            .unwrap();
        hub.fs_mut(1)
            .rename(&format!("/{}/b.txt", ns[1]), &b_renamed)
            .unwrap();
        pump_round(&mut hub, &clock);
        let drained = hub.settle(SETTLE_MS);
        assert!(drained, "seed {seed}: a courier gave up or never drained");
        assert_eq!(hub.deferred_len(), 0, "seed {seed}: deferred queue leaked");
        assert_converged_sharded(&hub, seed);
        // Causal order per writer, independent of the other shard's
        // interleaved retries.
        for idx in 0..hub.client_count() {
            let counters: Vec<u64> = hub
                .acked()
                .iter()
                .filter(|(c, _, _)| *c == idx)
                .map(|(_, _, v)| v.counter)
                .collect();
            for pair in counters.windows(2) {
                assert!(
                    pair[1] > pair[0],
                    "seed {seed}: client {idx} acked v{} after v{}",
                    pair[1],
                    pair[0]
                );
            }
        }
        // Nothing the server acked was lost, crash or no crash — the
        // per-shard snapshots must jointly cover every acked version.
        for (client, path, version) in hub.acked() {
            let survives = hub
                .server()
                .paths()
                .iter()
                .any(|p| hub.server().version_history(p).contains(version));
            assert!(
                survives,
                "seed {seed}: acked version {version:?} from client {client} lost on {path}"
            );
        }
    }
}

#[test]
fn pinned_seed_fires_exact_injection_counts() {
    // Satellite check: the fault plan's injection counters are exported
    // through the obs registry, and a pinned seed fires an exact,
    // reproducible number of injections — if the decision stream drifts,
    // these numbers change and this test catches it.
    let seed = 3u64;
    let (mut hub, clock) = two_client_hub();
    hub.enable_observability(deltacfs::obs::Obs::new());
    hub.enable_faults(
        FaultSpec::clean(seed)
            .with_rates(0.3, 0.2, 0.3)
            .with_reorder(0.5),
    );
    run_disjoint_workload(&mut hub, &clock);
    let drained = hub.settle(SETTLE_MS);
    assert!(drained, "seed {seed}: courier never drained");

    let stats = hub.fault_stats().unwrap();
    assert!(stats.total_fired() > 0, "seed {seed}: no injection fired");
    // Exact pinned counts for seed 3 under this workload.
    assert_eq!(stats.uploads_attempted, 19, "seed {seed}: {stats:?}");
    assert_eq!(stats.uploads_dropped, 9, "seed {seed}: {stats:?}");
    assert_eq!(stats.uploads_duplicated, 5, "seed {seed}: {stats:?}");
    assert_eq!(stats.duplicates_reordered, 3, "seed {seed}: {stats:?}");
    assert_eq!(stats.downloads_dropped, 2, "seed {seed}: {stats:?}");
    assert_eq!(stats.total_fired(), 19, "seed {seed}: {stats:?}");

    // The same numbers come out of the unified metrics snapshot.
    let snap = hub.export_metrics();
    let counter = |name: &str| match snap.get(name) {
        Some(deltacfs::obs::MetricValue::Counter(v)) => *v,
        other => panic!("{name}: unexpected {other:?}"),
    };
    assert_eq!(counter("fault_injections_fired"), stats.total_fired());
    assert_eq!(counter("fault_uploads_dropped"), stats.uploads_dropped);
    assert_eq!(counter("fault_uploads_duplicated"), stats.uploads_duplicated);
    assert_eq!(counter("fault_downloads_dropped"), stats.downloads_dropped);
}

#[test]
fn dropped_mid_group_chunk_never_commits_and_whole_group_resend_recovers() {
    // The streaming upload path stages chunk frames server-side and only
    // commits the group atomically on the final frame. Losing a chunk in
    // the middle of a group must therefore leave the server exactly at
    // its pre-group state; the recovery protocol is a whole-group resend
    // from chunk (0,0), which the `<CliID, GroupSeq>` replay index keeps
    // idempotent even if the first attempt had partially staged.
    use deltacfs::core::{
        pipeline, ClientId, CloudServer, GroupId, Payload, UpdateMsg, UpdatePayload, Version,
    };
    use deltacfs::delta::{local, Cost, DeltaParams};

    let mut server = CloudServer::new();
    let cli = ClientId(7);
    let base: Vec<u8> = (0..4096u32).map(|i| (i.wrapping_mul(13) % 251) as u8).collect();
    let v1 = Version { client: cli, counter: 1 };
    server.apply_msg(&UpdateMsg {
        path: "/f".into(),
        base: None,
        version: Some(v1),
        payload: UpdatePayload::Full(Payload::from(base.clone())),
        txn: None,
        group: None,
    });

    let mut new = base.clone();
    new[300..1500].fill(0xC3);
    let delta = local::diff(&base, &new, &DeltaParams::with_block_size(64), &mut Cost::new());
    let group = vec![UpdateMsg {
        path: "/f".into(),
        base: Some(v1),
        version: Some(Version { client: cli, counter: 2 }),
        payload: UpdatePayload::Delta { base_path: "/f".into(), delta },
        txn: Some(1),
        group: Some(GroupId { client: cli, seq: 1 }),
    }];
    let mut frames = Vec::new();
    pipeline::frame_group(&group, 128, |f| frames.push(f));
    assert!(frames.len() >= 3, "workload must span several chunks");

    // First attempt: the link eats frame 1; the next frame arrives
    // out of order and is rejected, dropping the partial stage.
    assert_eq!(server.receive_chunk(&frames[0]).unwrap(), None);
    assert!(server.receive_chunk(&frames[2]).is_err());
    assert_eq!(server.file("/f"), Some(&base[..]), "partial group must not apply");
    assert_eq!(server.version("/f"), Some(v1));

    // Retry: whole-group resend from chunk (0,0) commits atomically.
    let mut outcomes = Vec::new();
    for f in &frames {
        if let Some(out) = server.receive_chunk(f).unwrap() {
            outcomes.extend(out);
        }
    }
    assert_eq!(outcomes, vec![ApplyOutcome::Applied]);
    assert_eq!(server.file("/f"), Some(&new[..]));
    let v2 = server.version("/f").unwrap();
    assert_eq!(v2.counter, 2);

    // A duplicate redelivery of the full chunk stream (e.g. a retry
    // racing the ack) replays idempotently: same outcomes, no state
    // change, no double-apply of the delta.
    let mut replay = Vec::new();
    for f in &frames {
        if let Some(out) = server.receive_chunk(f).unwrap() {
            replay.extend(out);
        }
    }
    assert_eq!(replay, vec![ApplyOutcome::Applied]);
    assert_eq!(server.file("/f"), Some(&new[..]));
    assert_eq!(server.version("/f"), Some(v2));
}

// --- Forward/download-direction streaming (DESIGN.md §14) -----------------

#[test]
fn lost_forward_then_diverged_peer_materializes_full_never_stale_delta() {
    // Regression for the forward-direction stale-base hazard: a peer
    // that missed an earlier forwarded group on a dropped downlink
    // holds an older base than the next group's incremental payload
    // assumes. The forward planner must detect the divergence against
    // the peer's version table and materialize full content; silently
    // applying the delta/ops to the stale base would corrupt the peer.
    // With whole-group atomic commit the peer is always at exactly one
    // of the writer's published versions — never a blend.
    let mut v1 = vec![7u8; 4_000];
    v1[..16].copy_from_slice(b"baseline-content");
    let mut v2 = v1.clone();
    v2[1_000..1_100].fill(0x22);
    let mut v3 = v2.clone();
    v3[2_500..2_600].fill(0x33);
    let states: [&[u8]; 3] = [&v1, &v2, &v3];

    let mut saw_materialized_heal = false;
    for seed in 0..16u64 {
        let (mut hub, clock) = two_client_hub();
        hub.fs_mut(0).create("/f").unwrap();
        hub.fs_mut(0).write("/f", 0, &v1).unwrap();
        pump_round(&mut hub, &clock);
        assert_eq!(hub.fs(1).peek_all("/f").unwrap(), v1, "seed {seed}: baseline");

        // The writer uploads cleanly; the peer's downlink drops about
        // half of the forwarded streams.
        hub.enable_fault_topology(vec![
            FaultSpec::clean(seed),
            FaultSpec::clean(seed ^ 0x0D09).with_rates(0.0, 0.5, 0.0),
        ]);
        hub.fs_mut(0).write("/f", 1_000, &[0x22u8; 100]).unwrap();
        pump_round(&mut hub, &clock);
        let after2 = hub.fs(1).peek_all("/f").unwrap();
        assert!(
            states.contains(&&after2[..]),
            "seed {seed}: torn state after round 2"
        );

        hub.fs_mut(0).write("/f", 2_500, &[0x33u8; 100]).unwrap();
        pump_round(&mut hub, &clock);
        let after3 = hub.fs(1).peek_all("/f").unwrap();
        assert!(
            states.contains(&&after3[..]),
            "seed {seed}: stale incremental payload applied to the wrong base"
        );
        if after2 == v1 && after3 == v3 {
            // Round 2's forward was lost yet round 3 landed intact: the
            // only correct way there is the planner's materialized Full.
            saw_materialized_heal = true;
        }

        let drained = hub.settle(SETTLE_MS);
        assert!(drained, "seed {seed}: courier never drained");
        assert_eq!(
            hub.server().file("/f").as_deref(),
            Some(&v3[..]),
            "seed {seed}"
        );
        assert_converged(&hub, seed);
    }
    assert!(
        saw_materialized_heal,
        "no seed in 0..16 exercised the lost-then-diverged heal path"
    );
}

#[test]
fn crash_drops_staged_forward_group_and_settle_reconverges() {
    // A forwarded group whose stream is cut mid-group leaves the frames
    // received before the loss staged in the peer's stager (visible as
    // a non-zero forward stage depth). A client crash must not leak or
    // later resurrect that partial group: restart drops the stage, and
    // the anti-entropy settle pass brings the peer back to the server's
    // content through a fresh stream.
    let mut exercised = false;
    for seed in 0..64u64 {
        let (mut hub, clock) = two_client_hub();
        hub.fs_mut(0).create("/doc").unwrap();
        hub.fs_mut(0).write("/doc", 0, &[1u8; 700]).unwrap();
        pump_round(&mut hub, &clock);
        hub.enable_fault_topology(vec![
            FaultSpec::clean(seed),
            FaultSpec::clean(seed ^ 0x57A6).with_rates(0.0, 0.5, 0.0),
        ]);
        // Interleaved writes to two fresh files form one multi-message
        // transaction group: /u's second write batches into its still
        // open write node after /w entered the queue, and the FIFO
        // violation's backindex fuses [write /u, create /w, write /w]
        // into a single group. The forward then streams three messages
        // under one `GroupId`, so a loss drawn on a later message
        // leaves the earlier, already streamed ones staged but
        // uncommitted. (Events are ingested per operation, as a real
        // synchronous interception layer would deliver them.)
        hub.fs_mut(0).create("/u").unwrap();
        hub.ingest(0);
        hub.fs_mut(0).write("/u", 0, &[1u8; 700]).unwrap();
        hub.ingest(0);
        hub.fs_mut(0).create("/w").unwrap();
        hub.ingest(0);
        hub.fs_mut(0).write("/w", 0, &[2u8; 700]).unwrap();
        hub.ingest(0);
        hub.fs_mut(0).write("/u", 700, &[3u8; 700]).unwrap();
        hub.ingest(0);
        pump_round(&mut hub, &clock);
        if hub.forward_stage_depth(1) == 0 {
            continue; // this seed lost the head message (or nothing)
        }
        exercised = true;
        hub.crash_and_restart_client(1);
        assert_eq!(
            hub.forward_stage_depth(1),
            0,
            "seed {seed}: restart left staged forward frames"
        );
        let drained = hub.settle(SETTLE_MS);
        assert!(drained, "seed {seed}: courier never drained");
        assert_converged(&hub, seed);
        let mut u = vec![1u8; 700];
        u.extend_from_slice(&[3u8; 700]);
        assert_eq!(
            hub.fs(1).peek_all("/u").unwrap(),
            u,
            "seed {seed}: peer missing the batched writes after settle"
        );
        assert_eq!(
            hub.fs(1).peek_all("/w").unwrap(),
            vec![2u8; 700],
            "seed {seed}: peer missing the interleaved file after settle"
        );
        break;
    }
    assert!(
        exercised,
        "no seed in 0..64 left a partially staged forward group"
    );
}
