//! Causal consistency, versioning, and durability integration tests.

use deltacfs::core::{
    ApplyOutcome, ClientId, CloudServer, DeltaCfsClient, DeltaCfsConfig, DeltaCfsSystem,
    Payload, SyncEngine, UpdateMsg, UpdatePayload,
};
use deltacfs::kvstore::KvStore;
use deltacfs::net::{LinkSpec, SimClock};
use deltacfs::vfs::Vfs;

fn pump(client: &mut DeltaCfsClient, fs: &mut Vfs) {
    for e in fs.drain_events() {
        client.handle_event(&e, fs);
    }
}

/// The paper's causality example (§III-E): create a, b, c, then delete a
/// before anything uploads. The cloud must never observe "b without a and
/// c" — with the backindex, b and c arrive in one transaction and a is
/// elided entirely.
#[test]
fn deleted_file_elision_keeps_b_and_c_atomic() {
    let clock = SimClock::new();
    let mut client = DeltaCfsClient::new(ClientId(1), DeltaCfsConfig::new(), clock.clone());
    let mut server = CloudServer::new();
    let mut fs = Vfs::new();
    fs.enable_event_log();

    for p in ["/a", "/b", "/c"] {
        fs.create(p).unwrap();
        fs.write(p, 0, p.as_bytes()).unwrap();
    }
    fs.unlink("/a").unwrap();
    pump(&mut client, &mut fs);
    clock.advance(4_000);
    let groups = client.tick(&fs);
    // All surviving messages form one transaction.
    assert_eq!(groups.len(), 1);
    let msgs = &groups[0];
    assert!(msgs.iter().all(|m| m.txn.is_some()));
    assert!(msgs.iter().all(|m| !m.path.starts_with("/a")));
    let outcomes = server.apply_txn(msgs);
    assert!(outcomes.iter().all(|o| *o == ApplyOutcome::Applied));
    assert!(server.file("/b").is_some());
    assert!(server.file("/c").is_some());
    assert!(server.file("/a").is_none());
}

/// Uploads strictly follow update order regardless of file sizes
/// (Table IV's "causal" column).
#[test]
fn upload_order_follows_update_order() {
    let clock = SimClock::new();
    let mut sys = DeltaCfsSystem::new(DeltaCfsConfig::new(), clock.clone(), LinkSpec::pc());
    let mut fs = Vfs::new();
    fs.enable_event_log();

    // Sizes deliberately anti-correlated with update order.
    let files = [
        ("/huge", 3_000_000usize),
        ("/medium", 30_000),
        ("/tiny", 30),
    ];
    for (path, size) in files {
        fs.create(path).unwrap();
        fs.write(path, 0, &vec![7u8; size]).unwrap();
        for e in fs.drain_events() {
            sys.on_event(&e, &fs);
        }
        clock.advance(200);
    }
    clock.advance(10_000);
    sys.tick(&fs);
    sys.finish(&fs);
    let order = sys.server().apply_order();
    let pos = |p: &str| order.iter().position(|x| x == p).unwrap();
    assert!(pos("/huge") < pos("/medium"));
    assert!(pos("/medium") < pos("/tiny"));
}

/// A transaction with one stale member conflicts as a whole — the paper
/// labels every file of an atomic operation as conflicted.
#[test]
fn whole_transaction_conflicts_together() {
    use deltacfs::core::Version;
    let mut server = CloudServer::new();
    let v = |c: u32, n: u64| Version {
        client: ClientId(c),
        counter: n,
    };
    let full = |path: &str, base: Option<Version>, ver: Version, data: &'static [u8]| UpdateMsg {
        path: path.into(),
        base,
        version: Some(ver),
        payload: UpdatePayload::Full(Payload::from_static(data)),
        txn: Some(1),
        group: None,
    };
    server.apply_msg(&full("/x", None, v(1, 1), b"x1"));
    server.apply_msg(&full("/y", None, v(1, 2), b"y1"));
    // /y's base is stale; /x's is fine — both must conflict.
    let group = vec![
        full("/x", Some(v(1, 1)), v(2, 1), b"x2"),
        full("/y", Some(v(9, 9)), v(2, 2), b"y2"),
    ];
    let outcomes = server.apply_txn(&group);
    assert!(outcomes.iter().all(|o| matches!(
        o,
        ApplyOutcome::Conflict { .. } | ApplyOutcome::Rejected { .. }
    )));
    assert_eq!(server.file("/x"), Some(&b"x1"[..]));
    assert_eq!(server.file("/y"), Some(&b"y1"[..]));
}

/// The checksum store survives a client restart when backed by the
/// persistent KV store: corruption injected while the client was down is
/// detected by the post-restart scan.
#[test]
fn checksums_survive_restart_via_kvstore() {
    let dir = std::env::temp_dir().join(format!("deltacfs-restart-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let mut fs = Vfs::new();
    fs.enable_event_log();
    {
        let clock = SimClock::new();
        let backend = KvStore::open(&dir).unwrap();
        let mut client = DeltaCfsClient::with_backend(
            ClientId(1),
            DeltaCfsConfig::new(),
            clock.clone(),
            backend,
        );
        fs.create("/f").unwrap();
        fs.write("/f", 0, &vec![0x3Cu8; 32 * 1024]).unwrap();
        for e in fs.drain_events() {
            client.handle_event(&e, &fs);
        }
        clock.advance(4_000);
        client.tick(&fs);
        // Client process exits here (dropped).
    }

    // Corruption happens while no client is running.
    fs.inject_bit_flip("/f", 10_000, 5).unwrap();

    // Restart: a fresh client over the same persistent checksum store.
    let clock = SimClock::new();
    let backend = KvStore::open(&dir).unwrap();
    let mut client =
        DeltaCfsClient::with_backend(ClientId(1), DeltaCfsConfig::new(), clock.clone(), backend);
    let issues = client.crash_recovery_scan(&["/f".to_string()], &fs);
    assert_eq!(issues.len(), 1);
    assert_eq!(issues[0].blocks, vec![2]); // byte 10_000 is in block 2
    std::fs::remove_dir_all(&dir).ok();
}

/// Version counters never repeat and always carry the client id.
#[test]
fn versions_are_unique_per_client() {
    let clock = SimClock::new();
    let mut client = DeltaCfsClient::new(ClientId(7), DeltaCfsConfig::new(), clock.clone());
    let mut fs = Vfs::new();
    fs.enable_event_log();
    let mut seen = std::collections::HashSet::new();
    for i in 0..20 {
        let p = format!("/f{i}");
        fs.create(&p).unwrap();
        fs.write(&p, 0, b"x").unwrap();
        pump(&mut client, &mut fs);
        let v = client.version_of(&p).unwrap();
        assert_eq!(v.client, ClientId(7));
        assert!(seen.insert(v.counter), "duplicate counter {}", v.counter);
    }
}

/// Conflict copies rebuilt from incremental data match what the losing
/// client actually had (no re-upload round-trip needed).
#[test]
fn conflict_copy_content_is_exact() {
    let clock = SimClock::new();
    let mut server = CloudServer::new();
    let mut c1 = DeltaCfsClient::new(ClientId(1), DeltaCfsConfig::new(), clock.clone());
    let mut c2 = DeltaCfsClient::new(ClientId(2), DeltaCfsConfig::new(), clock.clone());
    let mut fs1 = Vfs::new();
    let mut fs2 = Vfs::new();
    fs1.enable_event_log();
    fs2.enable_event_log();

    // Client 1 establishes the shared file.
    fs1.create("/doc").unwrap();
    fs1.write("/doc", 0, b"shared base content").unwrap();
    pump(&mut c1, &mut fs1);
    clock.advance(4_000);
    let mut base_version = None;
    for group in c1.tick(&fs1) {
        base_version = group.last().and_then(|m| m.version);
        server.apply_txn(&group);
    }
    // Client 2 receives it (simulated forward).
    let forwarded = UpdateMsg {
        path: "/doc".into(),
        base: None,
        version: base_version,
        payload: UpdatePayload::Full(Payload::copy_from_slice(server.file("/doc").unwrap())),
        txn: None,
        group: None,
    };
    c2.apply_remote(&forwarded, &mut fs2);

    // Both edit concurrently; client 1 wins the race.
    fs1.write("/doc", 0, b"ONE").unwrap();
    fs2.write("/doc", 7, b"TWO").unwrap();
    pump(&mut c1, &mut fs1);
    pump(&mut c2, &mut fs2);
    clock.advance(4_000);
    for group in c1.tick(&fs1) {
        server.apply_txn(&group);
    }
    let mut conflict_path = None;
    for group in c2.tick(&fs2) {
        for outcome in server.apply_txn(&group) {
            if let ApplyOutcome::Conflict { stored_as } = outcome {
                conflict_path = Some(stored_as);
            }
        }
    }
    let conflict_path = conflict_path.expect("second writer must conflict");
    // First write won.
    assert_eq!(server.file("/doc"), Some(&b"ONEred base content"[..]));
    // The conflict copy equals client 2's local file exactly.
    let local2 = fs2.peek_all("/doc").unwrap();
    assert_eq!(server.file(&conflict_path), Some(&local2[..]));
}
