//! Behavioural contracts of the baseline engines — the modelling
//! assumptions EXPERIMENTS.md relies on.

use deltacfs::baselines::{DropboxConfig, DropboxEngine, DropsyncEngine, NfsEngine, SeafileEngine};
use deltacfs::core::SyncEngine;
use deltacfs::net::{LinkSpec, SimClock};
use deltacfs::vfs::Vfs;
use deltacfs::workloads::{replay, AppendTrace, RandomWriteTrace, Trace, TraceConfig};

fn pump(engine: &mut dyn SyncEngine, fs: &mut Vfs) {
    for e in fs.drain_events() {
        engine.on_event(&e, fs);
    }
}

#[test]
fn dropbox_rescans_whole_file_every_sync_pass() {
    let clock = SimClock::new();
    let mut engine = DropboxEngine::with_defaults(clock.clone());
    let mut fs = Vfs::new();
    fs.enable_event_log();
    fs.create("/big").unwrap();
    fs.write("/big", 0, &vec![3u8; 1_000_000]).unwrap();
    pump(&mut engine, &mut fs);
    clock.advance(1_000);
    engine.tick(&fs);
    let read_initial = engine.report().client_cost.bytes_engine_read;

    // Ten one-byte edits, each its own sync pass.
    for i in 0..10u64 {
        fs.write("/big", i, b"x").unwrap();
        pump(&mut engine, &mut fs);
        clock.advance(1_000);
        engine.tick(&fs);
    }
    let read_total = engine.report().client_cost.bytes_engine_read;
    // IO amplification: ≥10 MB read back for 10 bytes of change.
    assert!(
        read_total - read_initial >= 10 * 1_000_000,
        "read only {} for 10 one-byte edits",
        read_total - read_initial
    );
}

#[test]
fn dropbox_without_rsync_reuploads_changed_blocks_wholesale() {
    let clock = SimClock::new();
    let cfg = DropboxConfig {
        rsync: false,
        compress: false,
        dedup_block: 256 * 1024,
        ..DropboxConfig::default()
    };
    let mut engine = DropboxEngine::new(cfg, clock.clone(), LinkSpec::pc());
    let mut fs = Vfs::new();
    fs.enable_event_log();
    // Incompressible-ish content.
    let content: Vec<u8> = (0..1_000_000u32)
        .map(|i| (i.wrapping_mul(2654435761) >> 7) as u8)
        .collect();
    fs.create("/f").unwrap();
    fs.write("/f", 0, &content).unwrap();
    pump(&mut engine, &mut fs);
    clock.advance(1_000);
    engine.tick(&fs);
    let up_initial = engine.report().traffic.bytes_up;

    fs.write("/f", 500_000, b"!").unwrap();
    pump(&mut engine, &mut fs);
    clock.advance(1_000);
    engine.tick(&fs);
    let edit_up = engine.report().traffic.bytes_up - up_initial;
    // One byte changed, one whole 256 KB dedup block re-uploaded.
    assert!(edit_up >= 256 * 1024, "uploaded {edit_up}");
    assert!(edit_up < 2 * 256 * 1024 + 1024, "uploaded {edit_up}");
}

#[test]
fn nfs_upload_tracks_written_bytes_exactly_on_aligned_writes() {
    let clock = SimClock::new();
    let mut engine = NfsEngine::with_defaults(clock.clone());
    let mut fs = Vfs::new();
    fs.enable_event_log();
    fs.create("/f").unwrap();
    for i in 0..8u64 {
        fs.write("/f", i * 4096, &vec![i as u8; 4096]).unwrap();
    }
    pump(&mut engine, &mut fs);
    let t = engine.report().traffic;
    let payload = 8 * 4096;
    // Upload = payload + per-op RPC headers, nothing else.
    assert!(t.bytes_up >= payload);
    assert!(t.bytes_up <= payload + 9 * 200, "upload {}", t.bytes_up);
    assert_eq!(t.bytes_down, 0);
}

#[test]
fn seafile_upload_granularity_is_chunks_not_bytes() {
    let clock = SimClock::new();
    let mut engine = SeafileEngine::with_defaults(clock.clone()); // ~1 MB chunks
    let mut fs = Vfs::new();
    fs.enable_event_log();
    let content: Vec<u8> = (0..4_000_000u32)
        .map(|i| (i.wrapping_mul(40503) >> 3) as u8)
        .collect();
    fs.create("/f").unwrap();
    fs.write("/f", 0, &content).unwrap();
    pump(&mut engine, &mut fs);
    clock.advance(1_000);
    engine.tick(&fs);
    let up_initial = engine.report().traffic.bytes_up;

    fs.write("/f", 2_000_000, b"z").unwrap();
    pump(&mut engine, &mut fs);
    clock.advance(1_000);
    engine.tick(&fs);
    let edit_up = engine.report().traffic.bytes_up - up_initial;
    // At least a quarter-megabyte (the minimum chunk) for one byte.
    assert!(edit_up >= 256 * 1024, "uploaded only {edit_up}");
}

#[test]
fn dropsync_coalesces_while_uplink_saturated() {
    // The append trace at mobile bandwidth: uploads take longer than the
    // 15 s inter-write gap once the file outgrows ~15 MB, so later events
    // coalesce and the number of full uploads stays well below the number
    // of writes.
    let clock = SimClock::new();
    let mut engine = DropsyncEngine::with_defaults(clock.clone());
    let mut fs = Vfs::new();
    let trace = AppendTrace::new(TraceConfig::scaled(1.0));
    replay(&trace, &mut fs, &mut engine, &clock, 100);
    assert!(
        engine.upload_count() < 40,
        "no coalescing: {} uploads for 40 writes",
        engine.upload_count()
    );
    assert!(engine.upload_count() > 2);
}

#[test]
fn engines_are_deterministic_across_runs() {
    let run = || {
        let clock = SimClock::new();
        let mut engine = SeafileEngine::with_defaults(clock.clone());
        let mut fs = Vfs::new();
        let trace = RandomWriteTrace::new(TraceConfig::scaled(0.02));
        replay(&trace, &mut fs, &mut engine, &clock, 100);
        let r = engine.report();
        (
            r.traffic.bytes_up,
            r.client_cost.bytes_strong_hashed,
            r.client_cost.bytes_chunked,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn trace_meta_descriptions_are_informative() {
    let cfg = TraceConfig::scaled(1.0);
    let append = AppendTrace::new(cfg);
    assert!(append.meta().description.contains("800 KB"));
    let random = RandomWriteTrace::new(cfg);
    assert!(random.meta().description.contains("1010"));
}
