//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the [`proptest!`] test
//! macro, [`Strategy`] with `prop_map`, `any::<T>()`, `Just`, integer
//! ranges, tuples, `collection::vec`, `option::of`, weighted
//! [`prop_oneof!`], and literal character-class regex strategies such as
//! `"[a-z/]{1,20}"`.
//!
//! Differences from the real crate, chosen deliberately:
//!
//! - **Deterministic by default.** Each test derives its seed from its
//!   own name, so every run (local or CI) explores the same cases. Set
//!   `PROPTEST_SEED=<u64>` to explore a different stream or to replay
//!   the seed printed by a failure.
//! - **No shrinking.** On failure the runner prints the seed, the case
//!   number, and the generated inputs; reproduction is exact, so a
//!   debugger or `dbg!` gets you the rest of the way.

use std::fmt::Debug;
use std::ops::Range;

// --- deterministic RNG --------------------------------------------------

/// The generator handed to strategies (xoshiro256** core, SplitMix64
/// seeded). Cloning snapshots the stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator whose stream is a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn gen_range_u64(&mut self, start: u64, end: u64) -> u64 {
        assert!(start < end, "empty range in strategy");
        let span = end - start;
        start + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// --- Strategy core ------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `func`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, func: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, func }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    func: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.func)(self.source.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "uniform over the whole domain" strategy.
pub trait Arbitrary: Debug + Sized {
    /// Draws one uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Uniform strategy over all of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range in strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + ((rng.next_u64() as u128 * span as u128) >> 64) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range in strategy");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

// --- regex-literal strategies -------------------------------------------

/// Character-class regex strategies: a `&str` literal of the form
/// `"[chars]{min,max}"` (possibly a sequence of such atoms, where bare
/// characters are literals) is itself a `Strategy<Value = String>`.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let (choices, next) = if chars[i] == '[' {
            let close = chars[i + 1..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| p + i + 1)
                .unwrap_or_else(|| panic!("proptest shim: unclosed `[` in pattern {pattern:?}"));
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    assert!(lo <= hi, "proptest shim: bad range in pattern {pattern:?}");
                    for c in lo..=hi {
                        set.push(char::from_u32(c).expect("ASCII class range"));
                    }
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            (set, close + 1)
        } else if chars[i] == '\\' && i + 1 < chars.len() {
            (vec![chars[i + 1]], i + 2)
        } else {
            (vec![chars[i]], i + 1)
        };
        // Optional {n} / {min,max} repetition.
        let (reps, after) = if next < chars.len() && chars[next] == '{' {
            let close = chars[next + 1..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| p + next + 1)
                .unwrap_or_else(|| panic!("proptest shim: unclosed `{{` in pattern {pattern:?}"));
            let spec: String = chars[next + 1..close].iter().collect();
            let reps = match spec.split_once(',') {
                Some((min, max)) => {
                    let min: u64 = min.trim().parse().expect("repetition bound");
                    let max: u64 = max.trim().parse().expect("repetition bound");
                    rng.gen_range_u64(min, max + 1)
                }
                None => spec.trim().parse().expect("repetition count"),
            };
            (reps, close + 1)
        } else {
            (1, next)
        };
        assert!(!choices.is_empty(), "proptest shim: empty class in pattern {pattern:?}");
        for _ in 0..reps {
            let pick = rng.gen_range_u64(0, choices.len() as u64) as usize;
            out.push(choices[pick]);
        }
        i = after;
    }
    out
}

// --- combinator modules -------------------------------------------------

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start >= self.size.end {
                self.size.start
            } else {
                self.size.start
                    + (rng.gen_range_u64(0, (self.size.end - self.size.start) as u64) as usize)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some(inner)` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_f64() < 0.75 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Weighted union over same-valued strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: Debug> Union<T> {
    /// A union of `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range_u64(0, self.total);
        for (weight, strat) in &self.arms {
            if pick < *weight as u64 {
                return strat.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weighted pick exceeded total")
    }
}

/// Boxes one weighted arm for [`Union::new`] (used by [`prop_oneof!`]).
pub fn weighted_arm<S: Strategy + 'static>(weight: u32, strat: S) -> (u32, BoxedStrategy<S::Value>) {
    (weight, Box::new(strat))
}

// --- runner -------------------------------------------------------------

/// Per-suite configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

fn seed_for(test_name: &str) -> u64 {
    if let Ok(env) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = env.trim().parse::<u64>() {
            return seed;
        }
        eprintln!("proptest shim: ignoring unparseable PROPTEST_SEED={env:?}");
    }
    // FNV-1a over the test name: stable across runs and platforms, so CI
    // is deterministic without any configuration.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Drives one property test: `config.cases` generated cases, failure
/// reporting with the reproduction seed. Called by [`proptest!`].
pub fn run_property_test(
    test_name: &str,
    config: &ProptestConfig,
    run_one: impl Fn(&mut TestRng, &mut String),
) {
    let seed = seed_for(test_name);
    let mut rng = TestRng::new(seed);
    for case in 0..config.cases {
        let mut inputs = String::new();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_one(&mut rng, &mut inputs)
        }));
        if let Err(payload) = outcome {
            eprintln!(
                "proptest shim: `{test_name}` failed at case {case}/{total} with seed {seed}",
                total = config.cases
            );
            eprintln!("to reproduce: PROPTEST_SEED={seed} cargo test {test_name}");
            if !inputs.is_empty() {
                eprintln!("generated inputs:\n{inputs}");
            }
            std::panic::resume_unwind(payload);
        }
    }
}

// --- macros -------------------------------------------------------------

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::run_property_test(stringify!($name), &config, |rng, inputs| {
                    $(let $arg = $crate::Strategy::generate(&$strat, rng);)+
                    *inputs = format!("{:#?}", ($(&$arg,)+));
                    $body
                });
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Weighted choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::weighted_arm($weight, $strat)),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::weighted_arm(1, $strat)),+])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// The usual imports (`proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn determinism_per_seed() {
        let mut a = TestRng::new(9);
        let mut b = TestRng::new(9);
        let strat = crate::collection::vec(any::<u8>(), 0..10);
        for _ in 0..20 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    #[test]
    fn pattern_strategies_match_their_class() {
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let s = "[a-z/]{1,20}".generate(&mut rng);
            assert!((1..=20).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == '/'));
            let t = "[a-z0-9/._-]{1,40}".generate(&mut rng);
            assert!((1..=40).contains(&t.len()));
            assert!(t
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "/._-".contains(c)));
        }
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        let strat = prop_oneof![
            4 => Just(0u8),
            1 => Just(1u8),
        ];
        let mut rng = TestRng::new(5);
        let zeros = (0..1000).filter(|_| strat.generate(&mut rng) == 0).count();
        assert!((700..900).contains(&zeros), "zeros={zeros}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs(v in crate::collection::vec(0u8..4, 0..8), flag in any::<bool>()) {
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|&b| b < 4));
            let _ = flag;
        }
    }
}
