//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros
//! (no `syn`/`quote` — the token stream is parsed directly) supporting
//! exactly the shapes this workspace uses:
//!
//! - structs with named fields, including `#[serde(flatten)]` fields;
//! - unit-only enums (serialized as the variant-name string);
//! - internally tagged enums (`#[serde(tag = "...")]`) with named-field
//!   or unit variants, honoring `rename_all = "snake_case"`.
//!
//! Generated code targets the shim `serde::{Serialize, Deserialize,
//! Content}` traits. Unsupported shapes (generics, tuple structs/
//! variants) panic at expansion time with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Collects a token stream, transparently expanding `Delimiter::None`
/// groups. `macro_rules!` fragment captures (`$vis:vis`, `$ty:ty`, ...)
/// arrive wrapped in such invisible groups, so without this a derive on a
/// macro-generated struct sees `Group(pub)` where it expects `Ident(pub)`.
fn flatten_stream(input: TokenStream) -> Vec<TokenTree> {
    let mut out = Vec::new();
    for tok in input {
        match tok {
            TokenTree::Group(g) if g.delimiter() == Delimiter::None => {
                out.extend(flatten_stream(g.stream()));
            }
            other => out.push(other),
        }
    }
    out
}

struct Field {
    name: String,
    flatten: bool,
}

struct Variant {
    name: String,
    /// `None` for unit variants, `Some(fields)` for named-field variants.
    fields: Option<Vec<Field>>,
}

enum Shape {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    tag: Option<String>,
    rename_all_snake: bool,
    shape: Shape,
}

fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// Extracts `tag = "..."` / `rename_all = "..."` / `flatten` markers from
/// the token stream inside one `#[serde(...)]` group.
fn parse_serde_attr(
    tokens: TokenStream,
    tag: &mut Option<String>,
    snake: &mut bool,
    flatten: &mut bool,
) {
    let toks: Vec<TokenTree> = flatten_stream(tokens);
    let mut i = 0;
    while i < toks.len() {
        if let TokenTree::Ident(id) = &toks[i] {
            let key = id.to_string();
            if key == "flatten" {
                *flatten = true;
                i += 1;
            } else {
                match toks.get(i + 2) {
                    Some(TokenTree::Literal(lit)) => {
                        let value = lit.to_string().trim_matches('"').to_string();
                        match key.as_str() {
                            "tag" => *tag = Some(value),
                            "rename_all" => *snake = value == "snake_case",
                            other => panic!("serde shim: unsupported attribute `{other}`"),
                        }
                        i += 3;
                    }
                    _ => panic!("serde shim: malformed #[serde(...)] attribute"),
                }
            }
        } else {
            // Separator commas.
            i += 1;
        }
    }
}

/// Skips attributes at `toks[*i]`, collecting `#[serde(...)]` contents.
fn skip_attrs(
    toks: &[TokenTree],
    i: &mut usize,
    tag: &mut Option<String>,
    snake: &mut bool,
    flatten: &mut bool,
) {
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    if let Some(TokenTree::Ident(id)) = inner.first() {
                        if id.to_string() == "serde" {
                            if let Some(TokenTree::Group(args)) = inner.get(1) {
                                parse_serde_attr(args.stream(), tag, snake, flatten);
                            }
                        }
                    }
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Parses the named fields inside a brace group.
fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = flatten_stream(stream);
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut flatten = false;
        skip_attrs(&toks, &mut i, &mut None, &mut false, &mut flatten);
        if i >= toks.len() {
            break;
        }
        skip_vis(&toks, &mut i);
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim: expected field name, found `{other}`"),
        };
        i += 1;
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim: expected `:` after field `{name}`, found `{other}`"),
        }
        // Consume the type: everything up to a top-level comma. `<...>`
        // nesting must be tracked because commas appear inside generics.
        let mut angle_depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, flatten });
    }
    fields
}

/// Parses the variants inside an enum body.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = flatten_stream(stream);
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i, &mut None, &mut false, &mut false);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim: expected variant name, found `{other}`"),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_fields(g.stream());
                i += 1;
                Some(f)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde shim: tuple variant `{name}` is unsupported")
            }
            _ => None,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = flatten_stream(input);
    let mut i = 0;
    let mut tag = None;
    let mut snake = false;
    skip_attrs(&toks, &mut i, &mut tag, &mut snake, &mut false);
    skip_vis(&toks, &mut i);
    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim: expected `struct` or `enum`, found `{other}`"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim: expected type name, found `{other}`"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim: generic type `{name}` is unsupported");
        }
    }
    let body = match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde shim: expected braced body for `{name}`, found `{other:?}`"),
    };
    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_fields(body)),
        "enum" => Shape::Enum(parse_variants(body)),
        other => panic!("serde shim: unsupported item kind `{other}`"),
    };
    Item {
        name,
        tag,
        rename_all_snake: snake,
        shape,
    }
}

fn variant_wire_name(item: &Item, variant: &str) -> String {
    if item.rename_all_snake {
        snake_case(variant)
    } else {
        variant.to_string()
    }
}

/// `#[derive(Serialize)]` — lowers the type into a `serde::Content` tree.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut code =
                String::from("let mut m: Vec<(String, serde::Content)> = Vec::new();\n");
            for f in fields {
                if f.flatten {
                    code.push_str(&format!(
                        "match serde::Serialize::serialize_content(&self.{fname}) {{\n\
                         serde::Content::Map(inner) => m.extend(inner),\n\
                         other => m.push((\"{fname}\".to_string(), other)),\n\
                         }}\n",
                        fname = f.name
                    ));
                } else {
                    code.push_str(&format!(
                        "m.push((\"{fname}\".to_string(), serde::Serialize::serialize_content(&self.{fname})));\n",
                        fname = f.name
                    ));
                }
            }
            code.push_str("serde::Content::Map(m)");
            code
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let wire = variant_wire_name(&item, &v.name);
                match (&v.fields, &item.tag) {
                    (None, None) => {
                        arms.push_str(&format!(
                            "{name}::{v} => serde::Content::Str(\"{wire}\".to_string()),\n",
                            v = v.name
                        ));
                    }
                    (None, Some(tag)) => {
                        arms.push_str(&format!(
                            "{name}::{v} => serde::Content::Map(vec![(\"{tag}\".to_string(), serde::Content::Str(\"{wire}\".to_string()))]),\n",
                            v = v.name
                        ));
                    }
                    (Some(fields), Some(tag)) => {
                        let bindings = fields
                            .iter()
                            .map(|f| f.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let mut pushes = String::new();
                        for f in fields {
                            pushes.push_str(&format!(
                                "m.push((\"{fname}\".to_string(), serde::Serialize::serialize_content({fname})));\n",
                                fname = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {bindings} }} => {{\n\
                             let mut m: Vec<(String, serde::Content)> = vec![(\"{tag}\".to_string(), serde::Content::Str(\"{wire}\".to_string()))];\n\
                             {pushes}serde::Content::Map(m)\n\
                             }}\n",
                            v = v.name
                        ));
                    }
                    (Some(fields), None) => {
                        // Externally tagged: {"Variant": {fields...}}.
                        let bindings = fields
                            .iter()
                            .map(|f| f.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let mut pushes = String::new();
                        for f in fields {
                            pushes.push_str(&format!(
                                "m.push((\"{fname}\".to_string(), serde::Serialize::serialize_content({fname})));\n",
                                fname = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {bindings} }} => {{\n\
                             let mut m: Vec<(String, serde::Content)> = Vec::new();\n\
                             {pushes}serde::Content::Map(vec![(\"{wire}\".to_string(), serde::Content::Map(m))])\n\
                             }}\n",
                            v = v.name
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn serialize_content(&self) -> serde::Content {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("serde shim: generated Serialize impl failed to parse")
}

/// `#[derive(Deserialize)]` — lifts the type back out of a `Content` tree.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let field_get = |fname: &str| {
        format!(
            "serde::Deserialize::deserialize_content(\n\
             m.iter().find(|kv| kv.0 == \"{fname}\").map(|kv| &kv.1)\n\
             .ok_or_else(|| \"missing field `{fname}` in {name}\".to_string())?,\n\
             )?"
        )
    };
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut inits = String::new();
            for f in fields {
                if f.flatten {
                    inits.push_str(&format!(
                        "{fname}: serde::Deserialize::deserialize_content(content)?,\n",
                        fname = f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{fname}: {get},\n",
                        fname = f.name,
                        get = field_get(&f.name)
                    ));
                }
            }
            format!(
                "let m = match content {{\n\
                 serde::Content::Map(m) => m,\n\
                 other => return Err(format!(\"expected map for {name}, found {{other:?}}\")),\n\
                 }};\n\
                 let _ = &m;\n\
                 Ok({name} {{\n{inits}}})"
            )
        }
        Shape::Enum(variants) => {
            if let Some(tag) = &item.tag {
                let mut arms = String::new();
                for v in variants {
                    let wire = variant_wire_name(&item, &v.name);
                    match &v.fields {
                        None => arms.push_str(&format!(
                            "\"{wire}\" => Ok({name}::{v}),\n",
                            v = v.name
                        )),
                        Some(fields) => {
                            let mut inits = String::new();
                            for f in fields {
                                inits.push_str(&format!(
                                    "{fname}: {get},\n",
                                    fname = f.name,
                                    get = field_get(&f.name)
                                ));
                            }
                            arms.push_str(&format!(
                                "\"{wire}\" => Ok({name}::{v} {{\n{inits}}}),\n",
                                v = v.name
                            ));
                        }
                    }
                }
                format!(
                    "let m = match content {{\n\
                     serde::Content::Map(m) => m,\n\
                     other => return Err(format!(\"expected map for {name}, found {{other:?}}\")),\n\
                     }};\n\
                     let tag = match m.iter().find(|kv| kv.0 == \"{tag}\").map(|kv| &kv.1) {{\n\
                     Some(serde::Content::Str(s)) => s.as_str(),\n\
                     Some(other) => return Err(format!(\"tag `{tag}` is not a string: {{other:?}}\")),\n\
                     None => return Err(\"missing tag `{tag}` for {name}\".to_string()),\n\
                     }};\n\
                     match tag {{\n{arms}\
                     other => Err(format!(\"unknown {name} variant `{{other}}`\")),\n\
                     }}"
                )
            } else {
                let mut arms = String::new();
                for v in variants {
                    if v.fields.is_some() {
                        panic!(
                            "serde shim: Deserialize for untagged data enum `{name}` is unsupported"
                        );
                    }
                    let wire = variant_wire_name(&item, &v.name);
                    arms.push_str(&format!("\"{wire}\" => Ok({name}::{v}),\n", v = v.name));
                }
                format!(
                    "let s = match content {{\n\
                     serde::Content::Str(s) => s.as_str(),\n\
                     other => return Err(format!(\"expected string for {name}, found {{other:?}}\")),\n\
                     }};\n\
                     match s {{\n{arms}\
                     other => Err(format!(\"unknown {name} variant `{{other}}`\")),\n\
                     }}"
                )
            }
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn deserialize_content(content: &serde::Content) -> Result<Self, String> {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("serde shim: generated Deserialize impl failed to parse")
}
