//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API shape
//! (no poisoning, `lock()` returns the guard directly). Performance
//! characteristics differ from the real crate but semantics match.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value` in a new lock.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value` in a new lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);

        let rw = RwLock::new(5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(rw.into_inner(), 6);
    }
}
