//! Offline stand-in for the `bytes` crate.
//!
//! The workspace builds without network access, so external crates are
//! replaced by minimal source-compatible shims. This one provides
//! [`Bytes`]: a cheaply clonable, immutable, reference-counted byte
//! buffer covering the API surface the workspace uses.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer.
///
/// Clones share the underlying allocation via `Arc`, and — like the real
/// `bytes::Bytes` — a [`Bytes::slice`] is a zero-copy *view* (offset +
/// length into the shared storage), so sub-slicing a payload costs one
/// reference-count bump, never a memcpy.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from([]),
            off: 0,
            len: 0,
        }
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            len: bytes.len(),
            data: Arc::from(bytes),
            off: 0,
        }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            len: data.len(),
            data: Arc::from(data),
            off: 0,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a zero-copy view of a sub-range of the buffer: the new
    /// `Bytes` shares the same storage with an adjusted offset/length.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "slice {}..{} out of bounds of {}",
            range.start,
            range.end,
            self.len
        );
        Bytes {
            data: Arc::clone(&self.data),
            off: self.off + range.start,
            len: range.end - range.start,
        }
    }

    /// Returns a zero-copy `Bytes` covering `subset`, which must lie
    /// inside this buffer (the real crate's `slice_ref`).
    ///
    /// # Panics
    ///
    /// Panics if `subset` is not a sub-slice of `self`.
    pub fn slice_ref(&self, subset: &[u8]) -> Self {
        if subset.is_empty() {
            return Bytes::new();
        }
        let base = self.as_ref().as_ptr() as usize;
        let start = subset.as_ptr() as usize;
        assert!(
            start >= base && start + subset.len() <= base + self.len,
            "slice_ref of a slice outside the buffer"
        );
        let off = start - base;
        self.slice(off..off + subset.len())
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            len: v.len(),
            data: Arc::from(v.into_boxed_slice()),
            off: 0,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref().iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_and_compares() {
        let a = Bytes::copy_from_slice(b"hello");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&a[..], b"hello");
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
    }

    #[test]
    fn from_and_slice() {
        let a = Bytes::from(vec![1u8, 2, 3, 4]);
        assert_eq!(&a.slice(1..3)[..], &[2, 3]);
        assert_eq!(Bytes::from_static(b"x").to_vec(), vec![b'x']);
    }

    #[test]
    fn slice_is_zero_copy() {
        let a = Bytes::from(vec![0u8, 1, 2, 3, 4, 5, 6, 7]);
        let view = a.slice(2..6);
        assert_eq!(&view[..], &[2, 3, 4, 5]);
        // Same storage: the view's slice starts inside the parent's.
        let base = a.as_ref().as_ptr() as usize;
        let sub = view.as_ref().as_ptr() as usize;
        assert_eq!(sub, base + 2);
        // Slicing a slice composes offsets.
        let inner = view.slice(1..3);
        assert_eq!(&inner[..], &[3, 4]);
        assert_eq!(inner.as_ref().as_ptr() as usize, base + 3);
    }

    #[test]
    fn slice_ref_recovers_a_view() {
        let a = Bytes::from(vec![9u8; 16]);
        let sub = &a.as_ref()[4..9];
        let view = a.slice_ref(sub);
        assert_eq!(view.len(), 5);
        assert_eq!(view.as_ref().as_ptr(), sub.as_ptr());
        assert!(a.slice_ref(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_slice_panics() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let _ = a.slice(1..5);
    }
}
