//! Offline stand-in for the `bytes` crate.
//!
//! The workspace builds without network access, so external crates are
//! replaced by minimal source-compatible shims. This one provides
//! [`Bytes`]: a cheaply clonable, immutable, reference-counted byte
//! buffer covering the API surface the workspace uses.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer.
///
/// Clones share the underlying allocation via `Arc`, matching the cost
/// model of the real `bytes::Bytes` closely enough for the simulator's
/// accounting.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from([]) }
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns a sub-range copy of the buffer.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        Bytes { data: Arc::from(&self.data[range]) }
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_and_compares() {
        let a = Bytes::copy_from_slice(b"hello");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&a[..], b"hello");
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
    }

    #[test]
    fn from_and_slice() {
        let a = Bytes::from(vec![1u8, 2, 3, 4]);
        assert_eq!(&a.slice(1..3)[..], &[2, 3]);
        assert_eq!(Bytes::from_static(b"x").to_vec(), vec![b'x']);
    }
}
