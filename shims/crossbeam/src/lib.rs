//! Offline stand-in for `crossbeam`.
//!
//! Provides the two pieces the workspace uses: multi-producer channels
//! with clonable senders (`channel::{bounded, unbounded}`) and a
//! concurrent FIFO queue (`queue::SegQueue`). Built on `std::sync`
//! rather than lock-free internals; the semantics — clonable senders,
//! `Err` on disconnected ends — match the real crate.

/// MPMC channels with clonable `Sender`s and genuinely blocking bounded
/// variants (Mutex + Condvar backed).
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        /// `None` = unbounded.
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Chan<T> {
        fn new(cap: Option<usize>) -> Arc<Self> {
            Arc::new(Chan {
                state: Mutex::new(State {
                    queue: VecDeque::new(),
                    cap,
                    senders: 1,
                    receivers: 1,
                }),
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
            })
        }
    }

    /// Sending half; clonable.
    pub struct Sender<T>(Arc<Chan<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap_or_else(|e| e.into_inner()).senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            st.senders -= 1;
            if st.senders == 0 {
                // Wake receivers blocked on an empty queue so they can
                // observe the disconnect.
                self.0.not_empty.notify_all();
            }
        }
    }

    /// Error returned when the receiving side has hung up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is at capacity.
        /// Errors if all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match st.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self
                            .0
                            .not_full
                            .wait(st)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.0.not_empty.notify_one();
            Ok(())
        }
    }

    /// Error returned when the sending side has hung up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on a disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Receiving half; clonable (MPMC, like the real crossbeam receiver).
    pub struct Receiver<T>(Arc<Chan<T>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap_or_else(|e| e.into_inner()).receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            st.receivers -= 1;
            if st.receivers == 0 {
                // Wake senders blocked on a full queue so they can observe
                // the disconnect.
                self.0.not_full.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .0
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive; `None` when empty or disconnected.
        pub fn try_recv(&self) -> Option<T> {
            let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            let v = st.queue.pop_front();
            if v.is_some() {
                drop(st);
                self.0.not_full.notify_one();
            }
            v
        }
    }

    /// An unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Chan::new(None);
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }

    /// A channel holding at most `cap` queued values: `send` blocks while
    /// the queue is full, which is what gives the streaming pipeline its
    /// back-pressure. `bounded(0)` is treated as capacity 1 (the shim has
    /// no rendezvous mode).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let chan = Chan::new(Some(cap.max(1)));
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }
}

/// Lock-guarded queues mirroring `crossbeam::queue`.
pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// An unbounded MPMC FIFO queue.
    #[derive(Debug)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            SegQueue::new()
        }
    }

    impl<T> SegQueue<T> {
        /// An empty queue.
        pub fn new() -> Self {
            SegQueue { inner: Mutex::new(VecDeque::new()) }
        }

        /// Appends `value` at the back.
        pub fn push(&self, value: T) {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).push_back(value);
        }

        /// Removes the front element, if any.
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).pop_front()
        }

        /// Number of queued elements.
        pub fn len(&self) -> usize {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_channel_roundtrips() {
        let (tx, rx) = channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        drop((tx, tx2));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn bounded_channel_applies_back_pressure() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        use std::time::Duration;

        let (tx, rx) = channel::bounded(2);
        let sent = Arc::new(AtomicUsize::new(0));
        let sent2 = Arc::clone(&sent);
        let handle = std::thread::spawn(move || {
            for i in 0..5 {
                tx.send(i).unwrap();
                sent2.fetch_add(1, Ordering::SeqCst);
            }
        });
        // With capacity 2 the sender must stall until we drain; give it
        // time to fill the queue and block.
        std::thread::sleep(Duration::from_millis(50));
        assert!(sent.load(Ordering::SeqCst) <= 3, "sender ran past capacity");
        let mut got = Vec::new();
        for _ in 0..5 {
            got.push(rx.recv().unwrap());
        }
        handle.join().unwrap();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn dropping_receiver_unblocks_sender() {
        let (tx, rx) = channel::bounded(1);
        tx.send(1).unwrap();
        let handle = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        assert_eq!(handle.join().unwrap(), Err(channel::SendError(2)));
    }

    #[test]
    fn segqueue_is_fifo() {
        let q = queue::SegQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }
}
