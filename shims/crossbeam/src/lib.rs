//! Offline stand-in for `crossbeam`.
//!
//! Provides the two pieces the workspace uses: multi-producer channels
//! with clonable senders (`channel::{bounded, unbounded}`) and a
//! concurrent FIFO queue (`queue::SegQueue`). Built on `std::sync`
//! rather than lock-free internals; the semantics — clonable senders,
//! `Err` on disconnected ends — match the real crate.

/// MPMC-ish channels with clonable `Sender`s (std-mpsc backed).
pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Sending half; clonable.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Error returned when the receiving side has hung up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, erroring if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Error returned when the sending side has hung up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on a disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Receiving half. Shared behind a mutex so it stays `Sync` like the
    /// real crossbeam receiver.
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .recv()
                .map_err(|_| RecvError)
        }

        /// Non-blocking receive; `None` when empty or disconnected.
        pub fn try_recv(&self) -> Option<T> {
            self.0
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .try_recv()
                .ok()
        }
    }

    /// An unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }

    /// A channel with capacity `cap`.
    ///
    /// Capacity is not enforced — senders never block. The workspace only
    /// uses `bounded(1)` for single-shot reply channels, where the extra
    /// slack is unobservable.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let _ = cap;
        unbounded()
    }
}

/// Lock-guarded queues mirroring `crossbeam::queue`.
pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// An unbounded MPMC FIFO queue.
    #[derive(Debug)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            SegQueue::new()
        }
    }

    impl<T> SegQueue<T> {
        /// An empty queue.
        pub fn new() -> Self {
            SegQueue { inner: Mutex::new(VecDeque::new()) }
        }

        /// Appends `value` at the back.
        pub fn push(&self, value: T) {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).push_back(value);
        }

        /// Removes the front element, if any.
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).pop_front()
        }

        /// Number of queued elements.
        pub fn len(&self) -> usize {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_channel_roundtrips() {
        let (tx, rx) = channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        drop((tx, tx2));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn segqueue_is_fifo() {
        let q = queue::SegQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }
}
