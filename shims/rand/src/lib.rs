//! Offline stand-in for the `rand` crate.
//!
//! Provides the seeded, deterministic subset the workspace uses:
//! `StdRng` (an xoshiro256**-style generator seeded via SplitMix64),
//! the `Rng`/`SeedableRng` trait surface (`gen_range`, `gen_bool`,
//! `gen`, `fill`), and the free `random::<T>()` function. Determinism
//! for a given seed is guaranteed across runs and platforms, which is
//! what the simulator's fault-injection machinery relies on.

use std::ops::Range;

/// Seedable generator constructors.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly by [`Rng::gen`] / [`random`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample(rng: &mut dyn RngCore) -> Self;
}

/// Types with uniform sampling over a half-open range.
pub trait SampleUniform: Sized {
    /// Draws a value in `[start, end)`.
    fn sample_in(rng: &mut dyn RngCore, start: Self, end: Self) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value in the range.
    fn sample_range(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_range(self, rng: &mut dyn RngCore) -> T {
        T::sample_in(rng, self.start, self.end)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
        impl SampleUniform for $t {
            fn sample_in(rng: &mut dyn RngCore, start: $t, end: $t) -> $t {
                assert!(start < end, "gen_range called with empty range");
                let span = (end as i128 - start as i128) as u128;
                // Multiply-shift bounded sampling; bias is negligible for
                // simulation purposes and determinism is what matters.
                let hi = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample(rng: &mut dyn RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl SampleUniform for f64 {
    fn sample_in(rng: &mut dyn RngCore, start: f64, end: f64) -> f64 {
        start + f64::sample(rng) * (end - start)
    }
}

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform value in `range` (exclusive upper bound).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample(self) < p
    }

    /// Uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Fills `dest` with uniform bytes.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore> Rng for R {}

/// The standard deterministic generator (xoshiro256** core).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// One value drawn from a process-global generator.
///
/// Unlike the real crate this is *seeded per process* from the address
/// of a stack local mixed with a monotonically increasing counter — not
/// cryptographic, but unique enough for test-file naming, its only use
/// in this workspace.
pub fn random<T: Standard>() -> T {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let marker = 0u8;
    let seed = (&marker as *const u8 as u64)
        ^ COUNTER.fetch_add(0x9e37_79b9, Ordering::Relaxed)
        ^ std::process::id() as u64;
    let mut rng = StdRng::seed_from_u64(seed);
    // Skip the first output, which correlates with the weak seed.
    let _ = rng.next_u64();
    T::sample(&mut rng)
}

/// Re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use super::{random, Rng, RngCore, SeedableRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn fill_covers_every_byte() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut buf = [0u8; 37];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
