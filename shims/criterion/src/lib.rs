//! Offline stand-in for `criterion`.
//!
//! A minimal timing harness with the same API shape: `criterion_group!`
//! / `criterion_main!`, `Criterion::{bench_function, benchmark_group}`,
//! groups with `sample_size` / `throughput` / `bench_with_input`, and
//! `Bencher::iter`. Each benchmark runs a small fixed number of timed
//! iterations and prints mean wall-clock time (plus throughput when
//! configured) — enough to compare engines while staying dependency-free
//! and fast under `cargo bench`.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared throughput for a benchmark, scaling the printed rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier (`BenchmarkId::from_parameter(..)`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id built from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// An id built from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // One warmup iteration, then timed samples.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = self.samples as u64;
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    if bencher.iters == 0 {
        println!("bench {name}: no samples");
        return;
    }
    let per_iter = bencher.elapsed / bencher.iters as u32;
    let mut line = format!("bench {name}: {per_iter:?}/iter ({} iters)", bencher.iters);
    if let Some(tp) = throughput {
        let secs = per_iter.as_secs_f64().max(1e-12);
        match tp {
            Throughput::Bytes(n) => {
                line.push_str(&format!(", {:.1} MiB/s", n as f64 / secs / (1024.0 * 1024.0)));
            }
            Throughput::Elements(n) => {
                line.push_str(&format!(", {:.0} elem/s", n as f64 / secs));
            }
        }
    }
    println!("{line}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher { samples: self.sample_size, elapsed: Duration::ZERO, iters: 0 };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher, self.throughput);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher { samples: self.sample_size, elapsed: Duration::ZERO, iters: 0 };
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id), &bencher, self.throughput);
        self
    }

    /// Ends the group (printing is immediate, so this is bookkeeping).
    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// A driver with default settings.
    pub fn new() -> Self {
        Criterion { default_sample_size: 10 }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 { 10 } else { self.default_sample_size };
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let samples = if self.default_sample_size == 0 { 10 } else { self.default_sample_size };
        let mut bencher = Bencher { samples, elapsed: Duration::ZERO, iters: 0 };
        f(&mut bencher);
        report(name, &bencher, None);
        self
    }
}

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_counts() {
        let mut c = Criterion::new();
        let mut runs = 0u32;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3);
            group.throughput(Throughput::Bytes(1024));
            group.bench_function("count", |b| b.iter(|| runs += 1));
            group.finish();
        }
        // 3 samples + 1 warmup.
        assert_eq!(runs, 4);
    }
}
