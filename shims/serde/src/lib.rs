//! Offline stand-in for `serde`.
//!
//! Instead of serde's visitor architecture, this shim serializes through
//! an intermediate [`Content`] tree: `Serialize` lowers a value into a
//! `Content`, `Deserialize` lifts one back. The companion `serde_derive`
//! shim generates both impls for the struct/enum shapes this workspace
//! uses (named-field structs, unit enums, internally tagged enums with
//! `rename_all = "snake_case"`, and `#[serde(flatten)]` fields), and the
//! `serde_json` shim renders/parses `Content` as JSON text.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialization tree (the shim's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Content)>),
}

/// Types that can lower themselves into a [`Content`] tree.
pub trait Serialize {
    /// Lowers `self` into the serialization tree.
    fn serialize_content(&self) -> Content;
}

/// Types that can be rebuilt from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Lifts a value out of the serialization tree.
    ///
    /// # Errors
    ///
    /// A human-readable message when the tree does not match `Self`.
    fn deserialize_content(content: &Content) -> Result<Self, String>;
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(content: &Content) -> Result<Self, String> {
                match content {
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| format!("integer {v} out of range for {}", stringify!($t))),
                    Content::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| format!("integer {v} out of range for {}", stringify!($t))),
                    other => Err(format!("expected integer, found {other:?}")),
                }
            }
        }
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                if *self >= 0 {
                    Content::U64(*self as u64)
                } else {
                    Content::I64(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(content: &Content) -> Result<Self, String> {
                match content {
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| format!("integer {v} out of range for {}", stringify!($t))),
                    Content::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| format!("integer {v} out of range for {}", stringify!($t))),
                    other => Err(format!("expected integer, found {other:?}")),
                }
            }
        }
    )*};
}

impl_serialize_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(content: &Content) -> Result<Self, String> {
                match content {
                    Content::F64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    other => Err(format!("expected number, found {other:?}")),
                }
            }
        }
    )*};
}

impl_serialize_float!(f32, f64);

impl Serialize for bool {
    fn serialize_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, found {other:?}")),
        }
    }
}

impl Serialize for str {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn serialize_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, found {other:?}")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_content(&self) -> Content {
        match self {
            Some(v) => v.serialize_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Null => Ok(None),
            other => T::deserialize_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Seq(items) => items.iter().map(T::deserialize_content).collect(),
            other => Err(format!("expected array, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u64::deserialize_content(&42u64.serialize_content()), Ok(42));
        assert_eq!(i64::deserialize_content(&(-3i64).serialize_content()), Ok(-3));
        assert_eq!(
            String::deserialize_content(&"hi".serialize_content()),
            Ok("hi".to_string())
        );
        assert_eq!(
            Vec::<u8>::deserialize_content(&vec![1u8, 2].serialize_content()),
            Ok(vec![1, 2])
        );
        assert_eq!(
            Option::<u64>::deserialize_content(&Content::Null),
            Ok(None)
        );
        assert!(u8::deserialize_content(&Content::U64(300)).is_err());
    }
}
