//! Offline stand-in for `serde_json`.
//!
//! Renders and parses JSON text through the shim `serde::Content` tree:
//! [`to_string_pretty`] / [`to_value`] lower any `serde::Serialize`
//! value, [`from_str`] parses text and lifts it through
//! `serde::Deserialize`. The [`Value`] enum and [`json!`] macro cover
//! the dynamic-document usage in the workspace's report generators.

use serde::{Content, Deserialize, Serialize};

/// The map type used by [`Value::Object`] (order-preserving).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts `value` under `key`, replacing any previous entry.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A dynamically typed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Serialize for Value {
    fn serialize_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::U64(v) => Content::U64(*v),
            Value::I64(v) => Content::I64(*v),
            Value::F64(v) => Content::F64(*v),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => {
                Content::Seq(items.iter().map(Serialize::serialize_content).collect())
            }
            Value::Object(map) => Content::Map(
                map.iter()
                    .map(|(k, v)| (k.clone(), v.serialize_content()))
                    .collect(),
            ),
        }
    }
}

impl Deserialize for Value {
    fn deserialize_content(content: &Content) -> Result<Self, String> {
        Ok(content_to_value(content))
    }
}

fn content_to_value(content: &Content) -> Value {
    match content {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(*b),
        Content::U64(v) => Value::U64(*v),
        Content::I64(v) => Value::I64(*v),
        Content::F64(v) => Value::F64(*v),
        Content::Str(s) => Value::String(s.clone()),
        Content::Seq(items) => Value::Array(items.iter().map(content_to_value).collect()),
        Content::Map(entries) => {
            let mut map = Map::new();
            for (k, v) in entries {
                map.insert(k.clone(), content_to_value(v));
            }
            Value::Object(map)
        }
    }
}

/// Errors from [`from_str`] / conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Infallible for the shim's data model; the `Result` mirrors the real
/// crate's signature.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(content_to_value(&value.serialize_content()))
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_f64(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{v:.1}")
        } else {
            format!("{v}")
        }
    } else {
        // JSON has no infinities; match serde_json by emitting null.
        "null".to_string()
    }
}

fn write_pretty(out: &mut String, content: &Content, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => out.push_str(&render_f64(*v)),
        Content::Str(s) => escape_into(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_pretty(out, item, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                out.push_str(&pad_in);
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, v, indent + 1);
                if i + 1 < entries.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible for the shim's data model; the `Result` mirrors the real
/// crate's signature.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.serialize_content(), 0);
    Ok(out)
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Infallible for the shim's data model; the `Result` mirrors the real
/// crate's signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    fn write_compact(out: &mut String, content: &Content) {
        match content {
            Content::Null => out.push_str("null"),
            Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Content::U64(v) => out.push_str(&v.to_string()),
            Content::I64(v) => out.push_str(&v.to_string()),
            Content::F64(v) => out.push_str(&render_f64(*v)),
            Content::Str(s) => escape_into(out, s),
            Content::Seq(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_compact(out, item);
                }
                out.push(']');
            }
            Content::Map(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    write_compact(out, v);
                }
                out.push('}');
            }
        }
    }
    let mut out = String::new();
    write_compact(&mut out, &value.serialize_content());
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.err(&format!("unexpected character `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser::new(text);
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after JSON value"));
    }
    T::deserialize_content(&content).map_err(Error)
}

/// Builds a [`Value`] from JSON-ish literal syntax.
///
/// Supports the object/array/scalar shapes the workspace uses; arbitrary
/// serializable expressions are lowered through [`to_value`].
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        let mut map = $crate::Map::new();
        $(
            map.insert(
                $key.to_string(),
                $crate::to_value(&$val).expect("json! value"),
            );
        )*
        $crate::Value::Object(map)
    }};
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![
            $($crate::to_value(&$val).expect("json! value")),*
        ])
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_render_roundtrip() {
        let text = r#"{"a": 1, "b": [true, null, "x\n"], "c": -2, "d": 1.5}"#;
        let v: Value = from_str(text).unwrap();
        match &v {
            Value::Object(m) => {
                assert_eq!(m.get("a"), Some(&Value::U64(1)));
                assert_eq!(m.get("c"), Some(&Value::I64(-2)));
                assert_eq!(m.get("d"), Some(&Value::F64(1.5)));
            }
            other => panic!("expected object, got {other:?}"),
        }
        let rendered = to_string(&v).unwrap();
        let again: Value = from_str(&rendered).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<Value>("{nope").is_err());
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
        assert!(from_str::<Value>(r#"{"a": }"#).is_err());
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({ "passed": true, "n": 3u64 });
        match v {
            Value::Object(m) => {
                assert_eq!(m.get("passed"), Some(&Value::Bool(true)));
                assert_eq!(m.get("n"), Some(&Value::U64(3)));
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn pretty_print_shape() {
        let v = json!({ "k": [1u64] });
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"k\": [\n    1\n  ]\n}");
    }
}
