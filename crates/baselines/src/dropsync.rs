//! A Dropsync-like mobile auto-sync engine (paper §II-A Fig. 2, §IV-B2/C2).
//!
//! Dropsync (Autosync for Dropbox) watches a folder on the phone and
//! uploads *whole files* through the Dropbox API whenever they change — no
//! delta encoding, no deduplication. On a slow mobile uplink the transfer
//! of one version often outlasts the interval to the next modification,
//! which implicitly batches updates ("the mobile phone ... only completed
//! limited numbers of sync actions, which has the effect of batching file
//! updates", §IV-C2) and keeps the radio permanently busy (the CPU and
//! power profile of Fig. 2).

use deltacfs_core::{EngineReport, SyncEngine};
use deltacfs_delta::Cost;
use deltacfs_net::{Link, LinkSpec, SimClock};
use deltacfs_vfs::{OpEvent, Vfs};

use crate::common::DirtyTracker;

/// Tuning for the Dropsync-like engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DropsyncConfig {
    /// Quiet window before a changed file is considered for upload.
    pub debounce_ms: u64,
}

impl Default for DropsyncConfig {
    fn default() -> Self {
        DropsyncConfig { debounce_ms: 500 }
    }
}

/// The Dropsync-like engine.
#[derive(Debug)]
pub struct DropsyncEngine {
    clock: SimClock,
    link: Link,
    dirty: DirtyTracker,
    cost: Cost,
    uploads: u64,
}

impl DropsyncEngine {
    /// Creates an engine on the given link (normally
    /// [`LinkSpec::mobile`]).
    pub fn new(cfg: DropsyncConfig, clock: SimClock, link_spec: LinkSpec) -> Self {
        DropsyncEngine {
            dirty: DirtyTracker::new(cfg.debounce_ms),
            clock,
            link: Link::new(link_spec),
            cost: Cost::new(),
            uploads: 0,
        }
    }

    /// Creates an engine with default settings on a mobile link.
    pub fn with_defaults(clock: SimClock) -> Self {
        Self::new(DropsyncConfig::default(), clock, LinkSpec::mobile())
    }

    /// Completed full-file uploads so far.
    pub fn upload_count(&self) -> u64 {
        self.uploads
    }

    fn upload_file(&mut self, path: &str, fs: &Vfs) {
        let Ok(content) = fs.peek_all(path) else {
            return;
        };
        // Read the whole file from flash and push it through the radio.
        self.cost.bytes_engine_read += content.len() as u64;
        self.cost.bytes_copied += content.len() as u64;
        let now = self.clock.now();
        self.link.upload(content.len() as u64 + 256, now);
        self.link.download(256, now); // API response
        self.uploads += 1;
    }
}

impl SyncEngine for DropsyncEngine {
    fn name(&self) -> &str {
        "dropsync"
    }

    fn on_event(&mut self, event: &OpEvent, _fs: &Vfs) {
        let now = self.clock.now();
        match event {
            OpEvent::Create { path }
            | OpEvent::Write { path, .. }
            | OpEvent::Truncate { path, .. }
            | OpEvent::Fsync { path }
            | OpEvent::Close { path } => self.dirty.touch(path.as_str(), now),
            OpEvent::Rename { src, dst, .. } => {
                self.dirty.rename(src.as_str(), dst.as_str());
                self.dirty.touch(dst.as_str(), now);
                self.link.upload(128, now);
            }
            OpEvent::Link { dst, .. } => self.dirty.touch(dst.as_str(), now),
            OpEvent::Unlink { path, .. } => {
                self.dirty.forget(path.as_str());
                self.link.upload(128, now);
            }
            OpEvent::Mkdir { .. } | OpEvent::Rmdir { .. } => {
                self.link.upload(128, now);
            }
        }
    }

    fn tick(&mut self, fs: &Vfs) {
        let now = self.clock.now();
        // The uplink is half-duplex for our purposes: while a transfer is
        // in flight, changed files keep accumulating in the dirty set
        // (implicit batching).
        if self.link.upload_busy_until() > now {
            return;
        }
        for path in self.dirty.take_ready(now) {
            self.upload_file(&path, fs);
        }
    }

    fn finish(&mut self, fs: &Vfs) {
        for path in self.dirty.take_all() {
            self.upload_file(&path, fs);
        }
    }

    fn report(&self) -> EngineReport {
        EngineReport {
            name: self.name().to_string(),
            client_cost: self.cost,
            server_cost: None, // Dropbox backend: opaque
            traffic: self.link.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uploads_whole_file_every_time() {
        let clock = SimClock::new();
        let mut engine = DropsyncEngine::with_defaults(clock.clone());
        let mut fs = Vfs::new();
        fs.enable_event_log();
        fs.create("/f").unwrap();
        fs.write("/f", 0, &vec![1u8; 100_000]).unwrap();
        for e in fs.drain_events() {
            engine.on_event(&e, &fs);
        }
        clock.advance(1000);
        engine.tick(&fs);
        assert_eq!(engine.upload_count(), 1);
        let up1 = engine.report().traffic.bytes_up;
        assert!(up1 >= 100_000);

        // A one-byte edit re-uploads everything.
        clock.advance(600_000); // let the link drain
        fs.write("/f", 0, b"!").unwrap();
        for e in fs.drain_events() {
            engine.on_event(&e, &fs);
        }
        clock.advance(1000);
        engine.tick(&fs);
        assert_eq!(engine.upload_count(), 2);
        assert!(engine.report().traffic.bytes_up >= 2 * 100_000);
    }

    #[test]
    fn busy_link_batches_updates() {
        let clock = SimClock::new();
        let mut engine = DropsyncEngine::with_defaults(clock.clone());
        let mut fs = Vfs::new();
        fs.enable_event_log();
        fs.create("/f").unwrap();
        // 10 MB at 1 MB/s keeps the link busy for ~10 s.
        fs.write("/f", 0, &vec![1u8; 10 << 20]).unwrap();
        for e in fs.drain_events() {
            engine.on_event(&e, &fs);
        }
        clock.advance(1000);
        engine.tick(&fs);
        assert_eq!(engine.upload_count(), 1);

        // Three edits land while the transfer is still running.
        for i in 0..3 {
            clock.advance(1000);
            fs.write("/f", i * 100, b"edit").unwrap();
            for e in fs.drain_events() {
                engine.on_event(&e, &fs);
            }
            engine.tick(&fs);
        }
        // Still only one upload completed (the link was busy).
        assert_eq!(engine.upload_count(), 1);
        // Once the link frees up, the batched state uploads once.
        clock.advance(60_000);
        engine.tick(&fs);
        assert_eq!(engine.upload_count(), 2);
    }

    #[test]
    fn finish_flushes() {
        let clock = SimClock::new();
        let mut engine = DropsyncEngine::with_defaults(clock.clone());
        let mut fs = Vfs::new();
        fs.enable_event_log();
        fs.create("/f").unwrap();
        fs.write("/f", 0, b"hi").unwrap();
        for e in fs.drain_events() {
            engine.on_event(&e, &fs);
        }
        engine.finish(&fs);
        assert_eq!(engine.upload_count(), 1);
    }
}
