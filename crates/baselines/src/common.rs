//! Shared plumbing for the baseline engines.

use std::collections::HashMap;

use deltacfs_net::SimTime;

/// Debounced change detection, modelling inotify-driven sync clients:
/// a path becomes *ready* once no further event has touched it for the
/// debounce window (so an editor's burst of operations coalesces into one
/// sync action, but separate saves trigger separate syncs).
#[derive(Debug, Default)]
pub struct DirtyTracker {
    last_event: HashMap<String, SimTime>,
    debounce_ms: u64,
}

impl DirtyTracker {
    /// Creates a tracker with the given quiet window.
    pub fn new(debounce_ms: u64) -> Self {
        DirtyTracker {
            last_event: HashMap::new(),
            debounce_ms,
        }
    }

    /// Records a change event for `path` at `now`.
    pub fn touch(&mut self, path: &str, now: SimTime) {
        self.last_event.insert(path.to_string(), now);
    }

    /// Forgets `path` (it was deleted).
    pub fn forget(&mut self, path: &str) {
        self.last_event.remove(path);
    }

    /// Moves a pending entry from `src` to `dst` (rename).
    pub fn rename(&mut self, src: &str, dst: &str) {
        if let Some(t) = self.last_event.remove(src) {
            self.last_event.insert(dst.to_string(), t);
        }
    }

    /// Number of paths currently pending.
    pub fn pending(&self) -> usize {
        self.last_event.len()
    }

    /// Removes and returns the paths whose quiet window has elapsed,
    /// sorted for determinism.
    pub fn take_ready(&mut self, now: SimTime) -> Vec<String> {
        let debounce = self.debounce_ms;
        let mut ready: Vec<String> = self
            .last_event
            .iter()
            .filter(|(_, t)| now.since(**t) >= debounce)
            .map(|(p, _)| p.clone())
            .collect();
        ready.sort();
        for p in &ready {
            self.last_event.remove(p);
        }
        ready
    }

    /// Removes and returns *all* pending paths (flush).
    pub fn take_all(&mut self) -> Vec<String> {
        let mut all: Vec<String> = self.last_event.keys().cloned().collect();
        all.sort();
        self.last_event.clear();
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_window_gates_readiness() {
        let mut d = DirtyTracker::new(500);
        d.touch("/a", SimTime(0));
        assert!(d.take_ready(SimTime(499)).is_empty());
        assert_eq!(d.take_ready(SimTime(500)), vec!["/a".to_string()]);
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn retouch_extends_window() {
        let mut d = DirtyTracker::new(500);
        d.touch("/a", SimTime(0));
        d.touch("/a", SimTime(400));
        assert!(d.take_ready(SimTime(700)).is_empty());
        assert_eq!(d.take_ready(SimTime(900)).len(), 1);
    }

    #[test]
    fn rename_moves_pending_entry() {
        let mut d = DirtyTracker::new(100);
        d.touch("/a", SimTime(0));
        d.rename("/a", "/b");
        assert_eq!(d.take_ready(SimTime(200)), vec!["/b".to_string()]);
    }

    #[test]
    fn forget_and_take_all() {
        let mut d = DirtyTracker::new(100);
        d.touch("/a", SimTime(0));
        d.touch("/b", SimTime(0));
        d.forget("/a");
        assert_eq!(d.take_all(), vec!["/b".to_string()]);
        assert_eq!(d.pending(), 0);
    }
}
