//! A Dropbox-like sync engine (paper §II-A, §IV-B/C and reference [38]).
//!
//! Behaviour reproduced from the paper's measurements and the published
//! reverse-engineering it cites:
//!
//! * change detection via inotify events with a short quiet window — every
//!   save of a file triggers a full sync pass over it;
//! * 4 MB fixed-block **deduplication**: each sync re-hashes the whole
//!   file in 4 MB blocks (this is why Dropbox's CPU grows with file size
//!   even for tiny updates — the WeChat column of Table II);
//! * **rsync confined within dedup blocks**: changed 4 MB blocks are delta
//!   encoded against the previous synced content with 4 KB rsync blocks;
//!   checksum computation is offloaded to the client ([38]), so the
//!   client pays both the signature and the diff scan;
//! * **compression** of uploaded literals (the paper suspects Snappy);
//! * content that shifts across 4 MB boundaries defeats deduplication and
//!   most of rsync's savings (the Word column of Fig. 8c).
//!
//! The engine keeps a shadow copy of each file's last-synced content — the
//! client-side state that lets Dropbox compute signatures locally. Its
//! server is opaque ([`report`](DropboxEngine::report) returns no server
//! cost), matching the paper's "we are unable to measure Dropbox server's
//! CPU usage".

use std::collections::HashMap;

use deltacfs_core::{EngineReport, SyncEngine};
use deltacfs_core::codec::compressed_wire_size;
use deltacfs_delta::{dedup, rsync, Cost, DeltaParams};
use deltacfs_net::{Link, LinkSpec, SimClock};
use deltacfs_vfs::{OpEvent, Vfs};

use crate::common::DirtyTracker;

/// Tuning for the Dropbox-like engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DropboxConfig {
    /// inotify quiet window before a sync pass starts.
    pub debounce_ms: u64,
    /// Deduplication super-block size (4 MB in Dropbox).
    pub dedup_block: usize,
    /// rsync block size within a dedup block (4 KB).
    pub rsync_block: usize,
    /// Whether uploads are LZ-compressed.
    pub compress: bool,
    /// Whether rsync runs at all. The paper had to tune replay timing to
    /// keep Dropbox's rsync engaged; with `false` the engine re-uploads
    /// changed dedup blocks wholesale (Dropbox's behaviour under rapid
    /// updates).
    pub rsync: bool,
}

impl Default for DropboxConfig {
    fn default() -> Self {
        DropboxConfig {
            debounce_ms: 500,
            dedup_block: dedup::DROPBOX_BLOCK_SIZE,
            rsync_block: 4096,
            compress: true,
            rsync: true,
        }
    }
}

impl DropboxConfig {
    /// Dropbox defaults with the 4 MB dedup granularity scaled alongside
    /// a scaled trace (the rsync block size stays at its absolute 4 KB —
    /// it is compared against absolute write sizes, not file sizes).
    pub fn scaled(scale: f64) -> Self {
        DropboxConfig {
            dedup_block: ((dedup::DROPBOX_BLOCK_SIZE as f64 * scale) as usize).max(64 * 1024),
            ..Self::default()
        }
    }
}

/// The Dropbox-like engine.
///
/// # Example
///
/// ```
/// use deltacfs_baselines::DropboxEngine;
/// use deltacfs_core::SyncEngine;
/// use deltacfs_net::SimClock;
/// use deltacfs_vfs::Vfs;
///
/// let clock = SimClock::new();
/// let mut engine = DropboxEngine::with_defaults(clock.clone());
/// let mut fs = Vfs::new();
/// fs.enable_event_log();
/// fs.create("/doc")?;
/// fs.write("/doc", 0, b"hello")?;
/// for event in fs.drain_events() {
///     engine.on_event(&event, &fs);
/// }
/// clock.advance(1_000); // past the inotify quiet window
/// engine.tick(&fs);
/// assert!(engine.report().traffic.bytes_up > 0);
/// # Ok::<(), deltacfs_vfs::VfsError>(())
/// ```
#[derive(Debug)]
pub struct DropboxEngine {
    cfg: DropboxConfig,
    clock: SimClock,
    link: Link,
    dirty: DirtyTracker,
    /// Last-synced content per path.
    shadow: HashMap<String, Vec<u8>>,
    /// Cached dedup block hashes of the last-synced content.
    shadow_ids: HashMap<String, Vec<dedup::BlockId>>,
    cost: Cost,
}

impl DropboxEngine {
    /// Creates an engine with the given configuration.
    pub fn new(cfg: DropboxConfig, clock: SimClock, link_spec: LinkSpec) -> Self {
        DropboxEngine {
            dirty: DirtyTracker::new(cfg.debounce_ms),
            cfg,
            clock,
            link: Link::new(link_spec),
            shadow: HashMap::new(),
            shadow_ids: HashMap::new(),
            cost: Cost::new(),
        }
    }

    /// Creates an engine with default (paper) settings on a PC link.
    pub fn with_defaults(clock: SimClock) -> Self {
        Self::new(DropboxConfig::default(), clock, LinkSpec::pc())
    }

    fn sync_file(&mut self, path: &str, fs: &Vfs) {
        let Ok(current) = fs.peek_all(path) else {
            // Deleted meanwhile; tell the cloud.
            if self.shadow.remove(path).is_some() {
                self.shadow_ids.remove(path);
                let now = self.clock.now();
                self.link.upload(64, now);
            }
            return;
        };
        // Dropbox reads the whole file back on every sync pass — the IO
        // amplification the paper measured at 700 MB for a 688 KB update.
        self.cost.bytes_engine_read += current.len() as u64;
        let now = self.clock.now();

        let new_ids = dedup::block_ids(&current, self.cfg.dedup_block, &mut self.cost);
        let old = self.shadow.get(path);
        let old_ids = self.shadow_ids.get(path);

        let mut upload: u64 = 64; // metadata header
        match (old, old_ids) {
            (Some(old), Some(old_ids)) => {
                let changed = dedup::changed_blocks(old_ids, &new_ids);
                for &block_idx in &changed {
                    let start = block_idx as usize * self.cfg.dedup_block;
                    let end = (start + self.cfg.dedup_block).min(current.len());
                    let new_block = &current[start..end];
                    let old_start = start.min(old.len());
                    let old_end = end.min(old.len());
                    let old_block = &old[old_start..old_end];
                    upload += 40; // per-block metadata
                    if self.cfg.rsync && !old_block.is_empty() {
                        // Client-side checksum offloading: the client
                        // computes the old block's signature itself.
                        let params = DeltaParams::with_block_size(self.cfg.rsync_block);
                        let sig = rsync::signature(old_block, &params, &mut self.cost);
                        let delta = rsync::diff(&sig, new_block, &params, &mut self.cost);
                        let literals: Vec<u8> = delta
                            .ops()
                            .iter()
                            .filter_map(|op| match op {
                                deltacfs_delta::DeltaOp::Literal(b) => Some(&b[..]),
                                _ => None,
                            })
                            .collect::<Vec<_>>()
                            .concat();
                        upload += wire_payload(self.cfg.compress, &literals, &mut self.cost)
                            + (delta.ops().len() as u64) * deltacfs_delta::OP_HEADER_BYTES;
                    } else {
                        upload += wire_payload(self.cfg.compress, new_block, &mut self.cost);
                    }
                }
            }
            _ => {
                // Initial upload: all blocks, compressed.
                upload += wire_payload(self.cfg.compress, &current, &mut self.cost)
                    + 40 * new_ids.len() as u64;
            }
        }
        self.link.upload(upload, now);
        // Small acknowledgement; checksum offloading avoids downloading
        // block lists (paper §IV-C1).
        self.link.download(128, now);
        self.shadow.insert(path.to_string(), current);
        self.shadow_ids.insert(path.to_string(), new_ids);
    }
}

/// Bytes `data` occupies on the wire — priced through the codec's
/// shared [`compressed_wire_size`] entry point when the engine
/// compresses, raw otherwise. Every payload in `sync_file` goes through
/// here, so the baseline and the adaptive wire codec agree byte for
/// byte on what "compressed size" means.
fn wire_payload(compress_on: bool, data: &[u8], cost: &mut Cost) -> u64 {
    if compress_on {
        compressed_wire_size(data, cost)
    } else {
        data.len() as u64
    }
}

impl SyncEngine for DropboxEngine {
    fn name(&self) -> &str {
        "dropbox"
    }

    fn on_event(&mut self, event: &OpEvent, _fs: &Vfs) {
        let now = self.clock.now();
        match event {
            OpEvent::Create { path }
            | OpEvent::Write { path, .. }
            | OpEvent::Truncate { path, .. }
            | OpEvent::Fsync { path }
            | OpEvent::Close { path } => self.dirty.touch(path.as_str(), now),
            OpEvent::Rename { src, dst, .. } => {
                if let Some(shadow) = self.shadow.remove(src.as_str()) {
                    self.shadow.insert(dst.to_string(), shadow);
                }
                if let Some(ids) = self.shadow_ids.remove(src.as_str()) {
                    self.shadow_ids.insert(dst.to_string(), ids);
                }
                self.dirty.rename(src.as_str(), dst.as_str());
                self.dirty.touch(dst.as_str(), now);
                // Tiny namespace RPC.
                self.link.upload(64, now);
            }
            OpEvent::Link { dst, .. } => self.dirty.touch(dst.as_str(), now),
            OpEvent::Unlink { path, .. } => {
                self.dirty.forget(path.as_str());
                if self.shadow.remove(path.as_str()).is_some() {
                    self.shadow_ids.remove(path.as_str());
                    self.link.upload(64, now);
                }
            }
            OpEvent::Mkdir { .. } | OpEvent::Rmdir { .. } => {
                self.link.upload(64, now);
            }
        }
    }

    fn tick(&mut self, fs: &Vfs) {
        let now = self.clock.now();
        for path in self.dirty.take_ready(now) {
            self.sync_file(&path, fs);
        }
    }

    fn finish(&mut self, fs: &Vfs) {
        for path in self.dirty.take_all() {
            self.sync_file(&path, fs);
        }
    }

    fn report(&self) -> EngineReport {
        EngineReport {
            name: self.name().to_string(),
            client_cost: self.cost,
            server_cost: None, // opaque, as in the paper
            traffic: self.link.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(ops: impl Fn(&mut Vfs)) -> (DropboxEngine, Vfs) {
        let clock = SimClock::new();
        let mut engine = DropboxEngine::with_defaults(clock.clone());
        let mut fs = Vfs::new();
        fs.enable_event_log();
        ops(&mut fs);
        for e in fs.drain_events() {
            engine.on_event(&e, &fs);
        }
        clock.advance(1000);
        engine.tick(&fs);
        (engine, fs)
    }

    #[test]
    fn initial_upload_is_compressed_full_content() {
        let (engine, _) = drive(|fs| {
            fs.create("/f").unwrap();
            fs.write("/f", 0, &vec![7u8; 100_000]).unwrap();
        });
        let t = engine.report().traffic;
        assert!(t.bytes_up > 0);
        // Constant data compresses extremely well.
        assert!(t.bytes_up < 10_000, "uploaded {}", t.bytes_up);
    }

    #[test]
    fn small_edit_costs_full_file_hash_but_small_upload() {
        let clock = SimClock::new();
        let mut engine = DropboxEngine::with_defaults(clock.clone());
        let mut fs = Vfs::new();
        fs.enable_event_log();
        // 1 MB of incompressible-ish data.
        let content: Vec<u8> = (0..1_000_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 8) as u8)
            .collect();
        fs.create("/f").unwrap();
        fs.write("/f", 0, &content).unwrap();
        for e in fs.drain_events() {
            engine.on_event(&e, &fs);
        }
        clock.advance(1000);
        engine.tick(&fs);
        let after_initial = engine.report();

        fs.write("/f", 500_000, b"tiny change").unwrap();
        for e in fs.drain_events() {
            engine.on_event(&e, &fs);
        }
        clock.advance(1000);
        engine.tick(&fs);
        let report = engine.report();
        let edit_upload = report.traffic.bytes_up - after_initial.traffic.bytes_up;
        // The upload is small (one 4 KB rsync block), but...
        assert!(edit_upload < 20_000, "uploaded {edit_upload}");
        // ...the client re-hashed the whole file (dedup + rsync).
        let hash_work =
            report.client_cost.bytes_strong_hashed - after_initial.client_cost.bytes_strong_hashed;
        assert!(hash_work > 1_000_000, "hashed only {hash_work}");
    }

    #[test]
    fn debounce_coalesces_bursts() {
        let clock = SimClock::new();
        let mut engine = DropboxEngine::with_defaults(clock.clone());
        let mut fs = Vfs::new();
        fs.enable_event_log();
        fs.create("/f").unwrap();
        for i in 0..10 {
            fs.write("/f", i * 10, b"0123456789").unwrap();
        }
        for e in fs.drain_events() {
            engine.on_event(&e, &fs);
        }
        clock.advance(1000);
        engine.tick(&fs);
        // One sync action → one content upload message.
        assert_eq!(engine.report().traffic.msgs_up, 1);
    }

    #[test]
    fn unlink_stops_tracking() {
        let (engine, _) = drive(|fs| {
            fs.create("/f").unwrap();
            fs.write("/f", 0, b"data").unwrap();
            fs.unlink("/f").unwrap();
        });
        // Only the tiny delete RPC went up; no content upload.
        let t = engine.report().traffic;
        assert!(t.bytes_up <= 64, "uploaded {}", t.bytes_up);
    }

    #[test]
    fn finish_flushes_pending_files() {
        let clock = SimClock::new();
        let mut engine = DropboxEngine::with_defaults(clock.clone());
        let mut fs = Vfs::new();
        fs.enable_event_log();
        fs.create("/f").unwrap();
        fs.write("/f", 0, b"x").unwrap();
        for e in fs.drain_events() {
            engine.on_event(&e, &fs);
        }
        engine.tick(&fs); // debounce not elapsed
        assert_eq!(engine.report().traffic.msgs_up, 0);
        engine.finish(&fs);
        assert!(engine.report().traffic.msgs_up > 0);
    }
}
