//! A Seafile-like sync engine (paper §II-A, references [3], [22]).
//!
//! Seafile uses content-defined chunking (CDC) with an average chunk size
//! of 1 MB. Its CPU profile is moderate — the gear scan is cheap and, as
//! the paper puts it, CDC "only needs to compute the checksums of changed
//! blocks" — but its network profile is poor: touching one byte re-uploads
//! an entire ~1 MB chunk (the dominant effect in Figs. 8 and 1(c)(d)).
//!
//! Changed-chunk detection works in two tiers, so unchanged chunks never
//! pay a strong hash: each chunk's cheap weak (rolling) checksum is
//! compared against the previous version's chunk set; only chunks whose
//! `(length, weak)` identity is new are MD5-hashed and, if the server does
//! not already store that hash, uploaded in full.

use std::collections::{HashMap, HashSet};

use deltacfs_core::{EngineReport, SyncEngine};
use deltacfs_delta::{cdc, md5, Cost, RollingChecksum};
use deltacfs_net::{Link, LinkSpec, SimClock};
use deltacfs_vfs::{OpEvent, Vfs};

use crate::common::DirtyTracker;

/// Tuning for the Seafile-like engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeafileConfig {
    /// Quiet window before a sync pass.
    pub debounce_ms: u64,
    /// CDC parameters (Seafile: ~1 MB average chunks).
    pub cdc: cdc::CdcParams,
}

impl Default for SeafileConfig {
    fn default() -> Self {
        SeafileConfig {
            debounce_ms: 500,
            cdc: cdc::CdcParams::seafile(),
        }
    }
}

impl SeafileConfig {
    /// Seafile's defaults with the chunking granularity scaled alongside
    /// a scaled trace, keeping the chunks-per-file ratio of the paper's
    /// full-size experiments (a 0.1-scale 13 MB database should see the
    /// same ~130 chunks a 131 MB one does at 1 MB each).
    pub fn scaled(scale: f64) -> Self {
        let avg = ((1024.0 * 1024.0 * scale) as usize).max(8 * 1024);
        let mask_bits = (avg as f64).log2().round() as u32;
        SeafileConfig {
            debounce_ms: 500,
            cdc: cdc::CdcParams {
                min_size: (avg / 4).max(2048),
                mask_bits,
                max_size: avg * 4,
            },
        }
    }
}

/// The Seafile-like engine (client and its thin chunk-store server).
#[derive(Debug)]
pub struct SeafileEngine {
    cfg: SeafileConfig,
    clock: SimClock,
    link: Link,
    dirty: DirtyTracker,
    /// Per path: the previous version's chunk identities `(len, weak)`.
    prev_chunks: HashMap<String, HashSet<(u64, u32)>>,
    /// Strong hashes the server already stores (content-addressed).
    server_chunks: HashSet<[u8; 16]>,
    client_cost: Cost,
    server_cost: Cost,
}

impl SeafileEngine {
    /// Creates an engine with the given configuration.
    pub fn new(cfg: SeafileConfig, clock: SimClock, link_spec: LinkSpec) -> Self {
        SeafileEngine {
            dirty: DirtyTracker::new(cfg.debounce_ms),
            cfg,
            clock,
            link: Link::new(link_spec),
            prev_chunks: HashMap::new(),
            server_chunks: HashSet::new(),
            client_cost: Cost::new(),
            server_cost: Cost::new(),
        }
    }

    /// Creates an engine with default (paper) settings on a PC link.
    pub fn with_defaults(clock: SimClock) -> Self {
        Self::new(SeafileConfig::default(), clock, LinkSpec::pc())
    }

    fn sync_file(&mut self, path: &str, fs: &Vfs) {
        let Ok(current) = fs.peek_all(path) else {
            if self.prev_chunks.remove(path).is_some() {
                let now = self.clock.now();
                self.link.upload(64, now);
            }
            return;
        };
        self.client_cost.bytes_engine_read += current.len() as u64;
        let now = self.clock.now();

        // Gear scan over the whole file to find chunk boundaries.
        let spans = cdc::chunks(&current, &self.cfg.cdc, &mut self.client_cost);
        let prev = self.prev_chunks.entry(path.to_string()).or_default();

        let mut new_ids: HashSet<(u64, u32)> = HashSet::with_capacity(spans.len());
        let mut upload: u64 = 64;
        for span in &spans {
            let chunk = span.slice(&current);
            // Cheap weak identity for changed-chunk detection.
            let weak = RollingChecksum::new(chunk).digest();
            self.client_cost.bytes_rolled += chunk.len() as u64;
            let id = (span.len, weak);
            new_ids.insert(id);
            if prev.contains(&id) {
                continue; // unchanged chunk: no strong hash, no upload
            }
            // New chunk: strong-hash it and upload if unknown to the
            // server's content-addressed store.
            let strong = md5(chunk);
            self.client_cost.bytes_strong_hashed += chunk.len() as u64;
            upload += 40; // chunk id in the upload manifest
            if self.server_chunks.insert(strong) {
                upload += chunk.len() as u64;
                // The server stores the chunk (one copy).
                self.server_cost.bytes_copied += chunk.len() as u64;
                self.server_cost.ops += 1;
            }
        }
        *prev = new_ids;
        self.link.upload(upload, now);
        self.link.download(128, now);
    }
}

impl SyncEngine for SeafileEngine {
    fn name(&self) -> &str {
        "seafile"
    }

    fn on_event(&mut self, event: &OpEvent, _fs: &Vfs) {
        let now = self.clock.now();
        match event {
            OpEvent::Create { path }
            | OpEvent::Write { path, .. }
            | OpEvent::Truncate { path, .. }
            | OpEvent::Fsync { path }
            | OpEvent::Close { path } => self.dirty.touch(path.as_str(), now),
            OpEvent::Rename { src, dst, .. } => {
                // Merge the chunk identities: after a transactional save
                // (tmp renamed over the original) most of the *original*
                // file's chunks are still present in the new content, so
                // keeping both sets is what lets unchanged chunks skip the
                // strong hash.
                if let Some(ids) = self.prev_chunks.remove(src.as_str()) {
                    self.prev_chunks
                        .entry(dst.to_string())
                        .or_default()
                        .extend(ids);
                }
                self.dirty.rename(src.as_str(), dst.as_str());
                self.dirty.touch(dst.as_str(), now);
                self.link.upload(64, now);
            }
            OpEvent::Link { dst, .. } => self.dirty.touch(dst.as_str(), now),
            OpEvent::Unlink { path, .. } => {
                self.dirty.forget(path.as_str());
                if self.prev_chunks.remove(path.as_str()).is_some() {
                    self.link.upload(64, now);
                }
            }
            OpEvent::Mkdir { .. } | OpEvent::Rmdir { .. } => {
                self.link.upload(64, now);
            }
        }
    }

    fn tick(&mut self, fs: &Vfs) {
        let now = self.clock.now();
        for path in self.dirty.take_ready(now) {
            self.sync_file(&path, fs);
        }
    }

    fn finish(&mut self, fs: &Vfs) {
        for path in self.dirty.take_all() {
            self.sync_file(&path, fs);
        }
    }

    fn report(&self) -> EngineReport {
        EngineReport {
            name: self.name().to_string(),
            client_cost: self.client_cost,
            server_cost: Some(self.server_cost),
            traffic: self.link.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SeafileConfig {
        SeafileConfig {
            debounce_ms: 500,
            cdc: cdc::CdcParams {
                min_size: 1024,
                mask_bits: 12,
                max_size: 64 * 1024,
            },
        }
    }

    fn engine_and_fs() -> (SeafileEngine, Vfs, SimClock) {
        let clock = SimClock::new();
        let engine = SeafileEngine::new(small_cfg(), clock.clone(), LinkSpec::pc());
        let mut fs = Vfs::new();
        fs.enable_event_log();
        (engine, fs, clock)
    }

    fn pump(engine: &mut SeafileEngine, fs: &mut Vfs, clock: &SimClock) {
        for e in fs.drain_events() {
            engine.on_event(&e, fs);
        }
        clock.advance(1000);
        engine.tick(fs);
    }

    fn noisy(len: usize, seed: u32) -> Vec<u8> {
        (0..len as u32)
            .map(|i| ((i ^ seed).wrapping_mul(2654435761) >> 8) as u8)
            .collect()
    }

    #[test]
    fn initial_upload_ships_every_chunk() {
        let (mut engine, mut fs, clock) = engine_and_fs();
        let content = noisy(100_000, 1);
        fs.create("/f").unwrap();
        fs.write("/f", 0, &content).unwrap();
        pump(&mut engine, &mut fs, &clock);
        let t = engine.report().traffic;
        assert!(t.bytes_up >= 100_000, "uploaded {}", t.bytes_up);
    }

    #[test]
    fn one_byte_edit_reuploads_about_one_chunk() {
        let (mut engine, mut fs, clock) = engine_and_fs();
        let content = noisy(200_000, 2);
        fs.create("/f").unwrap();
        fs.write("/f", 0, &content).unwrap();
        pump(&mut engine, &mut fs, &clock);
        let before = engine.report().traffic.bytes_up;

        fs.write("/f", 100_000, b"!").unwrap();
        pump(&mut engine, &mut fs, &clock);
        let edit_upload = engine.report().traffic.bytes_up - before;
        // Far more than the 1-byte change (a whole chunk), far less than
        // the whole file.
        assert!(edit_upload > 1000, "uploaded {edit_upload}");
        assert!(edit_upload < 150_000, "uploaded {edit_upload}");
    }

    #[test]
    fn unchanged_chunks_are_not_strong_hashed_again() {
        let (mut engine, mut fs, clock) = engine_and_fs();
        let content = noisy(200_000, 3);
        fs.create("/f").unwrap();
        fs.write("/f", 0, &content).unwrap();
        pump(&mut engine, &mut fs, &clock);
        let hashed_initial = engine.report().client_cost.bytes_strong_hashed;

        fs.write("/f", 50_000, b"edit").unwrap();
        pump(&mut engine, &mut fs, &clock);
        let hashed_edit = engine.report().client_cost.bytes_strong_hashed - hashed_initial;
        // Only the perturbed chunk(s) were strong-hashed.
        assert!(
            hashed_edit < hashed_initial / 2,
            "re-hashed {hashed_edit} of {hashed_initial}"
        );
    }

    #[test]
    fn identical_content_dedups_across_files() {
        let (mut engine, mut fs, clock) = engine_and_fs();
        let content = noisy(100_000, 4);
        fs.create("/a").unwrap();
        fs.write("/a", 0, &content).unwrap();
        pump(&mut engine, &mut fs, &clock);
        let before = engine.report().traffic.bytes_up;
        fs.create("/b").unwrap();
        fs.write("/b", 0, &content).unwrap();
        pump(&mut engine, &mut fs, &clock);
        let second = engine.report().traffic.bytes_up - before;
        // Content-addressed store: the bytes were not re-uploaded.
        assert!(second < 2000, "uploaded {second}");
    }

    #[test]
    fn server_cost_counts_stored_chunks() {
        let (mut engine, mut fs, clock) = engine_and_fs();
        fs.create("/f").unwrap();
        fs.write("/f", 0, &noisy(50_000, 5)).unwrap();
        pump(&mut engine, &mut fs, &clock);
        let report = engine.report();
        assert_eq!(report.server_cost.unwrap().bytes_copied, 50_000);
    }
}
