//! An NFSv4-like engine (paper §IV, reference [37], [40], [41]).
//!
//! NFS ships every write operation to the server as it happens — which is
//! exactly what makes it network-efficient for small in-place updates
//! (the WeChat column of Fig. 8d) and catastrophically chatty for
//! transactional updates that rewrite whole files (Fig. 8c). Two
//! second-order effects the paper measures are modelled:
//!
//! * **stale filehandle re-fetch**: after `rename tmp → f`, the client's
//!   cached `f` is stale (RFC 3530 volatile filehandles / close-to-open
//!   consistency), so `f`'s content is retrieved from the server again —
//!   this is why the NFS *server* uploads almost as much as the client
//!   does in the Word trace;
//! * **fetch-before-write**: a write that does not cover whole 4 KB
//!   blocks must first fetch the containing block(s) unless they are
//!   already cached ([41]).
//!
//! Client CPU is spent in kernel callbacks, which the paper leaves out of
//! Table II (`-`); we report an empty client cost accordingly. Server
//! cost is dominated by moving bytes through the network stack, which the
//! platform profiles charge per network byte.

use std::collections::{HashMap, HashSet};

use deltacfs_core::{EngineReport, SyncEngine};
use deltacfs_delta::Cost;
use deltacfs_net::{Link, LinkSpec, SimClock};
use deltacfs_vfs::{OpEvent, Vfs};

/// NFS block size for the fetch-before-write rule.
const NFS_BLOCK: u64 = 4096;

/// Per-operation RPC header overhead.
const RPC_HEADER: u64 = 120;

/// The NFSv4-like engine.
#[derive(Debug)]
pub struct NfsEngine {
    clock: SimClock,
    link: Link,
    /// Blocks of each file the client currently has cached.
    cached: HashMap<String, HashSet<u64>>,
    /// Known file sizes (server view == client view; writes are
    /// synchronous).
    sizes: HashMap<String, u64>,
    client_cost: Cost,
    server_cost: Cost,
}

impl NfsEngine {
    /// Creates an engine on the given link.
    pub fn new(clock: SimClock, link_spec: LinkSpec) -> Self {
        NfsEngine {
            clock,
            link: Link::new(link_spec),
            cached: HashMap::new(),
            sizes: HashMap::new(),
            client_cost: Cost::new(),
            server_cost: Cost::new(),
        }
    }

    /// Creates an engine on a PC-grade link.
    pub fn with_defaults(clock: SimClock) -> Self {
        Self::new(clock, LinkSpec::pc())
    }
}

impl SyncEngine for NfsEngine {
    fn name(&self) -> &str {
        "nfs"
    }

    fn on_event(&mut self, event: &OpEvent, _fs: &Vfs) {
        let now = self.clock.now();
        match event {
            OpEvent::Create { path } => {
                self.link.upload(RPC_HEADER, now);
                self.sizes.insert(path.to_string(), 0);
                self.cached.insert(path.to_string(), HashSet::new());
            }
            OpEvent::Write {
                path, offset, data, ..
            } => {
                let path = path.as_str();
                let offset = *offset;
                let size = self.sizes.get(path).copied().unwrap_or(0);
                let end = offset + data.len() as u64;
                // Fetch-before-write: partially covered blocks inside the
                // existing file must be read from the server first unless
                // cached ([41]).
                let first_block = offset / NFS_BLOCK;
                let last_block = if end > 0 { (end - 1) / NFS_BLOCK } else { 0 };
                let cache = self.cached.entry(path.to_string()).or_default();
                let mut fetch: u64 = 0;
                if offset % NFS_BLOCK != 0 && offset < size && !cache.contains(&first_block) {
                    fetch += NFS_BLOCK.min(size - first_block * NFS_BLOCK);
                    cache.insert(first_block);
                }
                if !end.is_multiple_of(NFS_BLOCK)
                    && end < size
                    && last_block != first_block
                    && !cache.contains(&last_block)
                {
                    fetch += NFS_BLOCK.min(size - last_block * NFS_BLOCK);
                    cache.insert(last_block);
                }
                if fetch > 0 {
                    self.link.download(fetch + RPC_HEADER, now);
                }
                // The write itself is shipped synchronously.
                self.link.upload(data.len() as u64 + RPC_HEADER, now);
                self.server_cost.bytes_copied += data.len() as u64;
                self.server_cost.ops += 1;
                for b in first_block..=last_block {
                    cache.insert(b);
                }
                self.sizes.insert(path.to_string(), size.max(end));
            }
            OpEvent::Truncate { path, size, .. } => {
                self.link.upload(RPC_HEADER, now);
                self.server_cost.ops += 1;
                self.sizes.insert(path.to_string(), *size);
                let bs = *size / NFS_BLOCK;
                if let Some(cache) = self.cached.get_mut(path.as_str()) {
                    cache.retain(|b| *b <= bs);
                }
            }
            OpEvent::Rename { src, dst, .. } => {
                self.link.upload(RPC_HEADER, now);
                self.server_cost.ops += 1;
                let size = self.sizes.remove(src.as_str()).unwrap_or(0);
                self.sizes.insert(dst.to_string(), size);
                self.cached.remove(src.as_str());
                // Close-to-open: the destination's cached content is stale
                // after the rename; the client re-fetches it in full ([40],
                // the paper's "surprising" server→client traffic).
                self.cached.insert(dst.to_string(), HashSet::new());
                if size > 0 {
                    self.link.download(size + RPC_HEADER, now);
                    self.server_cost.ops += 1;
                    let blocks = size.div_ceil(NFS_BLOCK);
                    let cache = self.cached.entry(dst.to_string()).or_default();
                    cache.extend(0..blocks);
                }
            }
            OpEvent::Link { src, dst } => {
                self.link.upload(RPC_HEADER, now);
                self.server_cost.ops += 1;
                let size = self.sizes.get(src.as_str()).copied().unwrap_or(0);
                self.sizes.insert(dst.to_string(), size);
            }
            OpEvent::Unlink { path, .. } => {
                self.link.upload(RPC_HEADER, now);
                self.server_cost.ops += 1;
                self.sizes.remove(path.as_str());
                self.cached.remove(path.as_str());
            }
            OpEvent::Mkdir { .. } | OpEvent::Rmdir { .. } => {
                self.link.upload(RPC_HEADER, now);
                self.server_cost.ops += 1;
            }
            OpEvent::Close { .. } | OpEvent::Fsync { .. } => {
                // Writes already went through synchronously; COMMIT is a
                // small RPC.
                self.link.upload(RPC_HEADER, now);
            }
        }
    }

    fn tick(&mut self, _fs: &Vfs) {}

    fn finish(&mut self, _fs: &Vfs) {}

    fn report(&self) -> EngineReport {
        EngineReport {
            name: self.name().to_string(),
            // Kernel callbacks: not measurable, as in Table II.
            client_cost: self.client_cost,
            server_cost: Some(self.server_cost),
            traffic: self.link.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_and_fs() -> (NfsEngine, Vfs) {
        let clock = SimClock::new();
        let engine = NfsEngine::with_defaults(clock);
        let mut fs = Vfs::new();
        fs.enable_event_log();
        (engine, fs)
    }

    fn pump(engine: &mut NfsEngine, fs: &mut Vfs) {
        for e in fs.drain_events() {
            engine.on_event(&e, fs);
        }
    }

    #[test]
    fn every_write_is_shipped() {
        let (mut engine, mut fs) = engine_and_fs();
        fs.create("/f").unwrap();
        for i in 0..10u64 {
            fs.write("/f", i * 4096, &vec![1u8; 4096]).unwrap();
        }
        pump(&mut engine, &mut fs);
        let t = engine.report().traffic;
        assert!(t.bytes_up >= 10 * 4096);
        assert_eq!(t.msgs_up, 11); // create + 10 writes
    }

    #[test]
    fn rename_over_refetches_whole_file() {
        let (mut engine, mut fs) = engine_and_fs();
        fs.create("/f").unwrap();
        fs.write("/f", 0, &vec![1u8; 100_000]).unwrap();
        fs.create("/tmp0").unwrap();
        fs.write("/tmp0", 0, &vec![2u8; 100_000]).unwrap();
        pump(&mut engine, &mut fs);
        let down_before = engine.report().traffic.bytes_down;
        fs.rename("/tmp0", "/f").unwrap();
        pump(&mut engine, &mut fs);
        let refetch = engine.report().traffic.bytes_down - down_before;
        assert!(refetch >= 100_000, "refetched only {refetch}");
    }

    #[test]
    fn unaligned_write_fetches_block_first() {
        let (mut engine, mut fs) = engine_and_fs();
        fs.create("/db").unwrap();
        fs.write("/db", 0, &vec![0u8; 64 * 1024]).unwrap();
        pump(&mut engine, &mut fs);
        // Simulate a fresh client view (cache dropped): rename-over to
        // clear... instead simply measure the already-cached case first.
        let down_cached = engine.report().traffic.bytes_down;
        fs.write("/db", 10_000, b"xyz").unwrap(); // unaligned but cached
        pump(&mut engine, &mut fs);
        assert_eq!(engine.report().traffic.bytes_down, down_cached);
    }

    #[test]
    fn unaligned_write_on_uncached_block_downloads() {
        let (mut engine, mut fs) = engine_and_fs();
        // File appears via rename (cache cleared, then refilled by the
        // refetch) — so instead create the state manually: write a file,
        // then truncate the engine's cache through a rename round-trip.
        fs.create("/a").unwrap();
        fs.write("/a", 0, &vec![0u8; 64 * 1024]).unwrap();
        pump(&mut engine, &mut fs);
        // Drop the cache by renaming to a new name: the refetch marks all
        // blocks cached, so clear them manually for the test.
        engine.cached.get_mut("/a").unwrap().clear();
        let down_before = engine.report().traffic.bytes_down;
        fs.write("/a", 10_000, b"xyz").unwrap();
        pump(&mut engine, &mut fs);
        let fetched = engine.report().traffic.bytes_down - down_before;
        assert!(fetched >= 3, "fetch-before-write did not trigger");
    }

    #[test]
    fn client_cost_is_empty_like_the_paper_dash() {
        let (mut engine, mut fs) = engine_and_fs();
        fs.create("/f").unwrap();
        fs.write("/f", 0, b"data").unwrap();
        pump(&mut engine, &mut fs);
        let r = engine.report();
        assert_eq!(r.client_cost.total_bytes(), 0);
        assert!(r.server_cost.unwrap().bytes_copied > 0);
    }
}
