//! # deltacfs-baselines
//!
//! The comparison systems from the DeltaCFS paper's evaluation (§IV), each
//! implemented as a [`SyncEngine`](deltacfs_core::SyncEngine) so that the
//! trace-replay driver and benchmarks treat them interchangeably with
//! DeltaCFS:
//!
//! * [`DropboxEngine`] — inotify-style change detection, 4 MB fixed-block
//!   deduplication, rsync (4 KB blocks, MD5 strong checksums, client-side
//!   checksum offloading) confined within dedup blocks, LZ compression of
//!   uploads. Its server is opaque, as in the paper.
//! * [`SeafileEngine`] — content-defined chunking (gear hash, ~1 MB
//!   average chunks); only new chunks are strong-hashed and uploaded.
//! * [`NfsEngine`] — NFSv4-style write-through operation shipping with
//!   close-to-open cache semantics: whole-file re-fetch after a
//!   rename-over (stale filehandle, RFC 3530 §4.2.3/9.3.4) and
//!   fetch-before-write for non-block-aligned writes.
//! * [`DropsyncEngine`] — the mobile auto-sync client: full-file upload on
//!   every change, with implicit batching whenever the slow uplink is
//!   still busy.
//!
//! All engines charge their real algorithmic work (hashing, chunking,
//! scanning, compression) to a [`Cost`](deltacfs_delta::Cost) accumulator
//! and their transfers to a [`Link`](deltacfs_net::Link), which is exactly
//! what Tables II and Figures 8–9 of the paper report.

#![warn(missing_docs)]

mod common;
mod dropbox;
mod dropsync;
mod nfs;
mod seafile;

pub use common::DirtyTracker;
pub use dropbox::{DropboxConfig, DropboxEngine};
pub use dropsync::{DropsyncConfig, DropsyncEngine};
pub use nfs::NfsEngine;
pub use seafile::{SeafileConfig, SeafileEngine};
