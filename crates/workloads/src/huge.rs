//! Sparse synthetic huge files for the hierarchical-delta tests/benches.
//!
//! The hierarchy work targets multi-GB files (VM images, databases —
//! paper §IV), but a test that *allocates* 10 GB to describe "a huge file
//! with three edits" is wasteful and flaky on small machines. A
//! [`HugeFile`] is instead a **virtual** byte string: base content is a
//! pure function of `(seed, offset)` computed on demand (a splitmix64
//! word stream), and mutations — a prepend that shifts everything, plus
//! non-overlapping overlay edits — are stored as deltas. Memory is
//! O(edit bytes), independent of the file length; callers materialize
//! only the ranges (or, in the 1 GiB benches, the single buffer) they
//! actually feed to the diff.
//!
//! The word-random base is deliberately incompressible and collision-free
//! enough that content-defined chunking resynchronizes immediately after
//! any edit — the structure the shingle tree exploits.

/// A deterministic, virtually-materialized huge file.
#[derive(Debug, Clone)]
pub struct HugeFile {
    seed: u64,
    base_len: u64,
    prepend: Vec<u8>,
    /// Overlay edits as `(logical offset, bytes)`, sorted, non-overlapping.
    edits: Vec<(u64, Vec<u8>)>,
}

/// splitmix64: the finalizer-quality mixer behind the base word stream.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl HugeFile {
    /// A virtual file of `base_len` seed-determined bytes. No allocation
    /// proportional to `base_len` happens here or in [`read_at`].
    ///
    /// [`read_at`]: HugeFile::read_at
    pub fn new(seed: u64, base_len: u64) -> Self {
        HugeFile {
            seed,
            base_len,
            prepend: Vec::new(),
            edits: Vec::new(),
        }
    }

    /// Total logical length (prepend + base).
    pub fn len(&self) -> u64 {
        self.prepend.len() as u64 + self.base_len
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Prepends `bytes`, shifting all existing content — the
    /// insertion-shift pattern that defeats same-offset matching.
    /// Existing edit offsets shift with the content they overlay.
    pub fn with_prepend(mut self, bytes: &[u8]) -> Self {
        for (off, _) in &mut self.edits {
            *off += bytes.len() as u64;
        }
        let mut prepend = bytes.to_vec();
        prepend.extend_from_slice(&self.prepend);
        self.prepend = prepend;
        self
    }

    /// Overlays `bytes` at logical `offset` (length unchanged).
    ///
    /// # Panics
    ///
    /// Panics if the edit runs past the end of the file or overlaps an
    /// existing edit — overlapping overlays have order-dependent meaning
    /// and are almost certainly a test-author mistake.
    pub fn with_edit(mut self, offset: u64, bytes: &[u8]) -> Self {
        assert!(
            offset + bytes.len() as u64 <= self.len(),
            "edit [{offset}, {}) past end {}",
            offset + bytes.len() as u64,
            self.len()
        );
        let end = offset + bytes.len() as u64;
        for (o, b) in &self.edits {
            let oe = o + b.len() as u64;
            assert!(end <= *o || offset >= oe, "edit [{offset}, {end}) overlaps [{o}, {oe})");
        }
        self.edits.push((offset, bytes.to_vec()));
        self.edits.sort_by_key(|(o, _)| *o);
        self
    }

    /// Total bytes covered by overlay edits plus the prepend — the
    /// "divergent bytes" a delta against the unedited base must carry.
    pub fn divergent_bytes(&self) -> u64 {
        self.prepend.len() as u64 + self.edits.iter().map(|(_, b)| b.len() as u64).sum::<u64>()
    }

    /// One byte of the un-edited stream at logical `offset`.
    fn raw_at(&self, offset: u64) -> u8 {
        let p = self.prepend.len() as u64;
        if offset < p {
            self.prepend[offset as usize]
        } else {
            let base = offset - p;
            let word = splitmix64(self.seed ^ (base / 8));
            (word >> (8 * (base % 8))) as u8
        }
    }

    /// Fills `buf` with the bytes at `[offset, offset + buf.len())`.
    /// Cost is O(`buf.len()` + intersecting edits); untouched pages are
    /// never materialized anywhere.
    ///
    /// # Panics
    ///
    /// Panics if the range runs past the end of the file.
    pub fn read_at(&self, offset: u64, buf: &mut [u8]) {
        assert!(
            offset + buf.len() as u64 <= self.len(),
            "read [{offset}, {}) past end {}",
            offset + buf.len() as u64,
            self.len()
        );
        for (i, out) in buf.iter_mut().enumerate() {
            *out = self.raw_at(offset + i as u64);
        }
        let end = offset + buf.len() as u64;
        for (eo, bytes) in &self.edits {
            let ee = eo + bytes.len() as u64;
            if *eo >= end || ee <= offset {
                continue;
            }
            let from = (*eo).max(offset);
            let to = ee.min(end);
            buf[(from - offset) as usize..(to - offset) as usize]
                .copy_from_slice(&bytes[(from - eo) as usize..(to - eo) as usize]);
        }
    }

    /// Materializes `[start, end)` into a fresh buffer.
    pub fn materialize_range(&self, start: u64, end: u64) -> Vec<u8> {
        let mut buf = vec![0u8; (end - start) as usize];
        self.read_at(start, &mut buf);
        buf
    }

    /// Materializes the whole file — for benches that must hand the diff
    /// a contiguous slice. Tests should prefer [`materialize_range`].
    ///
    /// [`materialize_range`]: HugeFile::materialize_range
    pub fn materialize(&self) -> Vec<u8> {
        self.materialize_range(0, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = HugeFile::new(9, 10_000).materialize();
        let b = HugeFile::new(9, 10_000).materialize();
        let c = HugeFile::new(10, 10_000).materialize();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 10_000);
    }

    #[test]
    fn read_at_matches_materialize() {
        let f = HugeFile::new(3, 5_000)
            .with_prepend(b"SHIFT-HEADER")
            .with_edit(100, b"edited-run-one")
            .with_edit(4_000, &[0xEE; 200]);
        let whole = f.materialize();
        assert_eq!(whole.len() as u64, f.len());
        for (start, len) in [(0u64, 64usize), (5, 1), (90, 40), (3_990, 300), (f.len() - 17, 17)] {
            let mut buf = vec![0u8; len];
            f.read_at(start, &mut buf);
            assert_eq!(
                buf,
                &whole[start as usize..start as usize + len],
                "range [{start}, +{len})"
            );
        }
    }

    #[test]
    fn edits_overlay_and_prepend_shifts() {
        let base = HugeFile::new(1, 1_000);
        let plain = base.materialize();
        let edited = base.clone().with_edit(500, b"XYZ");
        let out = edited.materialize();
        assert_eq!(&out[500..503], b"XYZ");
        assert_eq!(out[..500], plain[..500]);
        assert_eq!(out[503..], plain[503..]);
        assert_eq!(edited.divergent_bytes(), 3);

        // Prepend shifts both base content and prior edit offsets.
        let shifted = edited.with_prepend(b"0123456789");
        let sout = shifted.materialize();
        assert_eq!(&sout[..10], b"0123456789");
        assert_eq!(sout[10..], out[..]);
        assert_eq!(shifted.divergent_bytes(), 13);
    }

    #[test]
    fn gigantic_files_stay_sparse() {
        // 1 TiB virtual length: constructing it and reading a page near
        // the tail must be instant and allocation-bounded by the page.
        let f = HugeFile::new(77, 1 << 40).with_edit((1 << 40) - 4096, &[0xAB; 4096]);
        assert_eq!(f.len(), 1 << 40);
        let mut page = vec![0u8; 4096];
        f.read_at(f.len() - 4096, &mut page);
        assert!(page.iter().all(|&b| b == 0xAB));
        f.read_at(1 << 30, &mut page);
        // Word-random base: no long zero runs.
        assert!(page.iter().filter(|&&b| b == 0).count() < 200);
    }

    #[test]
    fn cdc_resynchronizes_after_an_edit() {
        // The content-defined structure the shingle tree relies on: cut
        // points downstream of an edit coincide with the unedited file's.
        use deltacfs_delta::cdc::{chunks, CdcParams};
        let old = HugeFile::new(5, 200_000).materialize();
        let new = HugeFile::new(5, 200_000)
            .with_edit(10_000, &[0x55; 64])
            .materialize();
        let params = CdcParams {
            min_size: 1024,
            mask_bits: 11,
            max_size: 16 << 10,
        };
        let mut cost = deltacfs_delta::Cost::new();
        let old_cuts: std::collections::HashSet<u64> = chunks(&old, &params, &mut cost)
            .iter()
            .map(|c| c.offset)
            .collect();
        let new_cuts: Vec<u64> = chunks(&new, &params, &mut cost)
            .iter()
            .map(|c| c.offset)
            .collect();
        let resynced = new_cuts
            .iter()
            .filter(|o| **o > 20_000 && old_cuts.contains(o))
            .count();
        let downstream = new_cuts.iter().filter(|o| **o > 20_000).count();
        assert_eq!(resynced, downstream, "cut points diverged downstream of the edit");
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_edits_panic() {
        let _ = HugeFile::new(0, 100)
            .with_edit(10, &[1; 10])
            .with_edit(15, &[2; 10]);
    }
}
