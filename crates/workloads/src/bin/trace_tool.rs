//! Export the built-in evaluation traces as JSON, or summarize a recorded
//! trace file.
//!
//! ```text
//! trace_tool export gedit --scale 0.2 > gedit.json
//! trace_tool info gedit.json
//! ```

use deltacfs_workloads::{
    AppendTrace, GeditTrace, RandomWriteTrace, RecordedTrace, Trace, TraceConfig, TraceOp,
    WeChatTrace, WordTrace,
};

fn builtin(name: &str, cfg: TraceConfig) -> Option<Box<dyn Trace>> {
    Some(match name {
        "append" => Box::new(AppendTrace::new(cfg)),
        "random" => Box::new(RandomWriteTrace::new(cfg)),
        "word" => Box::new(WordTrace::new(cfg)),
        "wechat" => Box::new(WeChatTrace::new(cfg)),
        "gedit" => Box::new(GeditTrace::new(cfg)),
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("export") => {
            let name = args
                .get(1)
                .unwrap_or_else(|| die("export needs a trace name"));
            let scale = args
                .iter()
                .position(|a| a == "--scale")
                .and_then(|i| args.get(i + 1))
                .and_then(|s| s.parse().ok())
                .unwrap_or(0.05);
            let trace = builtin(name, TraceConfig::scaled(scale))
                .unwrap_or_else(|| die(&format!("unknown trace {name}")));
            println!("{}", RecordedTrace::capture(trace.as_ref()).to_json());
        }
        Some("info") => {
            let path = args.get(1).unwrap_or_else(|| die("info needs a file"));
            let json = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(&format!("reading {path}: {e}")));
            let trace = RecordedTrace::from_json(&json)
                .unwrap_or_else(|e| die(&format!("parsing {path}: {e}")));
            let ops = trace.ops();
            let written: u64 = ops
                .iter()
                .map(|o| match &o.op {
                    TraceOp::Write { data, .. } => data.len() as u64,
                    _ => 0,
                })
                .sum();
            println!("{}", trace.meta().description);
            println!("operations:    {}", ops.len());
            println!("bytes written: {written}");
            println!(
                "duration:      {:.1} s",
                ops.last().map(|o| o.at_ms as f64 / 1000.0).unwrap_or(0.0)
            );
        }
        _ => die(
            "usage: trace_tool export <append|random|word|wechat|gedit> [--scale F] | info <file>",
        ),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("trace_tool: {msg}");
    std::process::exit(2);
}
