//! # deltacfs-workloads
//!
//! The workloads of the DeltaCFS evaluation (§IV-A) and the replay driver
//! that feeds them through any [`SyncEngine`](deltacfs_core::SyncEngine):
//!
//! * [`AppendTrace`] — 40 append operations of ~800 KB each, 15 s apart;
//!   the file grows from 0 to 32 MB;
//! * [`RandomWriteTrace`] — a 20 MB file receiving 40 writes of 1010
//!   bytes at random offsets, 15 s apart;
//! * [`WordTrace`] — a Microsoft Word editing session: 61 saves of a
//!   document growing from 12.1 MB to 16.7 MB, each save being the
//!   transactional `rename f t0; create-write t1; rename t1 f; delete t0`
//!   sequence of Fig. 3;
//! * [`WeChatTrace`] — an SQLite chat-history database (131 → 137 MB,
//!   373 modifications) updated through journaled page writes:
//!   `create-write f-journal; write f; truncate f-journal 0` (Fig. 3);
//! * [`GeditTrace`] — gedit's `create-write tmp; link f f~; rename tmp f`
//!   save pattern;
//! * [`filebench`] — Fileserver/Varmail/Webserver op-mix personalities
//!   for the local-throughput micro-benchmarks (Table III).
//!
//! Every trace is deterministic (seeded) and carries a
//! [`scale`](TraceConfig::scale) knob: `1.0` reproduces the paper's sizes,
//! smaller values shrink files and op counts proportionally so the full
//! evaluation runs quickly on small machines. Content is generated with a
//! realistic compressibility mix (chat text compresses; random blobs do
//! not), because the Dropbox baseline's compression savings depend on it.

#![warn(missing_docs)]

pub mod filebench;
mod gen;
mod huge;
mod json;
mod replay;
mod traces;

pub use gen::ContentGen;
pub use huge::HugeFile;
pub use json::{RecordedTrace, TraceJsonError};
pub use replay::{replay, ReplayReport, TAIL_MS};
pub use traces::{
    AppendTrace, DesktopTrace, GeditTrace, RandomWriteTrace, TimedOp, Trace, TraceConfig,
    TraceMeta, TraceOp, WeChatTrace, WordTrace,
};
