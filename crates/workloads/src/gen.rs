//! Deterministic content generation with controllable compressibility.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small vocabulary for text-like (compressible) content.
const WORDS: &[&str] = &[
    "the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog", "hello", "world", "meeting",
    "tomorrow", "lunch", "thanks", "see", "you", "later", "report", "draft", "chapter", "figure",
    "table", "result", "system", "design", "data", "sync", "cloud", "storage",
];

/// Deterministic generator for workload file content.
///
/// Two kinds of bytes are produced: *text* (word salad, compresses
/// roughly 2–3×, standing in for documents and chat messages) and *noise*
/// (uniform random bytes, incompressible, standing in for images and
/// already-compressed blobs).
#[derive(Debug)]
pub struct ContentGen {
    rng: StdRng,
}

impl ContentGen {
    /// Creates a generator from a seed; identical seeds yield identical
    /// byte streams.
    pub fn new(seed: u64) -> Self {
        ContentGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// `len` bytes of compressible text.
    pub fn text(&mut self, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len + 16);
        while out.len() < len {
            let word = WORDS[self.rng.gen_range(0..WORDS.len())];
            out.extend_from_slice(word.as_bytes());
            out.push(b' ');
        }
        out.truncate(len);
        out
    }

    /// `len` bytes of incompressible noise.
    pub fn noise(&mut self, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.rng.fill(&mut out[..]);
        out
    }

    /// `len` bytes that are `text_fraction` text and the rest noise, in
    /// interleaved runs — the mix found in real document formats.
    pub fn mixed(&mut self, len: usize, text_fraction: f64) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            let run = self.rng.gen_range(256..4096).min(len - out.len());
            if self.rng.gen_bool(text_fraction) {
                out.extend_from_slice(&self.text(run));
            } else {
                out.extend_from_slice(&self.noise(run));
            }
        }
        out
    }

    /// A random value in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            self.rng.gen_range(0..bound)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = ContentGen::new(7).text(1000);
        let b = ContentGen::new(7).text(1000);
        let c = ContentGen::new(8).text(1000);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn text_compresses_noise_does_not() {
        let mut g = ContentGen::new(1);
        let text = g.text(50_000);
        let noise = g.noise(50_000);
        let mut cost = deltacfs_delta::Cost::new();
        let ct = deltacfs_delta::compress::compressed_size(&text, &mut cost);
        let cn = deltacfs_delta::compress::compressed_size(&noise, &mut cost);
        assert!(ct * 2 < text.len() as u64, "text compressed to {ct}");
        assert!(cn > noise.len() as u64 * 9 / 10, "noise compressed to {cn}");
    }

    #[test]
    fn exact_lengths() {
        let mut g = ContentGen::new(2);
        assert_eq!(g.text(123).len(), 123);
        assert_eq!(g.noise(77).len(), 77);
        assert_eq!(g.mixed(10_000, 0.5).len(), 10_000);
        assert_eq!(g.text(0).len(), 0);
    }
}
