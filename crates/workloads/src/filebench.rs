//! filebench-style micro-benchmark personalities (paper Table III).
//!
//! The paper runs filebench's Fileserver, Varmail and Webserver mixes on
//! native ext4, loopback FUSE, DeltaCFS, and DeltaCFS-with-checksums,
//! reporting MB/s. These personalities reproduce the canonical op mixes
//! against a [`Vfs`] whose observer does the interception work inline, so
//! real wall-clock throughput reflects the interception overhead.

use std::time::{Duration, Instant};

use deltacfs_vfs::Vfs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which canonical filebench mix to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Personality {
    /// Mixed create/append/read/delete on medium files (write-heavy).
    Fileserver,
    /// Small mail files: create, write, fsync, read, delete.
    Varmail,
    /// Read-mostly: whole-file reads plus a small log append.
    Webserver,
}

impl Personality {
    /// The personality's display name.
    pub fn name(&self) -> &'static str {
        match self {
            Personality::Fileserver => "Fileserver",
            Personality::Varmail => "Varmail",
            Personality::Webserver => "Webserver",
        }
    }

    /// All three personalities, in the paper's row order.
    pub fn all() -> [Personality; 3] {
        [
            Personality::Fileserver,
            Personality::Varmail,
            Personality::Webserver,
        ]
    }
}

/// Parameters for a micro-benchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilebenchConfig {
    /// Files pre-created in the working set.
    pub files: usize,
    /// Nominal file size in bytes.
    pub file_size: usize,
    /// Operations to execute.
    pub ops: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FilebenchConfig {
    fn default() -> Self {
        FilebenchConfig {
            files: 200,
            file_size: 128 * 1024,
            ops: 2_000,
            seed: 7,
        }
    }
}

/// Result of a run: bytes moved and the wall-clock time it took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilebenchResult {
    /// Bytes read plus bytes written by the workload.
    pub bytes_processed: u64,
    /// Real elapsed time.
    pub elapsed: Duration,
}

impl FilebenchResult {
    /// Throughput in MB/s.
    pub fn mb_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            return f64::INFINITY;
        }
        self.bytes_processed as f64 / (1024.0 * 1024.0) / secs
    }
}

/// Runs `personality` against `fs` (whose observer, if any, does its
/// interception work inline) and measures real throughput.
///
/// # Example
///
/// ```
/// use deltacfs_vfs::Vfs;
/// use deltacfs_workloads::filebench::{run, FilebenchConfig, Personality};
///
/// let mut fs = Vfs::new();
/// let cfg = FilebenchConfig { files: 10, file_size: 8192, ops: 50, seed: 1 };
/// let result = run(Personality::Webserver, &cfg, &mut fs);
/// assert!(result.mb_per_sec() > 0.0);
/// ```
///
/// # Panics
///
/// Panics on file-system errors; the generated op stream is always valid.
pub fn run(personality: Personality, cfg: &FilebenchConfig, fs: &mut Vfs) -> FilebenchResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    fs.mkdir_all("/bench").unwrap();

    let file_size = match personality {
        Personality::Fileserver => cfg.file_size,
        Personality::Varmail => 16 * 1024,
        Personality::Webserver => cfg.file_size,
    };
    // Pre-create the working set.
    let mut payload = vec![0u8; file_size];
    rng.fill(&mut payload[..]);
    for i in 0..cfg.files {
        let path = format!("/bench/f{i:05}");
        fs.create(&path).unwrap();
        fs.write(&path, 0, &payload).unwrap();
    }
    if matches!(personality, Personality::Webserver) {
        fs.create("/bench/log").unwrap();
    }

    let mut bytes: u64 = 0;
    let mut next_new = cfg.files;
    let append = vec![1u8; 16 * 1024];
    let start = Instant::now();
    for _ in 0..cfg.ops {
        match personality {
            Personality::Fileserver => {
                // Canonical fileserver flow: create+write a new file,
                // append to a random file, read a random file, delete one.
                match rng.gen_range(0..4u8) {
                    0 => {
                        let path = format!("/bench/f{next_new:05}");
                        next_new += 1;
                        fs.create(&path).unwrap();
                        fs.write(&path, 0, &payload).unwrap();
                        fs.close_path(&path).unwrap();
                        bytes += payload.len() as u64;
                    }
                    1 => {
                        let path = format!("/bench/f{:05}", rng.gen_range(0..cfg.files));
                        let size = fs.metadata(&path).map(|m| m.size).unwrap_or(0);
                        fs.write(&path, size, &append).unwrap();
                        bytes += append.len() as u64;
                    }
                    2 => {
                        let path = format!("/bench/f{:05}", rng.gen_range(0..cfg.files));
                        bytes += fs.read_all(&path).unwrap().len() as u64;
                    }
                    _ => {
                        // Overwrite in place (keeps the working set stable).
                        let path = format!("/bench/f{:05}", rng.gen_range(0..cfg.files));
                        fs.write(&path, 0, &payload).unwrap();
                        bytes += payload.len() as u64;
                    }
                }
            }
            Personality::Varmail => {
                let path = format!("/bench/mail{next_new:05}");
                next_new += 1;
                fs.create(&path).unwrap();
                fs.write(&path, 0, &payload).unwrap();
                fs.fsync(&path).unwrap();
                bytes += payload.len() as u64;
                bytes += fs.read_all(&path).unwrap().len() as u64;
                fs.unlink(&path).unwrap();
            }
            Personality::Webserver => {
                for _ in 0..10 {
                    let path = format!("/bench/f{:05}", rng.gen_range(0..cfg.files));
                    bytes += fs.read_all(&path).unwrap().len() as u64;
                }
                let size = fs.metadata("/bench/log").map(|m| m.size).unwrap_or(0);
                fs.write("/bench/log", size, &append[..512]).unwrap();
                bytes += 512;
            }
        }
    }
    FilebenchResult {
        bytes_processed: bytes,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FilebenchConfig {
        FilebenchConfig {
            files: 10,
            file_size: 8 * 1024,
            ops: 50,
            seed: 1,
        }
    }

    #[test]
    fn all_personalities_run_and_move_bytes() {
        for p in Personality::all() {
            let mut fs = Vfs::new();
            let r = run(p, &tiny(), &mut fs);
            assert!(r.bytes_processed > 0, "{}", p.name());
            assert!(r.mb_per_sec() > 0.0);
        }
    }

    #[test]
    fn webserver_is_read_dominated() {
        let mut fs = Vfs::new();
        fs.reset_stats();
        run(Personality::Webserver, &tiny(), &mut fs);
        let stats = fs.stats();
        assert!(stats.bytes_read > stats.bytes_written * 5);
    }

    #[test]
    fn fileserver_is_write_heavy() {
        let mut fs = Vfs::new();
        run(Personality::Fileserver, &tiny(), &mut fs);
        let stats = fs.stats();
        assert!(stats.bytes_written > 0);
    }

    #[test]
    fn varmail_cleans_up_after_itself() {
        let mut fs = Vfs::new();
        run(Personality::Varmail, &tiny(), &mut fs);
        // Only the pre-created working set remains.
        let files = fs.walk_files("/bench").unwrap();
        assert_eq!(files.len(), 10);
    }
}
