//! Trace serialization: export any [`Trace`] to JSON and replay recorded
//! traces back.
//!
//! The paper's authors published their collected Word/WeChat traces
//! alongside the prototype; this module provides the equivalent
//! interchange point — a recorded trace is a JSON array of timed
//! operations with hex-encoded payloads, loadable with
//! [`RecordedTrace::from_json`] and replayable through the standard
//! driver.

use serde::{Deserialize, Serialize};

use crate::traces::{TimedOp, Trace, TraceMeta, TraceOp};

/// Serializable twin of [`TraceOp`] with hex payloads.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "snake_case")]
enum JsonOp {
    Create {
        path: String,
    },
    Mkdir {
        path: String,
    },
    Write {
        path: String,
        offset: u64,
        data_hex: String,
    },
    Truncate {
        path: String,
        size: u64,
    },
    Rename {
        src: String,
        dst: String,
    },
    Link {
        src: String,
        dst: String,
    },
    Unlink {
        path: String,
    },
    Close {
        path: String,
    },
    Fsync {
        path: String,
    },
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct JsonTimedOp {
    at_ms: u64,
    #[serde(flatten)]
    op: JsonOp,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct JsonTrace {
    name: String,
    description: String,
    ops: Vec<JsonTimedOp>,
}

fn to_hex(data: &[u8]) -> String {
    use std::fmt::Write;
    let mut s = String::with_capacity(data.len() * 2);
    for b in data {
        write!(s, "{b:02x}").expect("writing to String cannot fail");
    }
    s
}

fn from_hex(s: &str) -> Result<Vec<u8>, TraceJsonError> {
    if !s.len().is_multiple_of(2) {
        return Err(TraceJsonError::BadHex);
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).map_err(|_| TraceJsonError::BadHex))
        .collect()
}

/// Errors loading a recorded trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceJsonError {
    /// The JSON structure did not parse.
    BadJson(String),
    /// A `data_hex` field was not valid hex.
    BadHex,
    /// Operations were not sorted by timestamp.
    Unsorted,
}

impl std::fmt::Display for TraceJsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceJsonError::BadJson(e) => write!(f, "invalid trace json: {e}"),
            TraceJsonError::BadHex => write!(f, "invalid hex payload in trace"),
            TraceJsonError::Unsorted => write!(f, "trace operations are not in time order"),
        }
    }
}

impl std::error::Error for TraceJsonError {}

/// A trace loaded from (or convertible to) JSON.
#[derive(Debug, Clone)]
pub struct RecordedTrace {
    name: String,
    description: String,
    ops: Vec<TimedOp>,
}

impl RecordedTrace {
    /// Records every operation of `trace` into memory.
    pub fn capture(trace: &dyn Trace) -> Self {
        let meta = trace.meta();
        let mut ops = Vec::new();
        trace.generate(&mut |op| ops.push(op));
        RecordedTrace {
            name: meta.name.to_string(),
            description: meta.description,
            ops,
        }
    }

    /// The recorded operations.
    pub fn ops(&self) -> &[TimedOp] {
        &self.ops
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        let json = JsonTrace {
            name: self.name.clone(),
            description: self.description.clone(),
            ops: self
                .ops
                .iter()
                .map(|t| JsonTimedOp {
                    at_ms: t.at_ms,
                    op: match &t.op {
                        TraceOp::Create(p) => JsonOp::Create { path: p.clone() },
                        TraceOp::Mkdir(p) => JsonOp::Mkdir { path: p.clone() },
                        TraceOp::Write { path, offset, data } => JsonOp::Write {
                            path: path.clone(),
                            offset: *offset,
                            data_hex: to_hex(data),
                        },
                        TraceOp::Truncate { path, size } => JsonOp::Truncate {
                            path: path.clone(),
                            size: *size,
                        },
                        TraceOp::Rename { src, dst } => JsonOp::Rename {
                            src: src.clone(),
                            dst: dst.clone(),
                        },
                        TraceOp::Link { src, dst } => JsonOp::Link {
                            src: src.clone(),
                            dst: dst.clone(),
                        },
                        TraceOp::Unlink(p) => JsonOp::Unlink { path: p.clone() },
                        TraceOp::Close(p) => JsonOp::Close { path: p.clone() },
                        TraceOp::Fsync(p) => JsonOp::Fsync { path: p.clone() },
                    },
                })
                .collect(),
        };
        serde_json::to_string_pretty(&json).expect("trace serialization cannot fail")
    }

    /// Parses a trace from JSON.
    ///
    /// # Errors
    ///
    /// [`TraceJsonError`] on malformed JSON, invalid hex, or out-of-order
    /// timestamps.
    pub fn from_json(json: &str) -> Result<Self, TraceJsonError> {
        let parsed: JsonTrace =
            serde_json::from_str(json).map_err(|e| TraceJsonError::BadJson(e.to_string()))?;
        let mut ops = Vec::with_capacity(parsed.ops.len());
        let mut last = 0u64;
        for t in parsed.ops {
            if t.at_ms < last {
                return Err(TraceJsonError::Unsorted);
            }
            last = t.at_ms;
            let op = match t.op {
                JsonOp::Create { path } => TraceOp::Create(path),
                JsonOp::Mkdir { path } => TraceOp::Mkdir(path),
                JsonOp::Write {
                    path,
                    offset,
                    data_hex,
                } => TraceOp::Write {
                    path,
                    offset,
                    data: from_hex(&data_hex)?,
                },
                JsonOp::Truncate { path, size } => TraceOp::Truncate { path, size },
                JsonOp::Rename { src, dst } => TraceOp::Rename { src, dst },
                JsonOp::Link { src, dst } => TraceOp::Link { src, dst },
                JsonOp::Unlink { path } => TraceOp::Unlink(path),
                JsonOp::Close { path } => TraceOp::Close(path),
                JsonOp::Fsync { path } => TraceOp::Fsync(path),
            };
            ops.push(TimedOp { at_ms: t.at_ms, op });
        }
        Ok(RecordedTrace {
            name: parsed.name,
            description: parsed.description,
            ops,
        })
    }
}

impl Trace for RecordedTrace {
    fn meta(&self) -> TraceMeta {
        TraceMeta {
            // Leak-free static name is impossible for arbitrary strings;
            // recorded traces identify themselves as such and carry the
            // original name in the description.
            name: "recorded",
            description: format!("{} ({})", self.description, self.name),
        }
    }

    fn generate(&self, sink: &mut dyn FnMut(TimedOp)) {
        for op in &self.ops {
            sink(op.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traces::{GeditTrace, TraceConfig};

    #[test]
    fn capture_export_import_roundtrip() {
        let original = GeditTrace::new(TraceConfig::scaled(0.2));
        let captured = RecordedTrace::capture(&original);
        let json = captured.to_json();
        let loaded = RecordedTrace::from_json(&json).unwrap();
        assert_eq!(loaded.ops(), captured.ops());
    }

    #[test]
    fn replaying_recorded_equals_replaying_original() {
        use deltacfs_core::{DeltaCfsConfig, DeltaCfsSystem, SyncEngine};
        use deltacfs_net::{LinkSpec, SimClock};
        use deltacfs_vfs::Vfs;

        let original = GeditTrace::new(TraceConfig::scaled(0.2));
        let recorded = RecordedTrace::capture(&original);

        let run = |trace: &dyn Trace| -> (u64, Vec<u8>) {
            let clock = SimClock::new();
            let mut sys = DeltaCfsSystem::new(DeltaCfsConfig::new(), clock.clone(), LinkSpec::pc());
            let mut fs = Vfs::new();
            crate::replay(trace, &mut fs, &mut sys, &clock, 100);
            (
                sys.report().traffic.bytes_up,
                fs.peek_all("/notes.txt").unwrap(),
            )
        };
        let (up1, content1) = run(&original);
        let (up2, content2) = run(&recorded);
        assert_eq!(up1, up2);
        assert_eq!(content1, content2);
    }

    #[test]
    fn hex_roundtrip_and_errors() {
        assert_eq!(from_hex(&to_hex(b"\x00\xff\x42")).unwrap(), b"\x00\xff\x42");
        assert_eq!(from_hex("abc"), Err(TraceJsonError::BadHex));
        assert_eq!(from_hex("zz"), Err(TraceJsonError::BadHex));
    }

    #[test]
    fn unsorted_traces_are_rejected() {
        let json = r#"{
            "name": "x", "description": "d",
            "ops": [
                {"at_ms": 10, "op": "create", "path": "/a"},
                {"at_ms": 5, "op": "create", "path": "/b"}
            ]
        }"#;
        assert_eq!(
            RecordedTrace::from_json(json).unwrap_err(),
            TraceJsonError::Unsorted
        );
    }

    #[test]
    fn malformed_json_is_reported() {
        assert!(matches!(
            RecordedTrace::from_json("{nope"),
            Err(TraceJsonError::BadJson(_))
        ));
    }
}
