//! The trace-replay driver: applies a [`Trace`] to a [`Vfs`] and feeds
//! the intercepted events to a [`SyncEngine`] in real (simulated) time.
//!
//! Interception is synchronous (as under FUSE): every operation's event is
//! delivered to the engine *before* the next operation executes, and the
//! engine's `tick` runs on a regular cadence so debounce windows, the
//! relation-table timeout, and the sync-queue upload delay all fire at
//! the right simulated moments.

use deltacfs_core::SyncEngine;
use deltacfs_net::SimClock;
use deltacfs_vfs::Vfs;

use crate::traces::{Trace, TraceOp};

/// Extra simulated time appended after the last operation, so every
/// debounce/upload window drains naturally before `finish`.
pub const TAIL_MS: u64 = 30_000;

/// Outcome of a replay run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Operations applied.
    pub ops: u64,
    /// Application-level update volume: bytes written by the workload
    /// (the denominator of the paper's TUE metric, Fig. 2).
    pub update_bytes: u64,
    /// Total simulated duration, milliseconds.
    pub duration_ms: u64,
}

/// Replays `trace` against `fs`, driving `engine`.
///
/// `tick_ms` is the cadence at which the engine's `tick` runs between
/// operations (100 ms reproduces an inotify-ish polling granularity).
///
/// # Example
///
/// ```
/// use deltacfs_core::{DeltaCfsConfig, DeltaCfsSystem};
/// use deltacfs_net::{LinkSpec, SimClock};
/// use deltacfs_vfs::Vfs;
/// use deltacfs_workloads::{replay, GeditTrace, TraceConfig};
///
/// let clock = SimClock::new();
/// let mut engine = DeltaCfsSystem::new(DeltaCfsConfig::new(), clock.clone(), LinkSpec::pc());
/// let mut fs = Vfs::new();
/// let trace = GeditTrace::new(TraceConfig::scaled(0.2));
/// let report = replay(&trace, &mut fs, &mut engine, &clock, 100);
/// assert!(report.update_bytes > 0);
/// ```
///
/// # Panics
///
/// Panics if the trace performs an operation the file system rejects —
/// traces are generated and must be internally consistent.
pub fn replay(
    trace: &dyn Trace,
    fs: &mut Vfs,
    engine: &mut dyn SyncEngine,
    clock: &SimClock,
    tick_ms: u64,
) -> ReplayReport {
    fs.enable_event_log();
    let start = clock.now();
    let mut report = ReplayReport::default();

    let mut sink = |timed: crate::traces::TimedOp| {
        // Advance simulated time to the op's timestamp, ticking the
        // engine along the way.
        let target = start.plus_millis(timed.at_ms);
        while clock.now() < target {
            let step = tick_ms.min(target.since(clock.now()));
            clock.advance(step);
            engine.tick(fs);
        }
        apply_op(&timed.op, fs, &mut report);
        for event in fs.drain_events() {
            engine.on_event(&event, fs);
        }
        report.ops += 1;
    };
    trace.generate(&mut sink);

    // Drain the tail: give every delay window a chance to fire.
    let end = clock.now().plus_millis(TAIL_MS);
    while clock.now() < end {
        clock.advance(tick_ms.min(end.since(clock.now())));
        engine.tick(fs);
    }
    engine.finish(fs);
    report.duration_ms = clock.now().since(start);
    report
}

fn apply_op(op: &TraceOp, fs: &mut Vfs, report: &mut ReplayReport) {
    match op {
        TraceOp::Create(path) => fs.create(path).expect("trace create"),
        TraceOp::Mkdir(path) => fs.mkdir_all(path).expect("trace mkdir"),
        TraceOp::Write { path, offset, data } => {
            fs.write(path, *offset, data).expect("trace write");
            report.update_bytes += data.len() as u64;
        }
        TraceOp::Truncate { path, size } => fs.truncate(path, *size).expect("trace truncate"),
        TraceOp::Rename { src, dst } => fs.rename(src, dst).expect("trace rename"),
        TraceOp::Link { src, dst } => fs.link(src, dst).expect("trace link"),
        TraceOp::Unlink(path) => fs.unlink(path).expect("trace unlink"),
        TraceOp::Close(path) => fs.close_path(path).expect("trace close"),
        TraceOp::Fsync(path) => fs.fsync(path).expect("trace fsync"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traces::{AppendTrace, TraceConfig, WordTrace};
    use deltacfs_core::{DeltaCfsConfig, DeltaCfsSystem};
    use deltacfs_net::LinkSpec;

    #[test]
    fn append_trace_syncs_fully_through_deltacfs() {
        let clock = SimClock::new();
        let mut engine = DeltaCfsSystem::new(DeltaCfsConfig::new(), clock.clone(), LinkSpec::pc());
        let mut fs = Vfs::new();
        let trace = AppendTrace::new(TraceConfig::scaled(0.02));
        let report = replay(&trace, &mut fs, &mut engine, &clock, 100);
        assert!(report.ops > 40);
        assert!(report.update_bytes > 0);
        // The cloud holds exactly the final local content.
        let local = fs.peek_all("/append.dat").unwrap();
        assert_eq!(engine.server().file("/append.dat"), Some(&local[..]));
        // RPC shipping: upload ≈ update size (plus headers), no blow-up.
        let up = engine.report().traffic.bytes_up;
        assert!(up >= report.update_bytes);
        assert!(up < report.update_bytes * 2);
    }

    #[test]
    fn word_trace_converges_and_uses_delta() {
        let clock = SimClock::new();
        let mut engine = DeltaCfsSystem::new(DeltaCfsConfig::new(), clock.clone(), LinkSpec::pc());
        let mut fs = Vfs::new();
        let trace = WordTrace::new(TraceConfig::scaled(0.02));
        let report = replay(&trace, &mut fs, &mut engine, &clock, 100);
        let local = fs.peek_all("/doc.docx").unwrap();
        assert_eq!(engine.server().file("/doc.docx"), Some(&local[..]));
        // Transactional saves rewrote the whole document every time, but
        // the upload is far below the total written volume.
        let up = engine.report().traffic.bytes_up;
        assert!(
            up < report.update_bytes / 2,
            "uploaded {up} of {} written",
            report.update_bytes
        );
        // The triggered deltas used bitwise comparison, never MD5.
        assert_eq!(engine.report().client_cost.bytes_strong_hashed, 0);
        // Temp files never reached the cloud.
        assert!(engine.server().file("/doc.tmp0").is_none());
        assert!(engine.server().file("/doc.tmp1").is_none());
    }

    #[test]
    fn simulated_duration_covers_trace_plus_tail() {
        let clock = SimClock::new();
        let mut engine = DeltaCfsSystem::new(DeltaCfsConfig::new(), clock.clone(), LinkSpec::pc());
        let mut fs = Vfs::new();
        let trace = AppendTrace::new(TraceConfig::scaled(0.01));
        let report = replay(&trace, &mut fs, &mut engine, &clock, 100);
        // 40 appends at 15 s intervals plus the tail.
        assert!(report.duration_ms >= 40 * 15_000 + TAIL_MS);
    }
}
