//! The evaluation traces (paper §IV-A, Fig. 3).

use crate::gen::ContentGen;

/// One file operation of a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// Create an empty file.
    Create(String),
    /// Create a directory.
    Mkdir(String),
    /// Write bytes at an offset.
    Write {
        /// Target path.
        path: String,
        /// Byte offset.
        offset: u64,
        /// Data to write.
        data: Vec<u8>,
    },
    /// Truncate to a size.
    Truncate {
        /// Target path.
        path: String,
        /// New size.
        size: u64,
    },
    /// Rename a file.
    Rename {
        /// Old path.
        src: String,
        /// New path.
        dst: String,
    },
    /// Hard-link a file.
    Link {
        /// Existing path.
        src: String,
        /// New link.
        dst: String,
    },
    /// Remove a file.
    Unlink(String),
    /// Close a file (emits the close event sync engines pack on).
    Close(String),
    /// Fsync a file.
    Fsync(String),
}

/// A trace operation with its simulated timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedOp {
    /// Milliseconds since trace start.
    pub at_ms: u64,
    /// The operation.
    pub op: TraceOp,
}

/// Descriptive metadata about a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMeta {
    /// Short identifier ("append", "word", ...).
    pub name: &'static str,
    /// Human-readable description with the key parameters.
    pub description: String,
}

/// A deterministic, replayable workload.
pub trait Trace {
    /// Descriptive metadata.
    fn meta(&self) -> TraceMeta;

    /// Produces the operations in timestamp order.
    fn generate(&self, sink: &mut dyn FnMut(TimedOp));
}

/// Shared trace knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Size/length multiplier: `1.0` reproduces the paper's parameters;
    /// smaller values shrink files and modification counts proportionally
    /// (ratios between engines are preserved — every engine replays the
    /// identical scaled trace).
    pub scale: f64,
    /// RNG seed for content and offsets.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            scale: 1.0,
            seed: 42,
        }
    }
}

impl TraceConfig {
    /// A scaled configuration with the default seed.
    pub fn scaled(scale: f64) -> Self {
        TraceConfig {
            scale,
            ..Self::default()
        }
    }

    fn size(&self, bytes: usize) -> usize {
        ((bytes as f64 * self.scale) as usize).max(1)
    }

    fn count(&self, n: usize) -> usize {
        ((n as f64 * self.scale).round() as usize).max(2)
    }
}

/// Emits a large write as a sequence of 1 MB chunk writes (applications
/// write through bounded buffers, and the interception layer sees the
/// chunked stream).
fn write_chunked(sink: &mut dyn FnMut(TimedOp), at_ms: u64, path: &str, offset: u64, data: &[u8]) {
    const CHUNK: usize = 1024 * 1024;
    let mut pos = 0usize;
    while pos < data.len() {
        let end = (pos + CHUNK).min(data.len());
        sink(TimedOp {
            at_ms,
            op: TraceOp::Write {
                path: path.to_string(),
                offset: offset + pos as u64,
                data: data[pos..end].to_vec(),
            },
        });
        pos = end;
    }
}

/// The *append write* artificial trace: 40 appends of ~800 KB at 15 s
/// intervals; the file ends at 32 MB (§IV-A).
#[derive(Debug, Clone)]
pub struct AppendTrace {
    cfg: TraceConfig,
    writes: usize,
    write_size: usize,
    interval_ms: u64,
    path: String,
}

impl AppendTrace {
    /// The paper's parameters at the given scale.
    pub fn new(cfg: TraceConfig) -> Self {
        AppendTrace {
            writes: 40,
            write_size: cfg.size(800 * 1024),
            interval_ms: 15_000,
            path: "/append.dat".to_string(),
            cfg,
        }
    }
}

impl Trace for AppendTrace {
    fn meta(&self) -> TraceMeta {
        TraceMeta {
            name: "append",
            description: format!(
                "{} appends of {} KB every {} s",
                self.writes,
                self.write_size / 1024,
                self.interval_ms / 1000
            ),
        }
    }

    fn generate(&self, sink: &mut dyn FnMut(TimedOp)) {
        let mut gen = ContentGen::new(self.cfg.seed);
        sink(TimedOp {
            at_ms: 0,
            op: TraceOp::Create(self.path.clone()),
        });
        let mut size = 0u64;
        for i in 0..self.writes {
            let at = (i as u64 + 1) * self.interval_ms;
            let data = gen.mixed(self.write_size, 0.5);
            sink(TimedOp {
                at_ms: at,
                op: TraceOp::Write {
                    path: self.path.clone(),
                    offset: size,
                    data: data.clone(),
                },
            });
            size += data.len() as u64;
            sink(TimedOp {
                at_ms: at + 1,
                op: TraceOp::Fsync(self.path.clone()),
            });
        }
    }
}

/// The *random write* artificial trace: a 20 MB file receiving 40 writes
/// of 1010 bytes at random offsets, 15 s apart (§IV-A).
#[derive(Debug, Clone)]
pub struct RandomWriteTrace {
    cfg: TraceConfig,
    file_size: usize,
    writes: usize,
    write_size: usize,
    interval_ms: u64,
    path: String,
}

impl RandomWriteTrace {
    /// The paper's parameters at the given scale.
    pub fn new(cfg: TraceConfig) -> Self {
        RandomWriteTrace {
            file_size: cfg.size(20 * 1024 * 1024),
            writes: 40,
            write_size: 1010,
            interval_ms: 15_000,
            path: "/random.dat".to_string(),
            cfg,
        }
    }
}

impl Trace for RandomWriteTrace {
    fn meta(&self) -> TraceMeta {
        TraceMeta {
            name: "random",
            description: format!(
                "{} writes of {} B into a {} MB file every {} s",
                self.writes,
                self.write_size,
                self.file_size / (1024 * 1024),
                self.interval_ms / 1000
            ),
        }
    }

    fn generate(&self, sink: &mut dyn FnMut(TimedOp)) {
        let mut gen = ContentGen::new(self.cfg.seed);
        sink(TimedOp {
            at_ms: 0,
            op: TraceOp::Create(self.path.clone()),
        });
        let initial = gen.mixed(self.file_size, 0.4);
        write_chunked(sink, 1, &self.path, 0, &initial);
        sink(TimedOp {
            at_ms: 2,
            op: TraceOp::Close(self.path.clone()),
        });
        for i in 0..self.writes {
            let at = (i as u64 + 1) * self.interval_ms;
            let offset = gen.index(self.file_size - self.write_size) as u64;
            sink(TimedOp {
                at_ms: at,
                op: TraceOp::Write {
                    path: self.path.clone(),
                    offset,
                    data: gen.noise(self.write_size),
                },
            });
        }
    }
}

/// The Microsoft Word editing trace: 61 transactional saves of a document
/// growing from 12.1 MB to 16.7 MB (§IV-A, Fig. 3).
#[derive(Debug, Clone)]
pub struct WordTrace {
    cfg: TraceConfig,
    saves: usize,
    initial_size: usize,
    final_size: usize,
    interval_ms: u64,
}

impl WordTrace {
    /// The paper's parameters at the given scale.
    pub fn new(cfg: TraceConfig) -> Self {
        WordTrace {
            saves: cfg.count(61),
            initial_size: cfg.size((12.1 * 1024.0 * 1024.0) as usize),
            final_size: cfg.size((16.7 * 1024.0 * 1024.0) as usize),
            interval_ms: 10_000,
            cfg,
        }
    }

    /// A deliberately small instance (the 12 MB / 23-save document of the
    /// paper's Fig. 1 motivation experiment).
    pub fn motivation(cfg: TraceConfig) -> Self {
        WordTrace {
            saves: cfg.count(23),
            initial_size: cfg.size(12 * 1024 * 1024),
            final_size: cfg.size(12 * 1024 * 1024 + 23 * 64 * 1024),
            interval_ms: 10_000,
            cfg,
        }
    }
}

impl Trace for WordTrace {
    fn meta(&self) -> TraceMeta {
        TraceMeta {
            name: "word",
            description: format!(
                "{} transactional saves, {:.1} MB -> {:.1} MB",
                self.saves,
                self.initial_size as f64 / (1024.0 * 1024.0),
                self.final_size as f64 / (1024.0 * 1024.0)
            ),
        }
    }

    fn generate(&self, sink: &mut dyn FnMut(TimedOp)) {
        let mut gen = ContentGen::new(self.cfg.seed);
        let f = "/doc.docx".to_string();
        let mut doc = gen.mixed(self.initial_size, 0.7);

        // Initial version written directly.
        sink(TimedOp {
            at_ms: 0,
            op: TraceOp::Create(f.clone()),
        });
        write_chunked(sink, 1, &f, 0, &doc);
        sink(TimedOp {
            at_ms: 2,
            op: TraceOp::Close(f.clone()),
        });

        let growth = (self.final_size - self.initial_size) / self.saves.max(1);
        for save in 0..self.saves {
            let t = (save as u64 + 1) * self.interval_ms;
            // Edit: a few in-place modifications plus an insertion that
            // shifts everything after it (what defeats fixed-block dedup).
            for _ in 0..3 {
                let pos = gen.index(doc.len().saturating_sub(2048));
                let patch = gen.text(2048.min(doc.len() - pos));
                doc[pos..pos + patch.len()].copy_from_slice(&patch);
            }
            let insert_at = gen.index(doc.len());
            let inserted = gen.mixed(growth, 0.7);
            doc.splice(insert_at..insert_at, inserted.iter().copied());

            // Fig. 3: 1 rename f t0, 2-3 create-write t1, 4 rename t1 f,
            // 5 delete t0.
            sink(TimedOp {
                at_ms: t,
                op: TraceOp::Rename {
                    src: f.clone(),
                    dst: "/doc.tmp0".to_string(),
                },
            });
            sink(TimedOp {
                at_ms: t + 10,
                op: TraceOp::Create("/doc.tmp1".to_string()),
            });
            write_chunked(sink, t + 20, "/doc.tmp1", 0, &doc);
            sink(TimedOp {
                at_ms: t + 100,
                op: TraceOp::Close("/doc.tmp1".to_string()),
            });
            sink(TimedOp {
                at_ms: t + 110,
                op: TraceOp::Rename {
                    src: "/doc.tmp1".to_string(),
                    dst: f.clone(),
                },
            });
            sink(TimedOp {
                at_ms: t + 120,
                op: TraceOp::Unlink("/doc.tmp0".to_string()),
            });
        }
    }
}

/// The WeChat SQLite trace: a chat-history database updated through
/// journaled page writes, growing 131 → 137 MB over 373 modifications
/// (§IV-A, Fig. 3).
#[derive(Debug, Clone)]
pub struct WeChatTrace {
    cfg: TraceConfig,
    initial_size: usize,
    mods: usize,
    append_pages: usize,
    overwrite_pages: usize,
    interval_ms: u64,
}

/// SQLite page size.
const PAGE: usize = 4096;

impl WeChatTrace {
    /// The paper's parameters at the given scale.
    pub fn new(cfg: TraceConfig) -> Self {
        WeChatTrace {
            initial_size: cfg.size(131 * 1024 * 1024),
            mods: cfg.count(373),
            append_pages: 4,    // ≈ 6 MB growth over 373 modifications
            overwrite_pages: 6, // B-tree interior updates, sub-page sized
            interval_ms: 1_000,
            cfg,
        }
    }

    /// The motivation instance of Fig. 1(b)(d): a 130 MB database, 4
    /// modifications comprising 85 writes, 688 KB changed in total.
    pub fn motivation(cfg: TraceConfig) -> Self {
        WeChatTrace {
            initial_size: cfg.size(130 * 1024 * 1024),
            mods: 4,
            append_pages: 21, // 4 mods * ~85/4 writes, 688 KB total
            overwrite_pages: 21,
            interval_ms: 15_000,
            cfg,
        }
    }
}

impl Trace for WeChatTrace {
    fn meta(&self) -> TraceMeta {
        TraceMeta {
            name: "wechat",
            description: format!(
                "{} journaled SQLite modifications on a {} MB database",
                self.mods,
                self.initial_size / (1024 * 1024)
            ),
        }
    }

    fn generate(&self, sink: &mut dyn FnMut(TimedOp)) {
        let mut gen = ContentGen::new(self.cfg.seed);
        let f = "/chat.db".to_string();
        let journal = "/chat.db-journal".to_string();

        sink(TimedOp {
            at_ms: 0,
            op: TraceOp::Create(f.clone()),
        });
        // Chat history: mostly text with embedded blobs.
        let initial = gen.mixed(self.initial_size, 0.6);
        write_chunked(sink, 1, &f, 0, &initial);
        sink(TimedOp {
            at_ms: 2,
            op: TraceOp::Fsync(f.clone()),
        });
        drop(initial);

        sink(TimedOp {
            at_ms: 3,
            op: TraceOp::Create(journal.clone()),
        });

        let mut size = self.initial_size as u64;
        for m in 0..self.mods {
            let t = 10_000 + (m as u64) * self.interval_ms;
            // 1-2: create-write f_journal (header + preserved old pages).
            let preserved = self.overwrite_pages + 1;
            sink(TimedOp {
                at_ms: t,
                op: TraceOp::Write {
                    path: journal.clone(),
                    offset: 0,
                    data: gen.mixed(512 + preserved * PAGE, 0.6),
                },
            });
            sink(TimedOp {
                at_ms: t + 1,
                op: TraceOp::Fsync(journal.clone()),
            });
            // 3: write f — the incremental data itself. B-tree cell
            // updates touch only part of a page (the paper: "the file
            // modifications in the WeChat trace are usually smaller than
            // 4 KB"), which is exactly where op-level RPC beats 4 KB
            // block-granularity delta encoding.
            for p in 0..self.overwrite_pages {
                let page = gen.index((size as usize / PAGE).saturating_sub(1));
                let span = 128 + gen.index(896); // 128 B – 1 KB within the page
                let in_page = gen.index(PAGE - span);
                sink(TimedOp {
                    at_ms: t + 2 + p as u64,
                    op: TraceOp::Write {
                        path: f.clone(),
                        offset: (page * PAGE + in_page) as u64,
                        data: gen.mixed(span, 0.8),
                    },
                });
            }
            // New messages appended as fresh pages.
            let appended = gen.mixed(self.append_pages * PAGE, 0.8);
            sink(TimedOp {
                at_ms: t + 10,
                op: TraceOp::Write {
                    path: f.clone(),
                    offset: size,
                    data: appended.clone(),
                },
            });
            size += appended.len() as u64;
            // Header page: change counter, non-aligned small write.
            sink(TimedOp {
                at_ms: t + 11,
                op: TraceOp::Write {
                    path: f.clone(),
                    offset: 24,
                    data: gen.noise(16),
                },
            });
            sink(TimedOp {
                at_ms: t + 12,
                op: TraceOp::Fsync(f.clone()),
            });
            // 4: truncate f_journal 0.
            sink(TimedOp {
                at_ms: t + 13,
                op: TraceOp::Truncate {
                    path: journal.clone(),
                    size: 0,
                },
            });
        }
    }
}

/// gedit's save pattern: `create-write tmp; link f f~; rename tmp f`
/// (§II-B, Fig. 3).
#[derive(Debug, Clone)]
pub struct GeditTrace {
    cfg: TraceConfig,
    saves: usize,
    size: usize,
    interval_ms: u64,
}

impl GeditTrace {
    /// A text-editor session at the given scale.
    pub fn new(cfg: TraceConfig) -> Self {
        GeditTrace {
            saves: cfg.count(20),
            size: cfg.size(200 * 1024),
            interval_ms: 5_000,
            cfg,
        }
    }
}

impl Trace for GeditTrace {
    fn meta(&self) -> TraceMeta {
        TraceMeta {
            name: "gedit",
            description: format!(
                "{} link+rename saves of a {} KB text file",
                self.saves,
                self.size / 1024
            ),
        }
    }

    fn generate(&self, sink: &mut dyn FnMut(TimedOp)) {
        let mut gen = ContentGen::new(self.cfg.seed);
        let f = "/notes.txt".to_string();
        let backup = "/notes.txt~".to_string();
        let tmp = "/.goutputstream".to_string();
        let mut doc = gen.text(self.size);

        sink(TimedOp {
            at_ms: 0,
            op: TraceOp::Create(f.clone()),
        });
        write_chunked(sink, 1, &f, 0, &doc);
        sink(TimedOp {
            at_ms: 2,
            op: TraceOp::Close(f.clone()),
        });

        for save in 0..self.saves {
            let t = (save as u64 + 1) * self.interval_ms;
            // Append a paragraph and tweak a line.
            let para = gen.text(512);
            doc.extend_from_slice(&para);
            let pos = gen.index(doc.len().saturating_sub(64));
            let tweak = gen.text(64);
            doc[pos..pos + 64].copy_from_slice(&tweak);

            if save > 0 {
                sink(TimedOp {
                    at_ms: t,
                    op: TraceOp::Unlink(backup.clone()),
                });
            }
            sink(TimedOp {
                at_ms: t + 1,
                op: TraceOp::Create(tmp.clone()),
            });
            write_chunked(sink, t + 2, &tmp, 0, &doc);
            sink(TimedOp {
                at_ms: t + 10,
                op: TraceOp::Close(tmp.clone()),
            });
            sink(TimedOp {
                at_ms: t + 11,
                op: TraceOp::Link {
                    src: f.clone(),
                    dst: backup.clone(),
                },
            });
            sink(TimedOp {
                at_ms: t + 12,
                op: TraceOp::Rename {
                    src: tmp.clone(),
                    dst: f.clone(),
                },
            });
        }
    }
}

/// A mixed desktop session: a Word document, a gedit text file, and a
/// chat database all living in one synced folder, interleaved in time.
///
/// No single-pattern trace exercises the engine's *adaptivity* — the whole
/// point of DeltaCFS is that the relation table routes each file to the
/// right mechanism concurrently: the document's saves trigger deltas while
/// the database's page writes ship as RPC ops in between.
#[derive(Debug, Clone)]
pub struct DesktopTrace {
    word: WordTrace,
    gedit: GeditTrace,
    wechat: WeChatTrace,
}

impl DesktopTrace {
    /// Builds the combined session at the given scale. The component
    /// traces keep their own timing; operations interleave by timestamp.
    pub fn new(cfg: TraceConfig) -> Self {
        // Shrink the heavyweight components so the mix stays balanced.
        DesktopTrace {
            word: WordTrace::new(TraceConfig {
                scale: cfg.scale * 0.5,
                seed: cfg.seed,
            }),
            gedit: GeditTrace::new(cfg),
            wechat: WeChatTrace::new(TraceConfig {
                scale: cfg.scale * 0.25,
                seed: cfg.seed.wrapping_add(1),
            }),
        }
    }
}

impl Trace for DesktopTrace {
    fn meta(&self) -> TraceMeta {
        TraceMeta {
            name: "desktop",
            description: format!(
                "mixed session: [{}] + [{}] + [{}]",
                self.word.meta().description,
                self.gedit.meta().description,
                self.wechat.meta().description
            ),
        }
    }

    fn generate(&self, sink: &mut dyn FnMut(TimedOp)) {
        // Collect and merge by timestamp (stable: ties keep source order,
        // and within one source the original order is preserved).
        let mut ops: Vec<TimedOp> = Vec::new();
        self.word.generate(&mut |op| ops.push(op));
        self.gedit.generate(&mut |op| ops.push(op));
        self.wechat.generate(&mut |op| ops.push(op));
        ops.sort_by_key(|op| op.at_ms);
        for op in ops {
            sink(op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(trace: &dyn Trace) -> Vec<TimedOp> {
        let mut ops = Vec::new();
        trace.generate(&mut |op| ops.push(op));
        ops
    }

    fn total_written(ops: &[TimedOp]) -> u64 {
        ops.iter()
            .map(|o| match &o.op {
                TraceOp::Write { data, .. } => data.len() as u64,
                _ => 0,
            })
            .sum()
    }

    #[test]
    fn append_reaches_32mb_at_full_scale() {
        let ops = collect(&AppendTrace::new(TraceConfig::default()));
        let written = total_written(&ops);
        assert_eq!(written, 40 * 800 * 1024);
        // Timestamps are monotone.
        assert!(ops.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
    }

    #[test]
    fn random_writes_are_in_bounds() {
        let cfg = TraceConfig::scaled(0.1);
        let trace = RandomWriteTrace::new(cfg);
        let ops = collect(&trace);
        let file_size = 2 * 1024 * 1024;
        for op in &ops {
            if let TraceOp::Write { offset, data, .. } = &op.op {
                assert!(*offset as usize + data.len() <= file_size + 1024);
            }
        }
        // 40 small writes after the initial content.
        let small = ops
            .iter()
            .filter(|o| matches!(&o.op, TraceOp::Write { data, .. } if data.len() == 1010))
            .count();
        assert_eq!(small, 40);
    }

    #[test]
    fn word_trace_follows_fig3_sequence() {
        let ops = collect(&WordTrace::new(TraceConfig::scaled(0.05)));
        // Find the first save and check the op pattern around it.
        let first_rename = ops
            .iter()
            .position(|o| matches!(&o.op, TraceOp::Rename { dst, .. } if dst == "/doc.tmp0"))
            .expect("save present");
        assert!(matches!(&ops[first_rename + 1].op, TraceOp::Create(p) if p == "/doc.tmp1"));
        let has_back_rename = ops[first_rename..]
            .iter()
            .any(|o| matches!(&o.op, TraceOp::Rename { src, dst } if src == "/doc.tmp1" && dst == "/doc.docx"));
        assert!(has_back_rename);
        let has_unlink = ops[first_rename..]
            .iter()
            .any(|o| matches!(&o.op, TraceOp::Unlink(p) if p == "/doc.tmp0"));
        assert!(has_unlink);
    }

    #[test]
    fn word_trace_grows_the_document() {
        let trace = WordTrace::new(TraceConfig::scaled(0.05));
        let ops = collect(&trace);
        // The last save writes more than the first one did.
        let writes: Vec<u64> = ops
            .iter()
            .filter_map(|o| match &o.op {
                TraceOp::Write { path, data, .. } if path == "/doc.tmp1" => Some(data.len() as u64),
                _ => None,
            })
            .collect();
        assert!(!writes.is_empty());
    }

    #[test]
    fn wechat_trace_journals_every_modification() {
        let trace = WeChatTrace::new(TraceConfig::scaled(0.02));
        let ops = collect(&trace);
        let journal_writes = ops
            .iter()
            .filter(|o| matches!(&o.op, TraceOp::Write { path, .. } if path == "/chat.db-journal"))
            .count();
        let truncates = ops
            .iter()
            .filter(
                |o| matches!(&o.op, TraceOp::Truncate { path, .. } if path == "/chat.db-journal"),
            )
            .count();
        assert_eq!(journal_writes, truncates);
        assert!(truncates >= 2);
    }

    #[test]
    fn gedit_uses_link_then_rename() {
        let ops = collect(&GeditTrace::new(TraceConfig::scaled(0.2)));
        let link_pos = ops
            .iter()
            .position(|o| matches!(&o.op, TraceOp::Link { .. }))
            .expect("link present");
        assert!(ops[link_pos..]
            .iter()
            .any(|o| matches!(&o.op, TraceOp::Rename { dst, .. } if dst == "/notes.txt")));
    }

    #[test]
    fn desktop_trace_interleaves_all_three_apps() {
        let ops = collect(&DesktopTrace::new(TraceConfig::scaled(0.1)));
        assert!(ops.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        let touches = |needle: &str| {
            ops.iter().any(|o| match &o.op {
                TraceOp::Write { path, .. } => path.contains(needle),
                _ => false,
            })
        };
        assert!(touches("doc.docx"));
        assert!(touches("notes.txt") || touches("goutputstream"));
        assert!(touches("chat.db"));
    }

    #[test]
    fn traces_are_deterministic() {
        let a = collect(&WordTrace::new(TraceConfig::scaled(0.05)));
        let b = collect(&WordTrace::new(TraceConfig::scaled(0.05)));
        assert_eq!(a, b);
    }

    #[test]
    fn scale_shrinks_data_volume() {
        let full = total_written(&collect(&AppendTrace::new(TraceConfig::scaled(1.0))));
        let small = total_written(&collect(&AppendTrace::new(TraceConfig::scaled(0.1))));
        assert!(small < full / 5);
    }
}
