//! A small LZ77-style byte compressor standing in for Snappy.
//!
//! The paper suspects Dropbox compresses uploads ("we suspect it applies
//! data compression (e.g., Snappy)", §IV-C) and charges CPU for it
//! (§IV-B). This module provides a fast greedy LZ77 with a 4-byte hash
//! table — the same family of algorithm as Snappy — so the Dropbox
//! baseline can both pay the compression cost and enjoy the traffic
//! savings on compressible data.
//!
//! Format (private, round-trip only): a token stream where each token
//! starts with a varint `v`; if `v & 1 == 0` it is a literal run of
//! `v >> 1` bytes that follow, otherwise a back-reference of length
//! `v >> 1` whose distance follows as a second varint. Matching is lazy
//! (one-byte lookahead), like zlib's.

use crate::cost::Cost;

const MIN_MATCH: usize = 4;
const MAX_DIST: usize = 64 * 1024;
const HASH_BITS: u32 = 15;

fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(0x9E3779B1) >> (32 - HASH_BITS)) as usize
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*pos)?;
        *pos += 1;
        // A continuation byte whose payload bits would be shifted past
        // bit 63 encodes a value outside u64 — malformed, not wrapped.
        if shift == 63 && byte & 0x7e != 0 {
            return None;
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Compresses `data`, charging one pass over it to `cost.bytes_compressed`.
///
/// The output is only readable by [`decompress`]; it is a traffic model,
/// not an interchange format.
pub fn compress(data: &[u8], cost: &mut Cost) -> Vec<u8> {
    cost.bytes_compressed += data.len() as u64;
    cost.ops += 1;
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut literal_start = 0usize;
    let mut i = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize| {
        if to > from {
            put_varint(out, ((to - from) as u64) << 1);
            out.extend_from_slice(&data[from..to]);
        }
    };

    // Finds the best match at `i` and records `i` in the hash table.
    let find = |table: &mut [usize], i: usize| -> Option<(usize, usize)> {
        if i + MIN_MATCH > data.len() {
            return None;
        }
        let h = hash4(data, i);
        let candidate = table[h];
        table[h] = i;
        if candidate == usize::MAX
            || i - candidate > MAX_DIST
            || data[candidate..candidate + MIN_MATCH] != data[i..i + MIN_MATCH]
        {
            return None;
        }
        let mut len = MIN_MATCH;
        while i + len < data.len() && data[candidate + len] == data[i + len] {
            len += 1;
        }
        Some((len, i - candidate))
    };

    while i + MIN_MATCH <= data.len() {
        match find(&mut table, i) {
            Some((mut len, mut dist)) => {
                // Lazy evaluation: a longer match starting one byte later
                // wins; the current byte joins the literal run.
                if let Some((len2, dist2)) = find(&mut table, i + 1) {
                    if len2 > len + 1 {
                        i += 1;
                        len = len2;
                        dist = dist2;
                    }
                }
                flush_literals(&mut out, literal_start, i);
                put_varint(&mut out, ((len as u64) << 1) | 1);
                put_varint(&mut out, dist as u64);
                i += len;
                literal_start = i;
            }
            None => i += 1,
        }
    }
    flush_literals(&mut out, literal_start, data.len());
    out
}

/// Hard ceiling on [`decompress`]'s output. A malformed token stream can
/// declare astronomically long back-references with a handful of input
/// bytes; without a ceiling, decompression of untrusted input is an
/// allocation bomb. Callers that know the expected size should prefer
/// [`decompress_limited`], which enforces it exactly.
pub const MAX_DECOMPRESSED: usize = 1 << 30;

/// Decompresses a buffer produced by [`compress`].
///
/// Returns `None` if the input is malformed or the output would exceed
/// [`MAX_DECOMPRESSED`]. Never panics or over-allocates on untrusted
/// input: every length is bounds-checked with overflow-safe arithmetic
/// before any byte is produced.
pub fn decompress(data: &[u8]) -> Option<Vec<u8>> {
    decompress_limited(data, MAX_DECOMPRESSED)
}

/// Decompresses a buffer produced by [`compress`], refusing to produce
/// more than `max_len` output bytes.
///
/// This is the entry point for wire-facing callers: a codec-tagged chunk
/// frame carries its raw length, so the receiver passes it here and a
/// frame whose token stream tries to inflate past the declared size is
/// rejected as malformed instead of ballooning memory.
pub fn decompress_limited(data: &[u8], max_len: usize) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(data.len().min(max_len).saturating_mul(2).min(max_len));
    let mut pos = 0usize;
    while pos < data.len() {
        let token = get_varint(data, &mut pos)?;
        let len = usize::try_from(token >> 1).ok()?;
        if out.len().checked_add(len)? > max_len {
            return None;
        }
        if token & 1 == 0 {
            let end = pos.checked_add(len)?;
            if end > data.len() {
                return None;
            }
            out.extend_from_slice(&data[pos..end]);
            pos = end;
        } else {
            let dist = usize::try_from(get_varint(data, &mut pos)?).ok()?;
            if dist == 0 || dist > out.len() {
                return None;
            }
            let start = out.len() - dist;
            // Overlapping copies are valid LZ77 (run-length encoding).
            for k in 0..len {
                let byte = out[start + k];
                out.push(byte);
            }
        }
    }
    Some(out)
}

/// Compresses and reports only the resulting size; convenience for traffic
/// modelling when the compressed bytes themselves are not needed.
pub fn compressed_size(data: &[u8], cost: &mut Cost) -> u64 {
    compress(data, cost).len() as u64
}

/// How many bytes [`probe_ratio`] samples at most. The probe is the cheap
/// side of a cost-benefit decision; it must stay orders of magnitude
/// cheaper than compressing the chunk it judges.
pub const PROBE_SAMPLE_BYTES: usize = 2048;

/// Estimates the achievable compression ratio (`compressed / raw`, in
/// `0.0..=1.0`) of `data` from the byte-value entropy of a strided
/// sample.
///
/// The probe reads at most [`PROBE_SAMPLE_BYTES`] bytes regardless of
/// input size: it strides evenly across the input so a file whose head
/// is text and whose tail is random is judged on both. Shannon entropy
/// of the byte histogram, divided by 8, approximates the ratio an
/// order-0 coder would reach; LZ back-references usually beat it on
/// repetitive data, which is why the adaptive controller layers an
/// observed-outcome bias on top rather than trusting the probe alone.
///
/// Deterministic: same input, same estimate — no RNG, no thread
/// dependence. Returns `1.0` (incompressible) for empty input.
pub fn probe_ratio(data: &[u8]) -> f64 {
    probe_ratio_sampled(data.len(), |i| data[i])
}

/// [`probe_ratio`] over a virtual byte string of length `len` addressed
/// by `byte_at` — lets scatter-gather callers probe a frame without
/// first concatenating its pieces.
pub fn probe_ratio_sampled(len: usize, byte_at: impl Fn(usize) -> u8) -> f64 {
    if len == 0 {
        return 1.0;
    }
    let stride = len.div_ceil(PROBE_SAMPLE_BYTES).max(1);
    let mut hist = [0u32; 256];
    let mut sampled = 0u32;
    let mut i = 0;
    while i < len {
        hist[byte_at(i) as usize] += 1;
        sampled += 1;
        i += stride;
    }
    let n = f64::from(sampled);
    let mut entropy_bits = 0.0;
    for &count in &hist {
        if count > 0 {
            let p = f64::from(count) / n;
            entropy_bits -= p * p.log2();
        }
    }
    (entropy_bits / 8.0).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let compressed = compress(data, &mut Cost::new());
        let restored = decompress(&compressed).expect("decompression failed");
        assert_eq!(restored, data);
        compressed
    }

    #[test]
    fn empty_and_tiny() {
        assert!(roundtrip(b"").is_empty());
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"abcd");
    }

    #[test]
    fn repetitive_data_shrinks() {
        let data = b"hello world ".repeat(1000);
        let compressed = roundtrip(&data);
        assert!(
            compressed.len() < data.len() / 4,
            "compressed {} of {}",
            compressed.len(),
            data.len()
        );
    }

    #[test]
    fn random_data_does_not_explode() {
        let mut state = 42u64;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect();
        let compressed = roundtrip(&data);
        // Worst case adds only token framing overhead.
        assert!(compressed.len() < data.len() + data.len() / 100 + 16);
    }

    #[test]
    fn run_length_overlapping_match() {
        let data = vec![7u8; 10_000];
        let compressed = roundtrip(&data);
        assert!(compressed.len() < 100);
    }

    #[test]
    fn text_like_content_compresses_about_2x_or_more() {
        let words = [
            "the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog",
        ];
        let mut state = 9u64;
        let mut text = String::new();
        while text.len() < 100_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            text.push_str(words[(state >> 33) as usize % words.len()]);
            text.push(' ');
        }
        let compressed = roundtrip(text.as_bytes());
        assert!(compressed.len() * 2 < text.len());
    }

    #[test]
    fn malformed_inputs_return_none() {
        // Literal run of 5 with only 1 byte present.
        assert!(decompress(&[0x0a, b'a']).is_none());
        // Match of len 2 with dist 9 into an empty output.
        assert!(decompress(&[0x05, 0x09]).is_none());
        // Truncated varint.
        assert!(decompress(&[0x80]).is_none());
        // Match token missing its distance varint.
        assert!(decompress(&[0x05]).is_none());
    }

    #[test]
    fn cost_charged_once_per_pass() {
        let mut cost = Cost::new();
        compressed_size(&vec![0u8; 1234], &mut cost);
        assert_eq!(cost.bytes_compressed, 1234);
    }

    #[test]
    fn zero_and_one_byte_inputs_never_panic() {
        assert_eq!(decompress(&[]), Some(Vec::new()));
        // Every single-byte input is either a valid empty-literal token
        // or malformed — never a panic.
        for b in 0..=255u8 {
            let _ = decompress(&[b]);
        }
        // A literal run of 0 bytes decodes to nothing.
        assert_eq!(decompress(&[0x00]), Some(Vec::new()));
    }

    #[test]
    fn truncated_tokens_are_rejected() {
        let data = b"hello world hello world hello world ".repeat(50);
        let full = compress(&data, &mut Cost::new());
        // Every proper prefix either decodes to a prefix-consistent
        // output or is rejected; it must never panic. Prefixes that cut
        // a token mid-varint or mid-literal must return None.
        for cut in 0..full.len() {
            let _ = decompress(&full[..cut]);
        }
        // Explicit truncations: literal promising more bytes than remain,
        // and a match token whose distance varint is missing.
        assert!(decompress(&[0x0a, b'a']).is_none());
        assert!(decompress(&[0x05]).is_none());
    }

    #[test]
    fn varint_overflow_is_rejected() {
        // Ten continuation bytes push past 63 bits of shift.
        let overlong = [0xff; 10];
        assert!(decompress(&overlong).is_none());
        // Exactly at the boundary: a 10th byte with any bit above the
        // 64th set is malformed, not silently wrapped.
        let mut edge = [0x80u8; 10];
        edge[9] = 0x02;
        assert!(decompress(&edge).is_none());
    }

    #[test]
    fn giant_declared_match_cannot_balloon_memory() {
        // A back-reference declaring a near-u64::MAX length with dist 1:
        // two literal bytes then the bomb token. Must be rejected by the
        // output ceiling without allocating the declared length.
        let mut bomb = vec![0x04, b'a', b'b'];
        put_varint(&mut bomb, (u64::MAX >> 1 << 1) | 1); // match, huge len
        put_varint(&mut bomb, 1); // dist 1
        assert!(decompress(&bomb).is_none());
        assert!(decompress_limited(&bomb, 1 << 16).is_none());
    }

    #[test]
    fn decompress_limited_enforces_the_exact_cap() {
        let data = b"abcdabcdabcdabcd".repeat(64);
        let compressed = compress(&data, &mut Cost::new());
        assert_eq!(
            decompress_limited(&compressed, data.len()),
            Some(data.clone())
        );
        assert!(decompress_limited(&compressed, data.len() - 1).is_none());
        assert!(decompress_limited(&compressed, 0).is_none());
    }

    #[test]
    fn fuzz_random_inputs_never_panic_and_respect_the_limit() {
        // Fuzz-style sweep: decompress arbitrary byte soup at many
        // lengths. The property is total safety — no panic, no output
        // beyond the declared cap — not any particular decode result.
        let mut state = 0x123456789abcdef0u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u8
        };
        for round in 0..500 {
            let len = (round * 7) % 257;
            let buf: Vec<u8> = (0..len).map(|_| next()).collect();
            if let Some(out) = decompress_limited(&buf, 4096) {
                assert!(out.len() <= 4096);
            }
        }
    }

    mod prop {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            // Decompression is total over arbitrary byte soup: never a
            // panic, and any accepted output honors the caller's cap.
            #[test]
            fn decompress_is_total_on_random_bytes(
                data in proptest::collection::vec(any::<u8>(), 0..512),
                cap in 0usize..8192,
            ) {
                if let Some(out) = decompress_limited(&data, cap) {
                    prop_assert!(out.len() <= cap);
                }
            }

            // Real compressor output always round-trips exactly, and the
            // tight cap (exactly the original length) is sufficient.
            #[test]
            fn roundtrip_any_buffer(
                data in proptest::collection::vec(any::<u8>(), 0..4096),
            ) {
                let compressed = compress(&data, &mut Cost::new());
                let restored = decompress_limited(&compressed, data.len());
                prop_assert_eq!(restored, Some(data));
            }
        }
    }

    #[test]
    fn probe_separates_text_from_noise() {
        let text = b"the quick brown fox jumps over the lazy dog ".repeat(200);
        let mut state = 7u64;
        let noise: Vec<u8> = (0..8192)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect();
        let rt = probe_ratio(&text);
        let rn = probe_ratio(&noise);
        assert!(rt < 0.65, "text probe {rt}");
        assert!(rn > 0.9, "noise probe {rn}");
        assert_eq!(probe_ratio(&[]), 1.0);
        // The sampled variant over the same bytes agrees.
        assert_eq!(rt, probe_ratio_sampled(text.len(), |i| text[i]));
    }
}
