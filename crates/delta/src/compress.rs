//! A small LZ77-style byte compressor standing in for Snappy.
//!
//! The paper suspects Dropbox compresses uploads ("we suspect it applies
//! data compression (e.g., Snappy)", §IV-C) and charges CPU for it
//! (§IV-B). This module provides a fast greedy LZ77 with a 4-byte hash
//! table — the same family of algorithm as Snappy — so the Dropbox
//! baseline can both pay the compression cost and enjoy the traffic
//! savings on compressible data.
//!
//! Format (private, round-trip only): a token stream where each token
//! starts with a varint `v`; if `v & 1 == 0` it is a literal run of
//! `v >> 1` bytes that follow, otherwise a back-reference of length
//! `v >> 1` whose distance follows as a second varint. Matching is lazy
//! (one-byte lookahead), like zlib's.

use crate::cost::Cost;

const MIN_MATCH: usize = 4;
const MAX_DIST: usize = 64 * 1024;
const HASH_BITS: u32 = 15;

fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(0x9E3779B1) >> (32 - HASH_BITS)) as usize
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0;
    loop {
        let byte = *data.get(*pos)?;
        *pos += 1;
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Compresses `data`, charging one pass over it to `cost.bytes_compressed`.
///
/// The output is only readable by [`decompress`]; it is a traffic model,
/// not an interchange format.
pub fn compress(data: &[u8], cost: &mut Cost) -> Vec<u8> {
    cost.bytes_compressed += data.len() as u64;
    cost.ops += 1;
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut literal_start = 0usize;
    let mut i = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize| {
        if to > from {
            put_varint(out, ((to - from) as u64) << 1);
            out.extend_from_slice(&data[from..to]);
        }
    };

    // Finds the best match at `i` and records `i` in the hash table.
    let find = |table: &mut [usize], i: usize| -> Option<(usize, usize)> {
        if i + MIN_MATCH > data.len() {
            return None;
        }
        let h = hash4(data, i);
        let candidate = table[h];
        table[h] = i;
        if candidate == usize::MAX
            || i - candidate > MAX_DIST
            || data[candidate..candidate + MIN_MATCH] != data[i..i + MIN_MATCH]
        {
            return None;
        }
        let mut len = MIN_MATCH;
        while i + len < data.len() && data[candidate + len] == data[i + len] {
            len += 1;
        }
        Some((len, i - candidate))
    };

    while i + MIN_MATCH <= data.len() {
        match find(&mut table, i) {
            Some((mut len, mut dist)) => {
                // Lazy evaluation: a longer match starting one byte later
                // wins; the current byte joins the literal run.
                if let Some((len2, dist2)) = find(&mut table, i + 1) {
                    if len2 > len + 1 {
                        i += 1;
                        len = len2;
                        dist = dist2;
                    }
                }
                flush_literals(&mut out, literal_start, i);
                put_varint(&mut out, ((len as u64) << 1) | 1);
                put_varint(&mut out, dist as u64);
                i += len;
                literal_start = i;
            }
            None => i += 1,
        }
    }
    flush_literals(&mut out, literal_start, data.len());
    out
}

/// Decompresses a buffer produced by [`compress`].
///
/// Returns `None` if the input is malformed.
pub fn decompress(data: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(data.len() * 2);
    let mut pos = 0usize;
    while pos < data.len() {
        let token = get_varint(data, &mut pos)?;
        let len = (token >> 1) as usize;
        if token & 1 == 0 {
            if pos + len > data.len() {
                return None;
            }
            out.extend_from_slice(&data[pos..pos + len]);
            pos += len;
        } else {
            let dist = get_varint(data, &mut pos)? as usize;
            if dist == 0 || dist > out.len() {
                return None;
            }
            let start = out.len() - dist;
            // Overlapping copies are valid LZ77 (run-length encoding).
            for k in 0..len {
                let byte = out[start + k];
                out.push(byte);
            }
        }
    }
    Some(out)
}

/// Compresses and reports only the resulting size; convenience for traffic
/// modelling when the compressed bytes themselves are not needed.
pub fn compressed_size(data: &[u8], cost: &mut Cost) -> u64 {
    compress(data, cost).len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let compressed = compress(data, &mut Cost::new());
        let restored = decompress(&compressed).expect("decompression failed");
        assert_eq!(restored, data);
        compressed
    }

    #[test]
    fn empty_and_tiny() {
        assert!(roundtrip(b"").is_empty());
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"abcd");
    }

    #[test]
    fn repetitive_data_shrinks() {
        let data = b"hello world ".repeat(1000);
        let compressed = roundtrip(&data);
        assert!(
            compressed.len() < data.len() / 4,
            "compressed {} of {}",
            compressed.len(),
            data.len()
        );
    }

    #[test]
    fn random_data_does_not_explode() {
        let mut state = 42u64;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect();
        let compressed = roundtrip(&data);
        // Worst case adds only token framing overhead.
        assert!(compressed.len() < data.len() + data.len() / 100 + 16);
    }

    #[test]
    fn run_length_overlapping_match() {
        let data = vec![7u8; 10_000];
        let compressed = roundtrip(&data);
        assert!(compressed.len() < 100);
    }

    #[test]
    fn text_like_content_compresses_about_2x_or_more() {
        let words = [
            "the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog",
        ];
        let mut state = 9u64;
        let mut text = String::new();
        while text.len() < 100_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            text.push_str(words[(state >> 33) as usize % words.len()]);
            text.push(' ');
        }
        let compressed = roundtrip(text.as_bytes());
        assert!(compressed.len() * 2 < text.len());
    }

    #[test]
    fn malformed_inputs_return_none() {
        // Literal run of 5 with only 1 byte present.
        assert!(decompress(&[0x0a, b'a']).is_none());
        // Match of len 2 with dist 9 into an empty output.
        assert!(decompress(&[0x05, 0x09]).is_none());
        // Truncated varint.
        assert!(decompress(&[0x80]).is_none());
        // Match token missing its distance varint.
        assert!(decompress(&[0x05]).is_none());
    }

    #[test]
    fn cost_charged_once_per_pass() {
        let mut cost = Cost::new();
        compressed_size(&vec![0u8; 1234], &mut cost);
        assert_eq!(cost.bytes_compressed, 1234);
    }
}
