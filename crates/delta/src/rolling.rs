/// The rsync rolling (weak) checksum.
///
/// This is the Adler-32-inspired checksum from Tridgell & Mackerras'
/// original rsync paper: `a` is the byte sum and `b` is the positional sum,
/// both modulo 2^16; the digest is `a | b << 16`. Its defining property is
/// that sliding the window one byte forward costs O(1)
/// ([`RollingChecksum::roll`]), which is what lets rsync test every byte
/// offset of a file against a block table — and also why running it over
/// whole files on every modification burns the CPU the paper complains
/// about.
///
/// DeltaCFS reuses the same checksum for its 4 KB block checksum store
/// (§III-E), "which further reduces the computational cost".
///
/// # Example
///
/// ```
/// use deltacfs_delta::RollingChecksum;
///
/// let data = b"hello, rolling world";
/// let win = 5;
/// let mut rc = RollingChecksum::new(&data[..win]);
/// for i in 0..data.len() - win {
///     rc.roll(data[i], data[i + win]);
///     assert_eq!(rc.digest(), RollingChecksum::new(&data[i + 1..i + 1 + win]).digest());
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RollingChecksum {
    a: u32,
    b: u32,
    window: u32,
}

impl RollingChecksum {
    /// Computes the checksum of an initial window.
    pub fn new(window: &[u8]) -> Self {
        let mut a: u32 = 0;
        let mut b: u32 = 0;
        let len = window.len() as u32;
        for (i, &x) in window.iter().enumerate() {
            a = a.wrapping_add(x as u32);
            b = b.wrapping_add((len - i as u32) * x as u32);
        }
        RollingChecksum {
            a: a & 0xffff,
            b: b & 0xffff,
            window: len,
        }
    }

    /// Slides the window one byte: removes `out` (the oldest byte) and
    /// appends `incoming`.
    #[inline]
    pub fn roll(&mut self, out: u8, incoming: u8) {
        self.a = self
            .a
            .wrapping_sub(out as u32)
            .wrapping_add(incoming as u32)
            & 0xffff;
        self.b = self
            .b
            .wrapping_sub(self.window.wrapping_mul(out as u32))
            .wrapping_add(self.a)
            & 0xffff;
    }

    /// The 32-bit digest (`a` in the low half, `b` in the high half).
    #[inline]
    pub fn digest(&self) -> u32 {
        self.a | (self.b << 16)
    }

    /// Non-committing 8-step lookahead: returns the checksum states after
    /// rolling 1, 2, …, 8 bytes forward (`outs[i]` leaves as `ins[i]`
    /// enters), without mutating `self`.
    ///
    /// `states[i]` is exactly what `i + 1` successive [`roll`] calls would
    /// produce — the miss loops use this to test a whole word of upcoming
    /// window positions against the weak filter and jump straight to the
    /// first plausible one.
    ///
    /// [`roll`]: RollingChecksum::roll
    #[inline]
    pub fn peek8(&self, outs: &[u8; 8], ins: &[u8; 8]) -> [RollingChecksum; 8] {
        let mut rc = *self;
        let mut states = [rc; 8];
        for i in 0..8 {
            rc.roll(outs[i], ins[i]);
            states[i] = rc;
        }
        states
    }

    /// Window length this checksum was built over.
    pub fn window_len(&self) -> usize {
        self.window as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Convenience: the digest of `block` in one call.
    fn weak_digest(block: &[u8]) -> u32 {
        RollingChecksum::new(block).digest()
    }

    #[test]
    fn empty_window_is_zero() {
        assert_eq!(RollingChecksum::new(&[]).digest(), 0);
    }

    #[test]
    fn roll_matches_fresh_computation() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let win = 64;
        let mut rc = RollingChecksum::new(&data[..win]);
        for i in 0..data.len() - win {
            rc.roll(data[i], data[i + win]);
            let fresh = RollingChecksum::new(&data[i + 1..i + 1 + win]);
            assert_eq!(rc.digest(), fresh.digest(), "mismatch at offset {i}");
        }
    }

    #[test]
    fn different_content_usually_differs() {
        let a = weak_digest(b"aaaaaaaa");
        let b = weak_digest(b"aaaaaaab");
        assert_ne!(a, b);
    }

    #[test]
    fn order_sensitive() {
        // Unlike a plain byte sum, the positional term distinguishes
        // permutations.
        assert_ne!(weak_digest(b"ab"), weak_digest(b"ba"));
    }

    #[test]
    fn window_len_reported() {
        assert_eq!(RollingChecksum::new(b"abcd").window_len(), 4);
    }

    #[test]
    fn peek8_matches_sequential_rolls_at_every_offset() {
        let data: Vec<u8> = (0..500).map(|i| (i * 131 % 251) as u8).collect();
        for win in [4usize, 8, 64] {
            let mut rc = RollingChecksum::new(&data[..win]);
            let mut pos = 0usize;
            while pos + win + 8 <= data.len() {
                let outs: [u8; 8] = data[pos..pos + 8].try_into().unwrap();
                let ins: [u8; 8] = data[pos + win..pos + win + 8].try_into().unwrap();
                let states = rc.peek8(&outs, &ins);
                let before = rc;
                for (i, state) in states.iter().enumerate() {
                    let fresh = RollingChecksum::new(&data[pos + i + 1..pos + i + 1 + win]);
                    assert_eq!(state.digest(), fresh.digest(), "win {win} pos {pos} step {i}");
                }
                // Non-committing: self unchanged.
                assert_eq!(rc, before);
                rc.roll(data[pos], data[pos + win]);
                assert_eq!(rc, states[0], "single roll equals first peeked state");
                pos += 1;
            }
        }
    }
}
