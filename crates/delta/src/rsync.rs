//! The classic rsync algorithm (Tridgell & Mackerras, 1996).
//!
//! The receiver (or, with Dropbox's client-side offloading, the client
//! itself — paper §IV-B) computes a [`Signature`] of the old file: a weak
//! rolling checksum and a strong MD5 checksum per fixed-size block. The
//! sender slides a window over the new file; whenever the rolling checksum
//! hits the signature table it confirms the match with MD5 and emits a
//! block reference instead of literal bytes.
//!
//! Every byte rolled, hashed, or copied is charged to the supplied
//! [`Cost`], because this per-modification whole-file scan is precisely the
//! "abuse of delta sync" the paper sets out to eliminate.

use std::collections::HashMap;

use crate::cost::Cost;
use crate::delta_ops::Delta;
use crate::hierarchy::{diff_hier_sink, HierarchyParams};
use crate::md5_impl::md5;
use crate::parallel::{replay_matches, replay_with, scan_matches, scan_streaming, ProbeOutcome};
use crate::rolling::RollingChecksum;
use crate::stream::{ChunkSink, DeltaChunk, MaterializeSink, OpSink};
use crate::weak_index::{insert_candidate, CandidateSet, WeakFilter};
use crate::DeltaParams;

/// Per-block wire overhead of a transmitted signature entry:
/// 4 bytes weak + 16 bytes strong checksum.
pub const SIGNATURE_ENTRY_BYTES: u64 = 20;

/// Block signatures of a base file.
#[derive(Debug, Clone)]
pub struct Signature {
    block_size: usize,
    /// Strong checksum of each block, indexed by block number.
    strong: Vec<[u8; 16]>,
    /// Weak checksum of each block, indexed by block number. Part of the
    /// wire signature already (each entry ships weak + strong); kept
    /// per-block so the hierarchical matcher's metadata self-probe can
    /// answer a span-aligned block's own probe without hashing.
    weak: Vec<u32>,
    /// Weak checksum -> block numbers with that weak checksum (first
    /// candidate inline, overflow allocated only on collision).
    weak_map: HashMap<u32, CandidateSet>,
    /// Superset membership filter over `weak_map`'s keys: a filter miss
    /// proves a map miss, which lets the scan's miss loop word-skip.
    filter: WeakFilter,
    old_len: u64,
}

impl Signature {
    /// Block size the signature was computed with.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of blocks (including a short final block).
    pub fn block_count(&self) -> usize {
        self.strong.len()
    }

    /// Length of the base file in bytes.
    pub fn old_len(&self) -> u64 {
        self.old_len
    }

    /// Bytes this signature occupies when transmitted (what rsync's
    /// receiver sends to the sender).
    pub fn wire_size(&self) -> u64 {
        self.block_count() as u64 * SIGNATURE_ENTRY_BYTES
    }

    /// `(offset, len)` of block `block_idx` in the old file.
    fn block_range(&self, block_idx: u32) -> (u64, u64) {
        let start = block_idx as u64 * self.block_size as u64;
        let len = (self.old_len - start).min(self.block_size as u64);
        (start, len)
    }

    /// Weak-map lookup behind the filter fast-path; by the
    /// [`WeakFilter`] superset invariant the result equals a direct map
    /// probe.
    #[inline]
    fn lookup_weak(&self, weak: u32) -> Option<&CandidateSet> {
        if !self.filter.plausible(weak) {
            return None;
        }
        self.weak_map.get(&weak)
    }
}

/// Computes the block [`Signature`] of `old`.
///
/// Charges one weak-checksum pass and one strong-checksum pass over the
/// whole file to `cost`.
pub fn signature(old: &[u8], params: &DeltaParams, cost: &mut Cost) -> Signature {
    let bs = params.block_size;
    let nblocks = old.len().div_ceil(bs);
    let mut strong = Vec::with_capacity(nblocks);
    let mut weaks = Vec::with_capacity(nblocks);
    let mut weak_map: HashMap<u32, CandidateSet> = HashMap::with_capacity(nblocks);
    let mut filter = WeakFilter::new();
    for (i, block) in old.chunks(bs).enumerate() {
        let weak = RollingChecksum::new(block).digest();
        cost.bytes_rolled += block.len() as u64;
        let digest = md5(block);
        cost.bytes_strong_hashed += block.len() as u64;
        cost.ops += 2;
        strong.push(digest);
        weaks.push(weak);
        insert_candidate(&mut weak_map, weak, i as u32);
        filter.insert(weak);
    }
    Signature {
        block_size: bs,
        strong,
        weak: weaks,
        weak_map,
        filter,
        old_len: old.len() as u64,
    }
}

/// Computes a [`Delta`] that transforms the file described by `sig` into
/// `new`, using the rolling-window search with MD5 confirmation.
///
/// Charges every rolled byte and every confirming MD5 to `cost`.
pub fn diff(sig: &Signature, new: &[u8], params: &DeltaParams, cost: &mut Cost) -> Delta {
    debug_assert_eq!(sig.block_size, params.block_size);
    diff_with(
        new,
        params.block_size,
        cost,
        Some(&sig.filter),
        |weak| sig.lookup_weak(weak),
        |window, candidates, cost| {
            let digest = md5(window);
            cost.bytes_strong_hashed += window.len() as u64;
            cost.ops += 1;
            candidates.iter().find(|&b| sig.strong[b as usize] == digest)
        },
        |block_idx| sig.block_range(block_idx),
    )
}

/// Like [`diff`], but probes window positions across `workers` scoped
/// threads, sharing `sig` read-only.
///
/// The output `Delta` — and the `Cost` totals — are **byte-identical** to
/// [`diff`]'s for any thread count: candidate selection stays ordered by
/// block index and the greedy walk is replayed sequentially over the
/// precomputed match table. `workers <= 1` falls through to the sequential
/// implementation.
pub fn diff_parallel(
    sig: &Signature,
    new: &[u8],
    params: &DeltaParams,
    workers: usize,
    cost: &mut Cost,
) -> Delta {
    debug_assert_eq!(sig.block_size, params.block_size);
    if workers <= 1 || new.len() < params.min_parallel_bytes {
        return diff(sig, new, params, cost);
    }
    let bs = sig.block_size;
    let probe = probe_md5(sig);
    let table = scan_matches(new, bs, workers, &probe);
    replay_matches(
        new,
        bs,
        &table,
        cost,
        |cost, bytes, ops| {
            cost.bytes_strong_hashed += bytes;
            cost.ops += ops;
        },
        |block_idx| sig.block_range(block_idx),
        |pos| {
            let window = &new[pos..pos + bs];
            probe(RollingChecksum::new(window).digest(), window)
        },
    )
}

/// The md5-confirming probe shared by the parallel and streaming paths.
fn probe_md5<'a>(sig: &'a Signature) -> impl Fn(u32, &[u8]) -> Option<ProbeOutcome> + Sync + 'a {
    |weak: u32, window: &[u8]| {
        sig.lookup_weak(weak).map(|candidates| {
            let digest = md5(window);
            let matched = candidates.iter().find(|&b| sig.strong[b as usize] == digest);
            (matched, window.len() as u64, 1u64)
        })
    }
}

/// Streaming variant of [`diff_parallel`]: instead of materializing a
/// [`Delta`], hands [`DeltaChunk`]s of at most `chunk_budget` literal
/// bytes to `emit` as the walk produces them, overlapping segment
/// scanning with chunk release.
///
/// Reassembling the chunks with [`Delta::from_chunks`] yields output
/// byte-identical to [`diff`] / [`diff_parallel`], with identical
/// [`Cost`] totals. Sub-threshold or single-worker inputs run the
/// sequential walk through the same chunk sink.
pub fn diff_streaming(
    sig: &Signature,
    new: &[u8],
    params: &DeltaParams,
    workers: usize,
    cost: &mut Cost,
    chunk_budget: usize,
    emit: impl FnMut(DeltaChunk),
) {
    debug_assert_eq!(sig.block_size, params.block_size);
    let bs = sig.block_size;
    let mut sink = ChunkSink::new(chunk_budget, emit);
    if workers <= 1 || new.len() < params.min_parallel_bytes {
        diff_with_sink(
            new,
            bs,
            cost,
            Some(&sig.filter),
            |weak| sig.lookup_weak(weak),
            |window, candidates, cost| {
                let digest = md5(window);
                cost.bytes_strong_hashed += window.len() as u64;
                cost.ops += 1;
                candidates.iter().find(|&b| sig.strong[b as usize] == digest)
            },
            |block_idx| sig.block_range(block_idx),
            &mut sink,
        );
    } else {
        let probe = probe_md5(sig);
        scan_streaming(new, bs, workers, &probe, |feed| {
            replay_with(
                new,
                bs,
                feed,
                cost,
                |cost, bytes, ops| {
                    cost.bytes_strong_hashed += bytes;
                    cost.ops += ops;
                },
                |block_idx| sig.block_range(block_idx),
                |pos| {
                    let window = &new[pos..pos + bs];
                    probe(RollingChecksum::new(window).digest(), window)
                },
                &mut sink,
            );
        });
    }
    sink.finish();
}

/// Hierarchical coarse→fine variant of [`diff_parallel`].
///
/// Unlike the other rsync entry points this needs the *old file content*
/// (`old`), not just its [`Signature`] — the shingle tree pairs old and
/// new spans byte-for-byte. That is exactly the paper's client-side
/// offloading setting (§IV-B): the machine running the diff holds both
/// versions, and the signature is only reused so the `Cost` model and
/// output stay those of rsync. `old` must be the file `sig` was computed
/// from. Output and [`Cost`] are byte-identical to [`diff`]'s.
pub fn diff_hierarchical(
    sig: &Signature,
    old: &[u8],
    new: &[u8],
    h: &HierarchyParams,
    params: &DeltaParams,
    workers: usize,
    cost: &mut Cost,
) -> Delta {
    debug_assert_eq!(sig.block_size, params.block_size);
    debug_assert_eq!(sig.old_len, old.len() as u64);
    if new.len() < h.min_file_bytes || new.len() < params.block_size {
        return diff_parallel(sig, new, params, workers, cost);
    }
    let mut sink = MaterializeSink::new();
    diff_hier_md5(sig, old, new, h, workers, cost, &mut sink);
    sink.into_delta()
}

/// Streaming form of [`diff_hierarchical`]: chunked like
/// [`diff_streaming`], same identity contract.
#[allow(clippy::too_many_arguments)] // mirrors diff_streaming's signature plus the hierarchy knobs
pub fn diff_hierarchical_streaming(
    sig: &Signature,
    old: &[u8],
    new: &[u8],
    h: &HierarchyParams,
    params: &DeltaParams,
    workers: usize,
    cost: &mut Cost,
    chunk_budget: usize,
    emit: impl FnMut(DeltaChunk),
) {
    debug_assert_eq!(sig.block_size, params.block_size);
    debug_assert_eq!(sig.old_len, old.len() as u64);
    if new.len() < h.min_file_bytes || new.len() < params.block_size {
        return diff_streaming(sig, new, params, workers, cost, chunk_budget, emit);
    }
    let mut sink = ChunkSink::new(chunk_budget, emit);
    diff_hier_md5(sig, old, new, h, workers, cost, &mut sink);
    sink.finish();
}

/// The md5-confirming hierarchical walk behind both entry points.
fn diff_hier_md5<S: OpSink>(
    sig: &Signature,
    old: &[u8],
    new: &[u8],
    h: &HierarchyParams,
    workers: usize,
    cost: &mut Cost,
    sink: &mut S,
) {
    let bs = sig.block_size;
    let probe = probe_md5(sig);
    // Metadata self-probe: a span-aligned window IS old block `block`
    // (full length), so its MD5 equals the signature's stored strong sum
    // and its weak digest is the stored weak sum. The sequential probe's
    // answer — first candidate whose strong sum equals the window's —
    // is therefore derivable from signature metadata alone, with the
    // same `(window.len(), 1)` charge `probe_md5` reports.
    let self_probe_meta = |block: u32| -> Option<ProbeOutcome> {
        let candidates = sig.lookup_weak(sig.weak[block as usize])?;
        let digest = sig.strong[block as usize];
        let matched = candidates.iter().find(|&b| sig.strong[b as usize] == digest);
        Some((matched, bs as u64, 1))
    };
    diff_hier_sink(
        old,
        new,
        bs,
        h,
        workers.max(1),
        &probe,
        self_probe_meta,
        cost,
        |cost, bytes, ops| {
            cost.bytes_strong_hashed += bytes;
            cost.ops += ops;
        },
        |block_idx| sig.block_range(block_idx),
        sink,
    );
}

/// Shared rolling-window matcher used by both the remote ([`diff`]) and the
/// local bitwise variant (`local::diff`).
///
/// `lookup` maps a weak digest to its candidate set; `confirm` verifies a
/// candidate (MD5 or bitwise compare); `block_range` maps a confirmed
/// block index to its (offset, len) in the old file.
pub(crate) fn diff_with<'a>(
    new: &[u8],
    block_size: usize,
    cost: &mut Cost,
    filter: Option<&WeakFilter>,
    lookup: impl Fn(u32) -> Option<&'a CandidateSet>,
    confirm: impl FnMut(&[u8], &CandidateSet, &mut Cost) -> Option<u32>,
    block_range: impl Fn(u32) -> (u64, u64),
) -> Delta {
    let mut sink = MaterializeSink::new();
    diff_with_sink(
        new, block_size, cost, filter, lookup, confirm, block_range, &mut sink,
    );
    sink.into_delta()
}

/// Sink-generic form of [`diff_with`]: identical walk, but ops go to an
/// [`OpSink`] so the streaming paths reuse the exact traversal.
///
/// With a `filter`, the miss loop advances word-wise: instead of rolling
/// one byte at a time, it peeks the next 8 window positions
/// ([`RollingChecksum::peek8`]) and jumps straight to the first whose
/// weak digest the filter deems plausible. Filter-implausible positions
/// are *provably* lookup misses — and a lookup miss charges nothing but
/// its one rolled byte, which the jump still charges per position skipped
/// — so output and [`Cost`] are identical to the byte-at-a-time walk.
#[allow(clippy::too_many_arguments)]
pub(crate) fn diff_with_sink<'a, S: OpSink>(
    new: &[u8],
    block_size: usize,
    cost: &mut Cost,
    filter: Option<&WeakFilter>,
    lookup: impl Fn(u32) -> Option<&'a CandidateSet>,
    mut confirm: impl FnMut(&[u8], &CandidateSet, &mut Cost) -> Option<u32>,
    block_range: impl Fn(u32) -> (u64, u64),
    sink: &mut S,
) {
    let mut literal_start = 0usize;
    let mut pos = 0usize;

    let flush_literal = |sink: &mut S, from: usize, to: usize, cost: &mut Cost| {
        if to > from {
            sink.literal(&new[from..to]);
            cost.bytes_copied += (to - from) as u64;
        }
    };

    if new.len() >= block_size {
        let mut rc = RollingChecksum::new(&new[..block_size]);
        cost.bytes_rolled += block_size as u64;
        loop {
            let window = &new[pos..pos + block_size];
            let matched =
                lookup(rc.digest()).and_then(|candidates| confirm(window, candidates, cost));
            if let Some(block_idx) = matched {
                flush_literal(sink, literal_start, pos, cost);
                let (offset, len) = block_range(block_idx);
                sink.copy(offset, len);
                pos += block_size;
                literal_start = pos;
                if pos + block_size > new.len() {
                    break;
                }
                rc = RollingChecksum::new(&new[pos..pos + block_size]);
                cost.bytes_rolled += block_size as u64;
            } else {
                if pos + block_size >= new.len() {
                    break;
                }
                if let Some(filter) = filter {
                    if pos + block_size + 8 <= new.len() {
                        let outs: [u8; 8] =
                            new[pos..pos + 8].try_into().expect("8-byte out window");
                        let ins: [u8; 8] = new[pos + block_size..pos + block_size + 8]
                            .try_into()
                            .expect("8-byte in window");
                        let states = rc.peek8(&outs, &ins);
                        // Jump to the first plausible upcoming position, or
                        // past all 8 when none is; each skipped position is
                        // a proven miss and charges its one rolled byte.
                        let k = states
                            .iter()
                            .position(|s| filter.plausible(s.digest()))
                            .unwrap_or(7);
                        rc = states[k];
                        cost.bytes_rolled += k as u64 + 1;
                        pos += k + 1;
                        continue;
                    }
                }
                rc.roll(new[pos], new[pos + block_size]);
                cost.bytes_rolled += 1;
                pos += 1;
            }
        }
    }
    flush_literal(sink, literal_start, new.len(), cost);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(old: &[u8], new: &[u8], bs: usize) -> (Delta, Cost) {
        let params = DeltaParams::with_block_size(bs);
        let mut cost = Cost::new();
        let sig = signature(old, &params, &mut cost);
        let delta = diff(&sig, new, &params, &mut cost);
        assert_eq!(delta.apply(old).unwrap(), new, "reconstruction mismatch");
        (delta, cost)
    }

    #[test]
    fn identical_files_are_all_copies() {
        let data = b"0123456789abcdef".repeat(64);
        let (delta, _) = roundtrip(&data, &data, 16);
        assert_eq!(delta.literal_bytes(), 0);
        assert_eq!(delta.copy_bytes(), data.len() as u64);
    }

    #[test]
    fn single_byte_flip_costs_one_block() {
        let old = b"0123456789abcdef".repeat(64);
        let mut new = old.clone();
        new[100] = b'!';
        let (delta, _) = roundtrip(&old, &new, 16);
        assert_eq!(delta.literal_bytes(), 16);
    }

    #[test]
    fn insertion_shifts_are_resynchronized() {
        // This is rsync's raison d'être: data shifted by an insertion is
        // still matched via the rolling checksum.
        let old: Vec<u8> = (0..4096u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut new = old.clone();
        new.splice(1000..1000, b"INSERTED".iter().copied());
        let (delta, _) = roundtrip(&old, &new, 64);
        // Most of the file should still be copies.
        assert!(delta.copy_bytes() as usize > old.len() * 9 / 10);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        roundtrip(b"", b"", 16);
        roundtrip(b"", b"abc", 16);
        roundtrip(b"abc", b"", 16);
        roundtrip(b"abc", b"abc", 16);
        roundtrip(b"short", b"sh", 16);
    }

    #[test]
    fn appended_tail_is_literal_only_for_tail() {
        let old = vec![7u8; 1024];
        let mut new = old.clone();
        new.extend_from_slice(&[9u8; 100]);
        let (delta, _) = roundtrip(&old, &new, 64);
        assert_eq!(delta.copy_bytes(), 1024);
        assert_eq!(delta.literal_bytes(), 100);
    }

    #[test]
    fn cost_charges_signature_and_scan() {
        let old = vec![1u8; 4096];
        let new = vec![2u8; 4096];
        let params = DeltaParams::with_block_size(256);
        let mut cost = Cost::new();
        let sig = signature(&old, &params, &mut cost);
        assert_eq!(cost.bytes_strong_hashed, 4096);
        assert_eq!(cost.bytes_rolled, 4096);
        let before = cost;
        let _ = diff(&sig, &new, &params, &mut cost);
        assert!(cost.bytes_rolled > before.bytes_rolled);
    }

    #[test]
    fn signature_wire_size_counts_blocks() {
        let params = DeltaParams::with_block_size(100);
        let mut cost = Cost::new();
        let sig = signature(&vec![0u8; 250], &params, &mut cost);
        assert_eq!(sig.block_count(), 3);
        assert_eq!(sig.wire_size(), 60);
        assert_eq!(sig.old_len(), 250);
        assert_eq!(sig.block_size(), 100);
    }

    #[test]
    fn weak_collision_is_rescued_by_strong_check() {
        // Two different blocks engineered to share a weak checksum: "ab" vs
        // "ba" differ, but craft data where sums collide: [1,3] and [2,2]
        // have equal byte sums and equal positional sums? a=4 both; b: for
        // [1,3]: 2*1+1*3=5; for [2,2]: 2*2+1*2=6 — not colliding. Use
        // [0,4] vs [2,2]: b=4 vs 6. Try [3,1] vs [1,3]: b=7 vs 5.
        // Construct collision directly: blocks [x,y] and [x+1, y-1] have
        // a equal; b differs by 1. Instead use length-1 blocks where weak
        // is the byte itself: no collision possible. So simply verify that
        // a strong mismatch with equal weak emits a literal, via the
        // block at a *different* position trick: old "aa" occurs, new has
        // "aa" too — matches fine. The practical guarantee is covered by
        // reconstruction equality on random data below.
        let mut rng_state = 0x12345678u64;
        let mut next = move || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (rng_state >> 33) as u8
        };
        let old: Vec<u8> = (0..10_000).map(|_| next()).collect();
        let new: Vec<u8> = (0..10_000).map(|_| next()).collect();
        roundtrip(&old, &new, 32);
    }

    #[test]
    fn parallel_output_is_byte_identical() {
        let old: Vec<u8> = (0..20_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut new = old.clone();
        new.splice(3_000..3_000, b"SHIFTED".iter().copied());
        new[60_000] ^= 0x55;
        let params = DeltaParams::with_block_size(256).with_min_parallel_bytes(0);
        let mut c_sig = Cost::new();
        let sig = signature(&old, &params, &mut c_sig);
        let mut c_seq = Cost::new();
        let d_seq = diff(&sig, &new, &params, &mut c_seq);
        for workers in [2, 3, 4, 6] {
            let mut c_par = Cost::new();
            let d_par = diff_parallel(&sig, &new, &params, workers, &mut c_par);
            assert_eq!(d_par, d_seq, "delta differs with {workers} workers");
            assert_eq!(c_par, c_seq, "cost differs with {workers} workers");
        }
    }

    /// Runs the sink walk with and without the weak filter and demands
    /// identical deltas and identical `Cost` totals — the skip must be
    /// decision-neutral at every boundary (tiny blocks, block sizes under
    /// the 8-byte lookahead, tails shorter than a word, dense matches).
    fn assert_filter_is_decision_neutral(old: &[u8], new: &[u8], bs: usize) {
        use crate::stream::MaterializeSink;
        let params = DeltaParams::with_block_size(bs);
        let mut c_sig = Cost::new();
        let sig = signature(old, &params, &mut c_sig);
        let run = |filter: Option<&WeakFilter>| {
            let mut cost = Cost::new();
            let mut sink = MaterializeSink::new();
            diff_with_sink(
                new,
                bs,
                &mut cost,
                filter,
                |weak| sig.weak_map.get(&weak),
                |window, candidates, cost| {
                    let digest = md5(window);
                    cost.bytes_strong_hashed += window.len() as u64;
                    cost.ops += 1;
                    candidates.iter().find(|&b| sig.strong[b as usize] == digest)
                },
                |block_idx| sig.block_range(block_idx),
                &mut sink,
            );
            (sink.into_delta(), cost)
        };
        let (d_plain, c_plain) = run(None);
        let (d_filt, c_filt) = run(Some(&sig.filter));
        assert_eq!(d_filt, d_plain, "delta drifted (bs {bs})");
        assert_eq!(c_filt, c_plain, "cost drifted (bs {bs})");
        assert_eq!(d_filt.apply(old).unwrap(), new);
    }

    #[test]
    fn filter_skip_is_decision_neutral_on_boundaries() {
        let mut state = 0xB5297A4Du64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u8
        };
        let old: Vec<u8> = (0..4_096).map(|_| next()).collect();
        // Disjoint new: every position is a miss, maximal skipping.
        let disjoint: Vec<u8> = (0..4_096).map(|_| next()).collect();
        // Shifted new: matches resume mid-walk after an unaligned insert.
        let mut shifted = old.clone();
        shifted.splice(333..333, [0xAB; 11]);
        // Dense-match new: every window hits (no skipping possible).
        let dense = old.clone();
        for new in [&disjoint, &shifted, &dense] {
            // Block sizes straddling the 8-byte lookahead, plus lengths
            // that leave 0..8 tail bytes after the last full window.
            for bs in [4usize, 7, 8, 9, 64] {
                assert_filter_is_decision_neutral(&old, new, bs);
                for trim in 1..9 {
                    assert_filter_is_decision_neutral(&old, &new[..new.len() - trim], bs);
                }
            }
        }
        // Degenerate inputs around the lookahead guard.
        for len in [0usize, 3, 8, 9, 15, 16, 17] {
            assert_filter_is_decision_neutral(&old, &disjoint[..len], 8);
        }
    }

    #[test]
    fn hierarchical_output_is_byte_identical() {
        use crate::cdc::CdcParams;
        let old: Vec<u8> = (0..20_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut new = vec![0x42; 333];
        new.extend_from_slice(&old);
        new.splice(3_000..3_000, b"SHIFTED".iter().copied());
        new[60_000] ^= 0x55;
        let params = DeltaParams::with_block_size(256);
        let h = HierarchyParams::from_levels(&[
            CdcParams {
                min_size: 128,
                mask_bits: 7,
                max_size: 2048,
            },
            CdcParams {
                min_size: 32,
                mask_bits: 5,
                max_size: 512,
            },
        ])
        .with_min_file_bytes(0);
        let mut c_sig = Cost::new();
        let sig = signature(&old, &params, &mut c_sig);
        let mut c_seq = Cost::new();
        let d_seq = diff(&sig, &new, &params, &mut c_seq);
        for workers in [1, 2, 4] {
            let mut c_h = Cost::new();
            let d_h = diff_hierarchical(&sig, &old, &new, &h, &params, workers, &mut c_h);
            let stats = crate::take_hierarchy_stats();
            assert_eq!(d_h, d_seq, "delta differs ({workers} workers)");
            assert_eq!(c_h, c_seq, "cost differs ({workers} workers)");
            assert!(stats.engaged());
        }
        for budget in [128usize, 4096] {
            let mut c_h = Cost::new();
            let mut chunks = Vec::new();
            diff_hierarchical_streaming(&sig, &old, &new, &h, &params, 2, &mut c_h, budget, |c| {
                chunks.push(c)
            });
            let _ = crate::take_hierarchy_stats();
            assert!(chunks.iter().all(|c| c.literal_bytes() <= budget as u64));
            assert_eq!(Delta::from_chunks(chunks), d_seq, "budget {budget}");
            assert_eq!(c_h, c_seq, "budget {budget}");
        }
    }

    #[test]
    fn streaming_chunks_reassemble_byte_identically() {
        let old: Vec<u8> = (0..20_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut new = old.clone();
        new.splice(3_000..3_000, b"SHIFTED".iter().copied());
        new[60_000] ^= 0x55;
        let params = DeltaParams::with_block_size(256).with_min_parallel_bytes(0);
        let mut c_sig = Cost::new();
        let sig = signature(&old, &params, &mut c_sig);
        let mut c_seq = Cost::new();
        let d_seq = diff(&sig, &new, &params, &mut c_seq);
        for workers in [1, 3] {
            for budget in [128usize, 4096] {
                let mut c_str = Cost::new();
                let mut chunks = Vec::new();
                diff_streaming(&sig, &new, &params, workers, &mut c_str, budget, |c| {
                    chunks.push(c)
                });
                assert!(chunks.iter().all(|c| c.literal_bytes() <= budget as u64));
                let d_str = Delta::from_chunks(chunks);
                assert_eq!(d_str, d_seq, "{workers} workers, budget {budget}");
                assert_eq!(c_str, c_seq, "{workers} workers, budget {budget}");
            }
        }
    }
}
