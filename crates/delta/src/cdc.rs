//! Content-defined chunking (CDC) with a gear hash.
//!
//! This is the LBFS/Seafile approach (paper §II-A): chunk boundaries are
//! chosen where a rolling fingerprint of the content matches a mask, so an
//! insertion only perturbs the chunk it lands in — no per-byte strong
//! hashing is needed on unchanged regions. Seafile runs CDC with an average
//! chunk size of 1 MB, which is why its CPU usage is moderate but its
//! network usage is poor: touching one byte re-uploads a ~1 MB chunk.

use std::sync::OnceLock;

use crate::cost::Cost;

/// Parameters for the gear-hash chunker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CdcParams {
    /// Minimum chunk length in bytes (boundaries are suppressed below it).
    pub min_size: usize,
    /// Number of mask bits; the average chunk size is `min_size + 2^mask_bits`.
    pub mask_bits: u32,
    /// Hard maximum chunk length in bytes.
    pub max_size: usize,
}

impl CdcParams {
    /// Seafile's defaults: ~1 MB average chunks.
    pub fn seafile() -> Self {
        CdcParams {
            min_size: 256 * 1024,
            mask_bits: 20,
            max_size: 4 * 1024 * 1024,
        }
    }

    /// Small chunks (~4 KB average), as used by Ori and LBFS-style systems.
    pub fn fine() -> Self {
        CdcParams {
            min_size: 1024,
            mask_bits: 12,
            max_size: 64 * 1024,
        }
    }

    /// The boundary mask derived from `mask_bits`.
    fn mask(&self) -> u64 {
        (1u64 << self.mask_bits) - 1
    }
}

impl Default for CdcParams {
    fn default() -> Self {
        Self::seafile()
    }
}

/// A chunk of a file identified by content-defined boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkSpan {
    /// Byte offset of the chunk within the file.
    pub offset: u64,
    /// Chunk length in bytes.
    pub len: u64,
}

impl ChunkSpan {
    /// The chunk's bytes within `data`.
    ///
    /// # Panics
    ///
    /// Panics if the span does not lie within `data`.
    pub fn slice<'a>(&self, data: &'a [u8]) -> &'a [u8] {
        &data[self.offset as usize..(self.offset + self.len) as usize]
    }
}

pub(crate) fn gear_table() -> &'static [u64; 256] {
    static TABLE: OnceLock<[u64; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        // splitmix64 from a fixed seed: deterministic across runs/platforms.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut table = [0u64; 256];
        for entry in &mut table {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            *entry = z ^ (z >> 31);
        }
        table
    })
}

/// Splits `data` into content-defined chunks.
///
/// Charges one gear-scan pass over `data` to `cost.bytes_chunked`.
/// Always returns at least one chunk for non-empty input; chunk spans
/// partition the input exactly.
pub fn chunks(data: &[u8], params: &CdcParams, cost: &mut Cost) -> Vec<ChunkSpan> {
    let table = gear_table();
    let mask = params.mask();
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut hash: u64 = 0;
    let mut i = 0usize;
    cost.bytes_chunked += data.len() as u64;
    while i < data.len() {
        hash = (hash << 1).wrapping_add(table[data[i] as usize]);
        let len = i - start + 1;
        let boundary = (len >= params.min_size && (hash & mask) == 0) || len >= params.max_size;
        if boundary {
            out.push(ChunkSpan {
                offset: start as u64,
                len: len as u64,
            });
            cost.ops += 1;
            start = i + 1;
            hash = 0;
        }
        i += 1;
    }
    if start < data.len() {
        out.push(ChunkSpan {
            offset: start as u64,
            len: (data.len() - start) as u64,
        });
        cost.ops += 1;
    }
    out
}

/// Gear bytes that must be hashed before a boundary decision is
/// meaningful: the 64-bit gear hash shifts one bit per byte, so after 64
/// bytes the fingerprint depends only on the trailing window — which is
/// what lets [`cut_spans_sparse`] skip the guaranteed-boundary-free
/// `min_size` prefix of every chunk without changing which boundaries are
/// content-defined.
pub(crate) const GEAR_WARMUP: usize = 64;

/// Like [`chunks`], but skips the gear scan over the first
/// `min_size - GEAR_WARMUP` bytes of every chunk: boundaries are
/// suppressed there anyway, and the gear fingerprint only ever depends on
/// the last [`GEAR_WARMUP`] bytes, so warming the hash up just before the
/// earliest legal boundary yields the same *kind* of content-defined cut
/// at a fraction of the scan cost. Used by the hierarchy shingle levels,
/// where chunks are megabytes and a full-byte scan would dominate.
///
/// The cut points differ from [`chunks`]' in general (the hash is not
/// seeded by the skipped prefix) but are equally deterministic and
/// content-defined, which is all the shingle matcher needs — both sides
/// of a comparison must simply use the same cutter.
///
/// `hashed_bytes` is incremented by the number of bytes actually fed to
/// the gear hash (wall-clock overhead accounting for the caller).
pub(crate) fn cut_spans_sparse(
    data: &[u8],
    params: &CdcParams,
    hashed_bytes: &mut u64,
) -> Vec<ChunkSpan> {
    let table = gear_table();
    let mask = params.mask();
    let mut out = Vec::new();
    let mut start = 0usize;
    while start < data.len() {
        let remaining = data.len() - start;
        if remaining <= params.min_size {
            out.push(ChunkSpan {
                offset: start as u64,
                len: remaining as u64,
            });
            break;
        }
        let hash_from = start + params.min_size.saturating_sub(GEAR_WARMUP);
        let limit = (start + params.max_size).min(data.len());
        let mut hash: u64 = 0;
        let mut cut = limit;
        let mut i = hash_from;
        while i < limit {
            hash = (hash << 1).wrapping_add(table[data[i] as usize]);
            if i + 1 - start >= params.min_size && (hash & mask) == 0 {
                cut = i + 1;
                break;
            }
            i += 1;
        }
        *hashed_bytes += (cut.max(hash_from) - hash_from) as u64;
        out.push(ChunkSpan {
            offset: start as u64,
            len: (cut - start) as u64,
        });
        start = cut;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect()
    }

    fn small() -> CdcParams {
        CdcParams {
            min_size: 64,
            mask_bits: 8,
            max_size: 2048,
        }
    }

    #[test]
    fn chunks_partition_input_exactly() {
        let data = pseudo_random(100_000, 7);
        let mut cost = Cost::new();
        let spans = chunks(&data, &small(), &mut cost);
        let mut pos = 0u64;
        for s in &spans {
            assert_eq!(s.offset, pos);
            assert!(s.len > 0);
            pos += s.len;
        }
        assert_eq!(pos, data.len() as u64);
        assert_eq!(cost.bytes_chunked, data.len() as u64);
    }

    #[test]
    fn chunk_sizes_respect_min_and_max() {
        let data = pseudo_random(200_000, 11);
        let params = small();
        let spans = chunks(&data, &params, &mut Cost::new());
        for (i, s) in spans.iter().enumerate() {
            assert!(s.len as usize <= params.max_size);
            if i + 1 < spans.len() {
                assert!(s.len as usize >= params.min_size, "chunk {i} too small");
            }
        }
    }

    #[test]
    fn average_chunk_size_is_in_the_right_ballpark() {
        let data = pseudo_random(1_000_000, 13);
        let params = small();
        let spans = chunks(&data, &params, &mut Cost::new());
        let avg = data.len() / spans.len();
        let expected = params.min_size + (1 << params.mask_bits);
        // Within a factor of three of the analytic expectation.
        assert!(
            avg > expected / 3 && avg < expected * 3,
            "avg {avg}, expected around {expected}"
        );
    }

    #[test]
    fn insertion_only_perturbs_local_chunks() {
        let data = pseudo_random(300_000, 17);
        let mut edited = data.clone();
        edited.splice(150_000..150_000, pseudo_random(50, 19));
        let a = chunks(&data, &small(), &mut Cost::new());
        let b = chunks(&edited, &small(), &mut Cost::new());
        // Chunks strictly before the edit share identical spans.
        let before_edit = a
            .iter()
            .zip(b.iter())
            .take_while(|(x, y)| x == y && x.offset + x.len <= 150_000)
            .count();
        assert!(before_edit > 0, "no stable prefix chunks");
        // And a suffix of chunk *contents* re-synchronizes after the edit.
        let tail_a: Vec<&[u8]> = a.iter().rev().take(3).map(|s| s.slice(&data)).collect();
        let tail_b: Vec<&[u8]> = b.iter().rev().take(3).map(|s| s.slice(&edited)).collect();
        assert_eq!(tail_a, tail_b);
    }

    #[test]
    fn empty_input_yields_no_chunks() {
        assert!(chunks(&[], &small(), &mut Cost::new()).is_empty());
    }

    #[test]
    fn deterministic_across_calls() {
        let data = pseudo_random(50_000, 23);
        let a = chunks(&data, &small(), &mut Cost::new());
        let b = chunks(&data, &small(), &mut Cost::new());
        assert_eq!(a, b);
    }

    #[test]
    fn sparse_cuts_partition_input_exactly() {
        let data = pseudo_random(300_000, 31);
        let mut hashed = 0u64;
        let spans = cut_spans_sparse(&data, &small(), &mut hashed);
        let mut pos = 0u64;
        for s in &spans {
            assert_eq!(s.offset, pos);
            assert!(s.len > 0);
            pos += s.len;
        }
        assert_eq!(pos, data.len() as u64);
        // The whole point: far fewer bytes hashed than scanned.
        assert!(hashed < data.len() as u64);
    }

    #[test]
    fn sparse_cuts_respect_min_and_max() {
        let data = pseudo_random(200_000, 37);
        let params = small();
        let spans = cut_spans_sparse(&data, &params, &mut 0);
        for (i, s) in spans.iter().enumerate() {
            assert!(s.len as usize <= params.max_size);
            if i + 1 < spans.len() {
                assert!(s.len as usize >= params.min_size, "chunk {i} too small");
            }
        }
    }

    #[test]
    fn sparse_cuts_resynchronize_after_an_insertion() {
        // Content-defined: chunk *contents* after an insertion re-align
        // with the unedited file's chunks once the cutter passes the edit.
        let data = pseudo_random(300_000, 41);
        let mut edited = data.clone();
        edited.splice(150_000..150_000, pseudo_random(51, 43));
        let a = cut_spans_sparse(&data, &small(), &mut 0);
        let b = cut_spans_sparse(&edited, &small(), &mut 0);
        let tail_a: Vec<&[u8]> = a.iter().rev().take(3).map(|s| s.slice(&data)).collect();
        let tail_b: Vec<&[u8]> = b.iter().rev().take(3).map(|s| s.slice(&edited)).collect();
        assert_eq!(tail_a, tail_b);
    }

    #[test]
    fn sparse_cuts_are_deterministic_and_handle_edges() {
        assert!(cut_spans_sparse(&[], &small(), &mut 0).is_empty());
        let tiny = pseudo_random(10, 47);
        let spans = cut_spans_sparse(&tiny, &small(), &mut 0);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].len, 10);
        let data = pseudo_random(100_000, 53);
        assert_eq!(
            cut_spans_sparse(&data, &small(), &mut 0),
            cut_spans_sparse(&data, &small(), &mut 0)
        );
    }

    #[test]
    fn seafile_params_average_is_about_a_megabyte() {
        let p = CdcParams::seafile();
        assert_eq!(
            p.min_size + (1usize << p.mask_bits),
            256 * 1024 + 1024 * 1024
        );
    }
}
