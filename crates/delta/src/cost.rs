use deltacfs_obs::metric_struct;

metric_struct! {
    /// Work performed by delta-encoding primitives, in bytes touched.
    ///
    /// The paper's Table II reports CPU ticks; since a tick on an EC2 Xeon and
    /// a tick on a Galaxy Note3 are incomparable (the paper says so itself),
    /// the reproducible quantity is *how much work of each kind* an algorithm
    /// performs on identical input. `Cost` counts exactly that, and the
    /// platform profiles in `deltacfs-net` convert the counts into ticks with
    /// per-platform weights. Defined through [`metric_struct!`] so aggregation
    /// ([`Merge`](deltacfs_obs::Merge)) and registry export
    /// ([`Cost::export_counters`]) always cover every field.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct Cost {
        /// Bytes fed through the rolling checksum (one per window slide).
        pub bytes_rolled: u64,
        /// Bytes fed through a strong checksum (MD5).
        pub bytes_strong_hashed: u64,
        /// Bytes compared bitwise (the paper's replacement for MD5 in triggered
        /// delta encoding).
        pub bytes_compared: u64,
        /// Bytes scanned by the content-defined chunker.
        pub bytes_chunked: u64,
        /// Bytes fed through the compressor.
        pub bytes_compressed: u64,
        /// Bytes memcpy'ed while assembling deltas/literals.
        pub bytes_copied: u64,
        /// Bytes read from the backing file system by the engine itself
        /// (delta scans, signature computation — the IO-amplification the
        /// paper measured at 700 MB for Dropbox on the WeChat test).
        pub bytes_engine_read: u64,
        /// Number of primitive invocations (block hashes, chunk boundaries...).
        pub ops: u64,
    }
}

impl Cost {
    /// A zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds another accumulator into this one.
    pub fn merge(&mut self, other: &Cost) {
        deltacfs_obs::Merge::merge_from(self, other);
    }

    /// Total bytes touched by any primitive; a crude single-number summary.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_rolled
            + self.bytes_strong_hashed
            + self.bytes_compared
            + self.bytes_chunked
            + self.bytes_compressed
            + self.bytes_copied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_every_field() {
        let one = Cost {
            bytes_rolled: 1,
            bytes_strong_hashed: 2,
            bytes_compared: 3,
            bytes_chunked: 4,
            bytes_compressed: 5,
            bytes_copied: 6,
            bytes_engine_read: 7,
            ops: 8,
        };
        let mut acc = Cost::new();
        acc.merge(&one);
        acc.merge(&one);
        assert_eq!(acc.bytes_rolled, 2);
        assert_eq!(acc.bytes_engine_read, 14);
        assert_eq!(acc.ops, 16);
        assert_eq!(acc.total_bytes(), 2 * (1 + 2 + 3 + 4 + 5 + 6));
    }

    #[test]
    fn export_covers_every_field() {
        let reg = deltacfs_obs::Registry::new();
        let mut c = Cost::new();
        c.bytes_rolled = 11;
        c.ops = 13;
        c.export_counters(&reg, "delta_cost", None);
        let prom = reg.snapshot().to_prometheus();
        assert!(prom.contains("delta_cost_bytes_rolled 11"), "{prom}");
        assert!(prom.contains("delta_cost_ops 13"), "{prom}");
        assert!(prom.contains("delta_cost_bytes_engine_read 0"), "{prom}");
    }
}
