//! Weak-checksum candidate maps shared by the block-matching diffs.
//!
//! Two pieces live here:
//!
//! * [`CandidateSet`] — the value type of every weak map. Almost all weak
//!   checksums identify exactly one block, so the first candidate is stored
//!   inline and the overflow `Vec` is only allocated on a real collision.
//!   This removes one heap allocation per *block* of the old file compared
//!   to the previous `Vec<u32>`-per-entry representation.
//! * [`WeakIndex`] — a sharded weak map (shard = `weak % nshards`) built by
//!   a two-phase scoped worker pool, used by the parallel diff pipeline.
//!   Candidates are inserted in increasing block-index order globally, so
//!   candidate iteration order — and therefore match selection — is
//!   identical to the sequential single-map build.

use std::collections::HashMap;

use crate::rolling::RollingChecksum;

/// Block indices sharing one weak checksum, first candidate inline.
///
/// Iteration yields candidates in insertion order, which every builder in
/// this crate keeps equal to increasing block-index order — the order the
/// determinism contract of the parallel pipeline relies on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CandidateSet {
    first: u32,
    overflow: Vec<u32>,
}

impl CandidateSet {
    /// A set holding a single candidate, allocation-free.
    pub(crate) fn new(first: u32) -> Self {
        CandidateSet {
            first,
            overflow: Vec::new(),
        }
    }

    /// Appends a colliding candidate (allocates only now).
    pub(crate) fn push(&mut self, idx: u32) {
        self.overflow.push(idx);
    }

    /// Candidates in insertion (block-index) order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        std::iter::once(self.first).chain(self.overflow.iter().copied())
    }

    /// Number of candidates in the set.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        1 + self.overflow.len()
    }
}

/// Inserts `idx` under `weak`, preserving block-index insertion order.
pub(crate) fn insert_candidate(map: &mut HashMap<u32, CandidateSet>, weak: u32, idx: u32) {
    map.entry(weak)
        .and_modify(|set| set.push(idx))
        .or_insert_with(|| CandidateSet::new(idx));
}

/// A weak map sharded by `weak % nshards`, safe to share read-only across
/// the diff worker pool.
#[derive(Debug)]
pub(crate) struct WeakIndex {
    shards: Vec<HashMap<u32, CandidateSet>>,
}

impl WeakIndex {
    /// Looks up the candidate set for `weak`, if any.
    #[inline]
    pub(crate) fn lookup(&self, weak: u32) -> Option<&CandidateSet> {
        self.shards[weak as usize % self.shards.len()].get(&weak)
    }

    /// Indexes the blocks of `old` across `workers` threads.
    ///
    /// Phase 1 splits the blocks into contiguous ranges and computes
    /// `(weak, block index)` pairs per range; phase 2 has each shard owner
    /// walk the ranges *in order* and keep the pairs landing in its shard,
    /// so per-weak candidate order is increasing block index — exactly
    /// what the sequential single-map build produces.
    pub(crate) fn build_parallel(old: &[u8], block_size: usize, workers: usize) -> Self {
        let nblocks = old.len().div_ceil(block_size);
        let workers = workers.clamp(1, nblocks.max(1));
        let per_range = nblocks.div_ceil(workers).max(1);
        let mut pairs: Vec<Vec<(u32, u32)>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let lo = (w * per_range).min(nblocks);
                    let hi = ((w + 1) * per_range).min(nblocks);
                    s.spawn(move || {
                        (lo..hi)
                            .map(|i| {
                                let start = i * block_size;
                                let end = (start + block_size).min(old.len());
                                let weak = RollingChecksum::new(&old[start..end]).digest();
                                (weak, i as u32)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            pairs = handles
                .into_iter()
                .map(|h| h.join().expect("index worker panicked"))
                .collect();
        });
        let nshards = workers;
        let mut shards: Vec<HashMap<u32, CandidateSet>> = Vec::new();
        std::thread::scope(|s| {
            let pairs = &pairs;
            let handles: Vec<_> = (0..nshards)
                .map(|shard| {
                    s.spawn(move || {
                        let mut map = HashMap::new();
                        for range in pairs {
                            for &(weak, idx) in range {
                                if weak as usize % nshards == shard {
                                    insert_candidate(&mut map, weak, idx);
                                }
                            }
                        }
                        map
                    })
                })
                .collect();
            shards = handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect();
        });
        WeakIndex { shards }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_set_keeps_insertion_order() {
        let mut set = CandidateSet::new(3);
        set.push(7);
        set.push(11);
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![3, 7, 11]);
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn first_candidate_is_allocation_free() {
        let set = CandidateSet::new(5);
        assert_eq!(set.overflow.capacity(), 0);
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn sharded_index_matches_sequential_map() {
        // Repetitive content forces weak collisions across ranges.
        let old: Vec<u8> = b"abcdabcdXYabcdabcd".repeat(57);
        let bs = 4;
        let mut seq: HashMap<u32, CandidateSet> = HashMap::new();
        for (i, block) in old.chunks(bs).enumerate() {
            insert_candidate(&mut seq, RollingChecksum::new(block).digest(), i as u32);
        }
        for workers in [1, 2, 3, 5, 8] {
            let index = WeakIndex::build_parallel(&old, bs, workers);
            for (weak, set) in &seq {
                let got = index.lookup(*weak).expect("weak value present");
                assert_eq!(
                    got.iter().collect::<Vec<_>>(),
                    set.iter().collect::<Vec<_>>(),
                    "candidate order differs at weak {weak:#x} with {workers} workers"
                );
            }
        }
    }

    #[test]
    fn empty_old_builds_empty_index() {
        let index = WeakIndex::build_parallel(&[], 16, 4);
        assert_eq!(index.lookup(0), None);
    }
}
