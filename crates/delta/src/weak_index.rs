//! Weak-checksum candidate maps shared by the block-matching diffs.
//!
//! Two pieces live here:
//!
//! * [`CandidateSet`] — the value type of every weak map. Almost all weak
//!   checksums identify exactly one block, so the first candidate is stored
//!   inline and the overflow `Vec` is only allocated on a real collision.
//!   This removes one heap allocation per *block* of the old file compared
//!   to the previous `Vec<u32>`-per-entry representation.
//! * [`WeakIndex`] — a sharded weak map (shard = `weak % nshards`) built by
//!   a two-phase scoped worker pool, used by the parallel diff pipeline.
//!   Candidates are inserted in increasing block-index order globally, so
//!   candidate iteration order — and therefore match selection — is
//!   identical to the sequential single-map build.
//! * [`WeakFilter`] — a pair of 64 Kbit membership bitmaps over the two
//!   16-bit halves of the weak digest. A filter miss *proves* a weak-map
//!   miss (the filter is a superset of the map's key set), so the hot
//!   miss loops can skip the hash probe — and, with
//!   [`RollingChecksum::peek8`](crate::RollingChecksum::peek8), skip whole
//!   words of implausible positions — without ever changing a match
//!   decision.

use std::collections::HashMap;

use crate::rolling::RollingChecksum;

/// Block indices sharing one weak checksum, first candidate inline.
///
/// Iteration yields candidates in insertion order, which every builder in
/// this crate keeps equal to increasing block-index order — the order the
/// determinism contract of the parallel pipeline relies on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CandidateSet {
    first: u32,
    overflow: Vec<u32>,
}

impl CandidateSet {
    /// A set holding a single candidate, allocation-free.
    pub(crate) fn new(first: u32) -> Self {
        CandidateSet {
            first,
            overflow: Vec::new(),
        }
    }

    /// Appends a colliding candidate (allocates only now).
    pub(crate) fn push(&mut self, idx: u32) {
        self.overflow.push(idx);
    }

    /// Candidates in insertion (block-index) order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        std::iter::once(self.first).chain(self.overflow.iter().copied())
    }

    /// Number of candidates in the set.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        1 + self.overflow.len()
    }
}

/// Inserts `idx` under `weak`, preserving block-index insertion order.
pub(crate) fn insert_candidate(map: &mut HashMap<u32, CandidateSet>, weak: u32, idx: u32) {
    map.entry(weak)
        .and_modify(|set| set.push(idx))
        .or_insert_with(|| CandidateSet::new(idx));
}

/// A conservative membership test over weak digests: two 64 Kbit bitmaps,
/// one indexed by the low 16 bits of the digest (`a`, the byte sum) and
/// one by the high 16 bits (`b`, the positional sum).
///
/// The invariant the miss-skip optimization rests on: every weak digest
/// inserted sets both its bits, so `!plausible(weak)` **implies** the weak
/// map has no entry for `weak`. False positives (both bits set by
/// different digests) merely fall through to the map probe; false
/// negatives cannot occur, so consulting the filter first can never
/// change a lookup result — only skip provably-fruitless probes.
#[derive(Debug, Clone)]
pub(crate) struct WeakFilter {
    lo: Box<[u64; 1024]>,
    hi: Box<[u64; 1024]>,
}

impl WeakFilter {
    /// An empty filter (rejects everything).
    pub(crate) fn new() -> Self {
        WeakFilter {
            lo: Box::new([0u64; 1024]),
            hi: Box::new([0u64; 1024]),
        }
    }

    /// Builds a filter covering every digest in `weaks`.
    pub(crate) fn from_weak_keys(weaks: impl Iterator<Item = u32>) -> Self {
        let mut f = Self::new();
        for weak in weaks {
            f.insert(weak);
        }
        f
    }

    /// Marks `weak` as present.
    #[inline]
    pub(crate) fn insert(&mut self, weak: u32) {
        let a = (weak & 0xffff) as usize;
        let b = (weak >> 16) as usize;
        self.lo[a / 64] |= 1 << (a % 64);
        self.hi[b / 64] |= 1 << (b % 64);
    }

    /// Whether `weak` *might* be in the map. `false` is definitive.
    #[inline]
    pub(crate) fn plausible(&self, weak: u32) -> bool {
        let a = (weak & 0xffff) as usize;
        let b = (weak >> 16) as usize;
        (self.lo[a / 64] >> (a % 64)) & 1 == 1 && (self.hi[b / 64] >> (b % 64)) & 1 == 1
    }
}

/// A weak map sharded by `weak % nshards`, safe to share read-only across
/// the diff worker pool.
#[derive(Debug)]
pub(crate) struct WeakIndex {
    shards: Vec<HashMap<u32, CandidateSet>>,
    filter: WeakFilter,
    /// Weak digest of each old block, indexed by block number — the
    /// census the hierarchical matcher's metadata self-probe reads so a
    /// span-aligned block answers its own probe without re-checksumming.
    digests: Vec<u32>,
}

impl WeakIndex {
    /// Looks up the candidate set for `weak`, if any. The filter
    /// fast-path rejects most misses without touching a shard map; by the
    /// [`WeakFilter`] superset invariant the result is unchanged.
    #[inline]
    pub(crate) fn lookup(&self, weak: u32) -> Option<&CandidateSet> {
        if !self.filter.plausible(weak) {
            return None;
        }
        self.shards[weak as usize % self.shards.len()].get(&weak)
    }

    /// The miss filter covering this index's weak digests.
    #[cfg(test)]
    pub(crate) fn filter(&self) -> &WeakFilter {
        &self.filter
    }

    /// Weak digest of old block `idx`, from the build-time census.
    #[inline]
    pub(crate) fn block_weak(&self, idx: u32) -> u32 {
        self.digests[idx as usize]
    }

    /// Indexes the blocks of `old` across `workers` threads.
    ///
    /// Phase 1 splits the blocks into contiguous ranges and computes
    /// `(weak, block index)` pairs per range; phase 2 has each shard owner
    /// walk the ranges *in order* and keep the pairs landing in its shard,
    /// so per-weak candidate order is increasing block index — exactly
    /// what the sequential single-map build produces.
    pub(crate) fn build_parallel(old: &[u8], block_size: usize, workers: usize) -> Self {
        let nblocks = old.len().div_ceil(block_size);
        let workers = workers.clamp(1, nblocks.max(1));
        let per_range = nblocks.div_ceil(workers).max(1);
        let mut pairs: Vec<Vec<(u32, u32)>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let lo = (w * per_range).min(nblocks);
                    let hi = ((w + 1) * per_range).min(nblocks);
                    s.spawn(move || {
                        (lo..hi)
                            .map(|i| {
                                let start = i * block_size;
                                let end = (start + block_size).min(old.len());
                                let weak = RollingChecksum::new(&old[start..end]).digest();
                                (weak, i as u32)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            pairs = handles
                .into_iter()
                .map(|h| h.join().expect("index worker panicked"))
                .collect();
        });
        let nshards = workers;
        let mut shards: Vec<HashMap<u32, CandidateSet>> = Vec::new();
        std::thread::scope(|s| {
            let pairs = &pairs;
            let handles: Vec<_> = (0..nshards)
                .map(|shard| {
                    s.spawn(move || {
                        let mut map = HashMap::new();
                        for range in pairs {
                            for &(weak, idx) in range {
                                if weak as usize % nshards == shard {
                                    insert_candidate(&mut map, weak, idx);
                                }
                            }
                        }
                        map
                    })
                })
                .collect();
            shards = handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect();
        });
        let filter =
            WeakFilter::from_weak_keys(pairs.iter().flatten().map(|&(weak, _)| weak));
        // Ranges are contiguous and in block order, so flattening yields
        // the per-block digest census already sorted by block index.
        let digests = pairs.iter().flatten().map(|&(weak, _)| weak).collect();
        WeakIndex {
            shards,
            filter,
            digests,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_set_keeps_insertion_order() {
        let mut set = CandidateSet::new(3);
        set.push(7);
        set.push(11);
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![3, 7, 11]);
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn first_candidate_is_allocation_free() {
        let set = CandidateSet::new(5);
        assert_eq!(set.overflow.capacity(), 0);
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn sharded_index_matches_sequential_map() {
        // Repetitive content forces weak collisions across ranges.
        let old: Vec<u8> = b"abcdabcdXYabcdabcd".repeat(57);
        let bs = 4;
        let mut seq: HashMap<u32, CandidateSet> = HashMap::new();
        for (i, block) in old.chunks(bs).enumerate() {
            insert_candidate(&mut seq, RollingChecksum::new(block).digest(), i as u32);
        }
        for workers in [1, 2, 3, 5, 8] {
            let index = WeakIndex::build_parallel(&old, bs, workers);
            for (weak, set) in &seq {
                let got = index.lookup(*weak).expect("weak value present");
                assert_eq!(
                    got.iter().collect::<Vec<_>>(),
                    set.iter().collect::<Vec<_>>(),
                    "candidate order differs at weak {weak:#x} with {workers} workers"
                );
            }
        }
    }

    #[test]
    fn empty_old_builds_empty_index() {
        let index = WeakIndex::build_parallel(&[], 16, 4);
        assert_eq!(index.lookup(0), None);
    }

    #[test]
    fn filter_never_rejects_an_indexed_digest() {
        // The superset invariant: every digest actually in the map must be
        // plausible — including digests whose halves collide across blocks.
        let old: Vec<u8> = (0..5_000).map(|i| (i * 37 % 251) as u8).collect();
        let bs = 8;
        let index = WeakIndex::build_parallel(&old, bs, 3);
        for block in old.chunks(bs) {
            let weak = RollingChecksum::new(block).digest();
            assert!(index.filter().plausible(weak), "false negative at {weak:#x}");
            assert!(index.lookup(weak).is_some());
        }
    }

    #[test]
    fn filter_rejects_definitively() {
        let mut f = WeakFilter::new();
        assert!(!f.plausible(0));
        assert!(!f.plausible(0xDEADBEEF));
        f.insert(0x0001_0002);
        assert!(f.plausible(0x0001_0002));
        // Same low half, absent high half: one bitmap hits, the other
        // rejects.
        assert!(!f.plausible(0x0099_0002));
        assert!(!f.plausible(0x0001_0099));
        // Cross-product false positive is allowed (and expected): after a
        // second insert, the halves of the two digests combine.
        f.insert(0x0099_0099);
        assert!(f.plausible(0x0001_0099));
    }

    #[test]
    fn filter_covers_bitmap_edges() {
        let mut f = WeakFilter::new();
        for weak in [0u32, 0xffff, 0xffff_0000, 0xffff_ffff, 0x0040_0040] {
            f.insert(weak);
            assert!(f.plausible(weak), "edge digest {weak:#x}");
        }
    }
}
