//! Streaming delta emission: chunked op sinks shared by the sequential
//! and parallel matchers.
//!
//! The classic API materializes a whole [`Delta`] before anything can be
//! uploaded, so peak memory tracks the *delta* size even when the wire
//! protocol could start sending immediately. The streaming mode threads
//! an [`OpSink`] through the very same greedy walks instead: ops are
//! pushed as the matcher produces them, and a [`ChunkSink`] groups them
//! into [`DeltaChunk`]s holding at most `chunk_budget` literal bytes
//! each. Reassembling the chunks ([`Delta::from_chunks`]) yields a
//! `Delta` byte-identical to the materialized one: `Delta::from_ops`
//! re-merges ops that a chunk boundary split.

use bytes::Bytes;

use crate::delta_ops::{Delta, DeltaOp};

/// A bounded slice of a streamed delta: the next instructions in output
/// order, with `last` set on the final chunk of the stream.
///
/// A chunk carries at most the emitting [`ChunkSink`]'s literal budget in
/// literal bytes (copy instructions are budget-free — they reference the
/// receiver's base file and cost only a header on the wire).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaChunk {
    /// Delta instructions, in output order.
    pub ops: Vec<DeltaOp>,
    /// Whether this is the final chunk of the delta.
    pub last: bool,
}

impl DeltaChunk {
    /// Bytes carried literally by this chunk.
    pub fn literal_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                DeltaOp::Literal(b) => b.len() as u64,
                DeltaOp::Copy { .. } => 0,
            })
            .sum()
    }
}

/// Receives delta instructions as a matcher walk produces them.
///
/// The walks in `rsync::diff_with_sink` and `parallel::replay_with` are
/// generic over this trait, so the materialized and streaming paths run
/// the *same* traversal code and cannot drift.
pub(crate) trait OpSink {
    /// A copy of `len` bytes at `offset` of the old file.
    fn copy(&mut self, offset: u64, len: u64);
    /// A run of literal bytes.
    fn literal(&mut self, data: &[u8]);
}

/// Collects every op and materializes a [`Delta`] at the end — the
/// classic non-streaming behaviour.
pub(crate) struct MaterializeSink {
    ops: Vec<DeltaOp>,
}

impl MaterializeSink {
    pub(crate) fn new() -> Self {
        MaterializeSink { ops: Vec::new() }
    }

    pub(crate) fn into_delta(self) -> Delta {
        Delta::from_ops(self.ops)
    }
}

impl OpSink for MaterializeSink {
    fn copy(&mut self, offset: u64, len: u64) {
        self.ops.push(DeltaOp::Copy { offset, len });
    }

    fn literal(&mut self, data: &[u8]) {
        self.ops.push(DeltaOp::Literal(Bytes::copy_from_slice(data)));
    }
}

/// Groups incoming ops into [`DeltaChunk`]s of at most `budget` literal
/// bytes, handing each finished chunk to `emit` as soon as it fills —
/// which is what lets the upload start while the matcher is still
/// walking.
///
/// Adjacent copies are merged exactly as [`Delta::from_ops`] would merge
/// them; a literal larger than the budget is split across chunks (the
/// receiver's `from_ops` re-merge makes the split invisible).
pub struct ChunkSink<F: FnMut(DeltaChunk)> {
    budget: usize,
    ops: Vec<DeltaOp>,
    literal_in_chunk: usize,
    emit: F,
}

impl<F: FnMut(DeltaChunk)> ChunkSink<F> {
    /// A sink flushing a chunk whenever `budget` literal bytes are
    /// pending (a zero budget is treated as 1).
    pub fn new(budget: usize, emit: F) -> Self {
        ChunkSink {
            budget: budget.max(1),
            ops: Vec::new(),
            literal_in_chunk: 0,
            emit,
        }
    }

    fn flush(&mut self, last: bool) {
        if self.ops.is_empty() && !last {
            return;
        }
        let ops = std::mem::take(&mut self.ops);
        self.literal_in_chunk = 0;
        (self.emit)(DeltaChunk { ops, last });
    }

    /// Emits the final chunk (`last == true`, possibly op-less for an
    /// empty delta). Must be called exactly once, after the walk.
    pub fn finish(mut self) {
        self.flush(true);
    }
}

impl<F: FnMut(DeltaChunk)> OpSink for ChunkSink<F> {
    fn copy(&mut self, offset: u64, len: u64) {
        if let Some(DeltaOp::Copy {
            offset: o,
            len: l,
        }) = self.ops.last_mut()
        {
            if *o + *l == offset {
                *l += len;
                return;
            }
        }
        self.ops.push(DeltaOp::Copy { offset, len });
    }

    fn literal(&mut self, mut data: &[u8]) {
        while !data.is_empty() {
            let room = self.budget - self.literal_in_chunk;
            let take = room.min(data.len());
            if take > 0 {
                self.ops
                    .push(DeltaOp::Literal(Bytes::copy_from_slice(&data[..take])));
                self.literal_in_chunk += take;
                data = &data[take..];
            }
            if self.literal_in_chunk >= self.budget {
                self.flush(false);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(budget: usize, feed: impl FnOnce(&mut ChunkSink<&mut dyn FnMut(DeltaChunk)>)) -> Vec<DeltaChunk> {
        let mut chunks = Vec::new();
        let mut push = |c: DeltaChunk| chunks.push(c);
        let mut sink: ChunkSink<&mut dyn FnMut(DeltaChunk)> = ChunkSink::new(budget, &mut push);
        feed(&mut sink);
        sink.finish();
        chunks
    }

    #[test]
    fn chunks_respect_literal_budget_and_reassemble() {
        let chunks = collect(4, |sink| {
            sink.literal(b"0123456789");
            sink.copy(0, 16);
            sink.copy(16, 16);
            sink.literal(b"ab");
        });
        assert!(chunks.iter().all(|c| c.literal_bytes() <= 4));
        assert_eq!(chunks.last().map(|c| c.last), Some(true));
        assert!(chunks.iter().rev().skip(1).all(|c| !c.last));
        let delta = Delta::from_chunks(chunks);
        let expected = Delta::from_ops(vec![
            DeltaOp::Literal(Bytes::from_static(b"0123456789")),
            DeltaOp::Copy { offset: 0, len: 32 },
            DeltaOp::Literal(Bytes::from_static(b"ab")),
        ]);
        assert_eq!(delta, expected);
    }

    #[test]
    fn adjacent_copies_merge_inside_a_chunk() {
        let chunks = collect(1024, |sink| {
            sink.copy(0, 8);
            sink.copy(8, 8);
            sink.copy(32, 8);
        });
        assert_eq!(chunks.len(), 1);
        assert_eq!(
            chunks[0].ops,
            vec![
                DeltaOp::Copy { offset: 0, len: 16 },
                DeltaOp::Copy { offset: 32, len: 8 },
            ]
        );
    }

    #[test]
    fn empty_walk_still_emits_a_final_chunk() {
        let chunks = collect(64, |_| {});
        assert_eq!(chunks.len(), 1);
        assert!(chunks[0].ops.is_empty());
        assert!(chunks[0].last);
        assert_eq!(Delta::from_chunks(chunks), Delta::default());
    }
}
