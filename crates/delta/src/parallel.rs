//! The parallel rolling-window matcher behind `local::diff_parallel` and
//! `rsync::diff_parallel`.
//!
//! The sequential matcher (`rsync::diff_with`) walks the new file greedily:
//! at each position it evaluates a *position-independent* question — "does
//! the window starting here match an old block, and what did confirming it
//! cost?" — then either jumps a whole block (match) or slides one byte
//! (miss). Because the question depends only on the window's content, it
//! can be answered ahead of time, in parallel:
//!
//! 1. **Scan** ([`scan_matches`]): the window positions of `new` are split
//!    into contiguous segments, one scoped worker per segment. Each worker
//!    runs the *same greedy walk* from its segment start — probing, then
//!    jumping a whole block on a match or sliding one byte on a miss — and
//!    records a [`MatchRecord`] for every position where the weak map hit,
//!    holding the confirmed block (first candidate in block-index order,
//!    same as the sequential search) and the exact confirm cost. Jumping
//!    matters: probing every position would cost a weak-map lookup per
//!    *byte* where the sequential matcher pays one per *block* on
//!    well-matched files, so a non-jumping scan could never break even.
//!    Positions a worker jumped over are recorded as *unprobed* intervals.
//! 2. **Replay** ([`replay_matches`]): a cheap sequential walk replays the
//!    greedy traversal over the record table, emitting ops and charging
//!    [`Cost`] exactly as the sequential matcher would have at the
//!    positions it actually visits. When the true walk lands inside an
//!    unprobed interval — the worker's locally-greedy walk diverged from
//!    the true one, which can only happen near segment seams before the
//!    two walks re-synchronize at a common match — the replay probes that
//!    position on demand.
//!
//! The result is **byte-identical** to the sequential diff, with identical
//! `Cost` totals: scan work at positions the greedy walk skips over, and
//! window re-derivations for on-demand probes, are parallelization
//! overhead paid in wall-clock only, never in the cost model (see
//! DESIGN.md §10 for the contract).

use crate::cost::Cost;
use crate::delta_ops::Delta;
use crate::rolling::RollingChecksum;
use crate::stream::{MaterializeSink, OpSink};

/// Outcome of probing one window position: `(matched block, confirm bytes,
/// confirm ops)`. `matched` is `None` when candidates existed but none
/// confirmed — the confirm cost is still charged, as in the sequential
/// search.
pub(crate) type ProbeOutcome = (Option<u32>, u64, u64);

/// One weak-map hit found by the scan phase.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MatchRecord {
    /// Window position in the new file.
    pub pos: usize,
    /// Confirmed block index, `None` if every candidate was refuted.
    pub matched: Option<u32>,
    /// Bytes the confirm step examined (bitwise-compared bytes for the
    /// local variant, strong-hashed bytes for rsync).
    pub confirm_bytes: u64,
    /// Primitive invocations the confirm step performed.
    pub confirm_ops: u64,
}

/// Scan output: weak-map hits plus the position intervals the workers'
/// greedy walks jumped over without probing. Both are sorted by position.
pub(crate) struct ScanTable {
    pub records: Vec<MatchRecord>,
    pub unprobed: Vec<(usize, usize)>,
}

impl ScanTable {
    pub(crate) fn empty() -> Self {
        ScanTable {
            records: Vec::new(),
            unprobed: Vec::new(),
        }
    }
}

/// Supplies scan-table data to the replay walk, possibly incrementally.
///
/// The materialized feed ([`ReadyFeed`]) hands back a complete table; the
/// streaming feed ([`scan_streaming`]) blocks in `ensure` until the
/// contiguous segment frontier passes `pos`, which is what lets the
/// replay release chunks while later segments are still scanning.
pub(crate) trait TableFeed {
    /// Blocks until the table covers window position `pos`, then returns
    /// the records and unprobed intervals accumulated so far. Both stay
    /// append-only and position-sorted across calls, so callers may keep
    /// cursors.
    fn ensure(&mut self, pos: usize) -> &ScanTable;
}

/// A [`TableFeed`] over an already-complete scan table.
pub(crate) struct ReadyFeed<'a>(pub &'a ScanTable);

impl TableFeed for ReadyFeed<'_> {
    fn ensure(&mut self, _pos: usize) -> &ScanTable {
        self.0
    }
}

/// Incremental feed: per-segment tables arrive over a channel in whatever
/// order the workers finish; `ensure` splices them into the accumulated
/// table strictly in segment order, so the replay only ever sees a
/// contiguous position prefix.
struct StreamFeed<'a> {
    bounds: &'a [(usize, usize)],
    rx: std::sync::mpsc::Receiver<(usize, ScanTable)>,
    pending: Vec<Option<ScanTable>>,
    next: usize,
    acc: ScanTable,
    /// First window position *not* yet covered.
    frontier: usize,
}

impl TableFeed for StreamFeed<'_> {
    fn ensure(&mut self, pos: usize) -> &ScanTable {
        while self.frontier <= pos && self.next < self.bounds.len() {
            while self.pending[self.next].is_none() {
                let (i, seg) = self.rx.recv().expect("scan worker disconnected");
                self.pending[i] = Some(seg);
            }
            let seg = self.pending[self.next].take().expect("segment just arrived");
            self.acc.records.extend(seg.records);
            self.acc.unprobed.extend(seg.unprobed);
            self.frontier = self.bounds[self.next].1;
            self.next += 1;
        }
        &self.acc
    }
}

/// Runs the segment scan workers concurrently with `consume`, which
/// receives a [`TableFeed`] whose `ensure` blocks only until the needed
/// segment has landed — the overlap that drives the streaming pipeline.
pub(crate) fn scan_streaming<P, F, T>(
    new: &[u8],
    block_size: usize,
    workers: usize,
    probe: &P,
    consume: F,
) -> T
where
    P: Fn(u32, &[u8]) -> Option<ProbeOutcome> + Sync,
    F: FnOnce(&mut dyn TableFeed) -> T,
{
    let bounds = segment_bounds(new.len(), block_size, workers);
    if bounds.is_empty() {
        let empty = ScanTable::empty();
        return consume(&mut ReadyFeed(&empty));
    }
    let (tx, rx) = std::sync::mpsc::channel::<(usize, ScanTable)>();
    std::thread::scope(|s| {
        for (i, &(start, end)) in bounds.iter().enumerate() {
            let tx = tx.clone();
            s.spawn(move || {
                let seg = scan_segment(new, block_size, start, end, probe);
                let _ = tx.send((i, seg));
            });
        }
        drop(tx);
        let mut feed = StreamFeed {
            bounds: &bounds,
            rx,
            pending: (0..bounds.len()).map(|_| None).collect(),
            next: 0,
            acc: ScanTable::empty(),
            frontier: 0,
        };
        consume(&mut feed)
    })
}

/// The contiguous window-position segments the parallel scan splits a
/// `new_len`-byte file into for `workers` threads, as `(start, end)`
/// pairs (empty when the file is shorter than one block).
///
/// This is the *exact* split [`scan_matches`] uses — exposed so call
/// sites can trace or report per-worker-segment work without reaching
/// into the scan, and without risk of drifting from the real layout.
pub fn segment_bounds(new_len: usize, block_size: usize, workers: usize) -> Vec<(usize, usize)> {
    if new_len < block_size {
        return Vec::new();
    }
    let positions = new_len - block_size + 1;
    let workers = workers.clamp(1, positions);
    let per_seg = positions.div_ceil(workers);
    (0..workers)
        .map(|w| ((w * per_seg).min(positions), ((w + 1) * per_seg).min(positions)))
        .filter(|(start, end)| start < end)
        .collect()
}

/// Probes window positions of `new` across `workers` scoped threads, each
/// walking its contiguous segment greedily (block jump on match, one-byte
/// slide on miss).
///
/// `probe(weak, window)` returns `None` when the weak map has no entry and
/// the [`ProbeOutcome`] otherwise.
pub(crate) fn scan_matches<P>(
    new: &[u8],
    block_size: usize,
    workers: usize,
    probe: &P,
) -> ScanTable
where
    P: Fn(u32, &[u8]) -> Option<ProbeOutcome> + Sync,
{
    let bounds = segment_bounds(new.len(), block_size, workers);
    if bounds.is_empty() {
        return ScanTable {
            records: Vec::new(),
            unprobed: Vec::new(),
        };
    }
    let mut segments: Vec<ScanTable> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = bounds
            .iter()
            .map(|&(start, end)| {
                s.spawn(move || scan_segment(new, block_size, start, end, probe))
            })
            .collect();
        segments = handles
            .into_iter()
            .map(|h| h.join().expect("scan worker panicked"))
            .collect();
    });
    let mut records = Vec::new();
    let mut unprobed = Vec::new();
    for seg in segments {
        records.extend(seg.records);
        unprobed.extend(seg.unprobed);
    }
    ScanTable { records, unprobed }
}

/// Greedily scans window positions `start..end`, deriving the rolling
/// checksum at `start` and after every block jump.
pub(crate) fn scan_segment<P>(
    new: &[u8],
    block_size: usize,
    start: usize,
    end: usize,
    probe: &P,
) -> ScanTable
where
    P: Fn(u32, &[u8]) -> Option<ProbeOutcome>,
{
    let mut out = ScanTable {
        records: Vec::new(),
        unprobed: Vec::new(),
    };
    if start >= end {
        return out;
    }
    let mut pos = start;
    let mut rc = RollingChecksum::new(&new[pos..pos + block_size]);
    loop {
        let hit = probe(rc.digest(), &new[pos..pos + block_size]);
        let matched = matches!(hit, Some((Some(_), _, _)));
        if let Some((m, confirm_bytes, confirm_ops)) = hit {
            out.records.push(MatchRecord {
                pos,
                matched: m,
                confirm_bytes,
                confirm_ops,
            });
        }
        if matched {
            let skipped_to = (pos + block_size).min(end);
            if skipped_to > pos + 1 {
                out.unprobed.push((pos + 1, skipped_to));
            }
            pos += block_size;
            if pos >= end {
                break;
            }
            rc = RollingChecksum::new(&new[pos..pos + block_size]);
        } else {
            pos += 1;
            if pos >= end {
                break;
            }
            rc.roll(new[pos - 1], new[pos - 1 + block_size]);
        }
    }
    out
}

/// Replays the sequential greedy walk over the precomputed scan table.
///
/// `charge` applies a confirm cost to the right [`Cost`] field;
/// `block_range` maps a confirmed block index to `(offset, len)` in the
/// old file; `probe_at(pos)` answers the probe question from scratch for
/// the (rare) visited positions inside unprobed intervals. Rolling-
/// checksum bytes are charged along the replayed path — a full window at
/// every (re)initialization, one byte per slide — so the totals equal the
/// sequential matcher's to the byte.
pub(crate) fn replay_matches(
    new: &[u8],
    block_size: usize,
    table: &ScanTable,
    cost: &mut Cost,
    charge: impl Fn(&mut Cost, u64, u64),
    block_range: impl Fn(u32) -> (u64, u64),
    probe_at: impl Fn(usize) -> Option<ProbeOutcome>,
) -> Delta {
    let mut sink = MaterializeSink::new();
    replay_with(
        new,
        block_size,
        &mut ReadyFeed(table),
        cost,
        charge,
        block_range,
        probe_at,
        &mut sink,
    );
    sink.into_delta()
}

/// Sink-generic replay shared by [`replay_matches`] and the streaming
/// diff paths; pulls table data through `feed` so it can run before all
/// scan segments have finished.
#[allow(clippy::too_many_arguments)]
pub(crate) fn replay_with<S: OpSink>(
    new: &[u8],
    block_size: usize,
    feed: &mut dyn TableFeed,
    cost: &mut Cost,
    charge: impl Fn(&mut Cost, u64, u64),
    block_range: impl Fn(u32) -> (u64, u64),
    probe_at: impl Fn(usize) -> Option<ProbeOutcome>,
    sink: &mut S,
) {
    let mut literal_start = 0usize;
    let mut pos = 0usize;
    let mut cursor = 0usize;
    let mut iv = 0usize;

    let flush_literal = |sink: &mut S, from: usize, to: usize, cost: &mut Cost| {
        if to > from {
            sink.literal(&new[from..to]);
            cost.bytes_copied += (to - from) as u64;
        }
    };

    if new.len() >= block_size {
        cost.bytes_rolled += block_size as u64;
        loop {
            let table = feed.ensure(pos);
            let records = &table.records;
            while cursor < records.len() && records[cursor].pos < pos {
                cursor += 1;
            }
            while iv < table.unprobed.len() && table.unprobed[iv].1 <= pos {
                iv += 1;
            }
            let matched = if cursor < records.len() && records[cursor].pos == pos {
                let r = &records[cursor];
                charge(cost, r.confirm_bytes, r.confirm_ops);
                r.matched
            } else if iv < table.unprobed.len()
                && table.unprobed[iv].0 <= pos
                && pos < table.unprobed[iv].1
            {
                // A worker jumped over this position; ask from scratch.
                match probe_at(pos) {
                    Some((m, confirm_bytes, confirm_ops)) => {
                        charge(cost, confirm_bytes, confirm_ops);
                        m
                    }
                    None => None,
                }
            } else {
                None
            };
            if let Some(block_idx) = matched {
                flush_literal(sink, literal_start, pos, cost);
                let (offset, len) = block_range(block_idx);
                sink.copy(offset, len);
                pos += block_size;
                literal_start = pos;
                if pos + block_size > new.len() {
                    break;
                }
                cost.bytes_rolled += block_size as u64;
            } else {
                if pos + block_size >= new.len() {
                    break;
                }
                cost.bytes_rolled += 1;
                pos += 1;
            }
        }
    }
    flush_literal(sink, literal_start, new.len(), cost);
}
