//! The parallel rolling-window matcher behind `local::diff_parallel` and
//! `rsync::diff_parallel`.
//!
//! The sequential matcher (`rsync::diff_with`) walks the new file greedily:
//! at each position it evaluates a *position-independent* question — "does
//! the window starting here match an old block, and what did confirming it
//! cost?" — then either jumps a whole block (match) or slides one byte
//! (miss). Because the question depends only on the window's content, it
//! can be answered ahead of time, in parallel:
//!
//! 1. **Scan** ([`scan_matches`]): the window positions of `new` are split
//!    into contiguous segments, one scoped worker per segment. Each worker
//!    runs the *same greedy walk* from its segment start — probing, then
//!    jumping a whole block on a match or sliding one byte on a miss — and
//!    records a [`MatchRecord`] for every position where the weak map hit,
//!    holding the confirmed block (first candidate in block-index order,
//!    same as the sequential search) and the exact confirm cost. Jumping
//!    matters: probing every position would cost a weak-map lookup per
//!    *byte* where the sequential matcher pays one per *block* on
//!    well-matched files, so a non-jumping scan could never break even.
//!    Positions a worker jumped over are recorded as *unprobed* intervals.
//! 2. **Replay** ([`replay_matches`]): a cheap sequential walk replays the
//!    greedy traversal over the record table, emitting ops and charging
//!    [`Cost`] exactly as the sequential matcher would have at the
//!    positions it actually visits. When the true walk lands inside an
//!    unprobed interval — the worker's locally-greedy walk diverged from
//!    the true one, which can only happen near segment seams before the
//!    two walks re-synchronize at a common match — the replay probes that
//!    position on demand.
//!
//! The result is **byte-identical** to the sequential diff, with identical
//! `Cost` totals: scan work at positions the greedy walk skips over, and
//! window re-derivations for on-demand probes, are parallelization
//! overhead paid in wall-clock only, never in the cost model (see
//! DESIGN.md §10 for the contract).

use crate::cost::Cost;
use crate::delta_ops::{Delta, DeltaOp};
use crate::rolling::RollingChecksum;

/// Outcome of probing one window position: `(matched block, confirm bytes,
/// confirm ops)`. `matched` is `None` when candidates existed but none
/// confirmed — the confirm cost is still charged, as in the sequential
/// search.
pub(crate) type ProbeOutcome = (Option<u32>, u64, u64);

/// One weak-map hit found by the scan phase.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MatchRecord {
    /// Window position in the new file.
    pub pos: usize,
    /// Confirmed block index, `None` if every candidate was refuted.
    pub matched: Option<u32>,
    /// Bytes the confirm step examined (bitwise-compared bytes for the
    /// local variant, strong-hashed bytes for rsync).
    pub confirm_bytes: u64,
    /// Primitive invocations the confirm step performed.
    pub confirm_ops: u64,
}

/// Scan output: weak-map hits plus the position intervals the workers'
/// greedy walks jumped over without probing. Both are sorted by position.
pub(crate) struct ScanTable {
    pub records: Vec<MatchRecord>,
    pub unprobed: Vec<(usize, usize)>,
}

/// The contiguous window-position segments the parallel scan splits a
/// `new_len`-byte file into for `workers` threads, as `(start, end)`
/// pairs (empty when the file is shorter than one block).
///
/// This is the *exact* split [`scan_matches`] uses — exposed so call
/// sites can trace or report per-worker-segment work without reaching
/// into the scan, and without risk of drifting from the real layout.
pub fn segment_bounds(new_len: usize, block_size: usize, workers: usize) -> Vec<(usize, usize)> {
    if new_len < block_size {
        return Vec::new();
    }
    let positions = new_len - block_size + 1;
    let workers = workers.clamp(1, positions);
    let per_seg = positions.div_ceil(workers);
    (0..workers)
        .map(|w| ((w * per_seg).min(positions), ((w + 1) * per_seg).min(positions)))
        .filter(|(start, end)| start < end)
        .collect()
}

/// Probes window positions of `new` across `workers` scoped threads, each
/// walking its contiguous segment greedily (block jump on match, one-byte
/// slide on miss).
///
/// `probe(weak, window)` returns `None` when the weak map has no entry and
/// the [`ProbeOutcome`] otherwise.
pub(crate) fn scan_matches<P>(
    new: &[u8],
    block_size: usize,
    workers: usize,
    probe: &P,
) -> ScanTable
where
    P: Fn(u32, &[u8]) -> Option<ProbeOutcome> + Sync,
{
    let bounds = segment_bounds(new.len(), block_size, workers);
    if bounds.is_empty() {
        return ScanTable {
            records: Vec::new(),
            unprobed: Vec::new(),
        };
    }
    let mut segments: Vec<ScanTable> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = bounds
            .iter()
            .map(|&(start, end)| {
                s.spawn(move || scan_segment(new, block_size, start, end, probe))
            })
            .collect();
        segments = handles
            .into_iter()
            .map(|h| h.join().expect("scan worker panicked"))
            .collect();
    });
    let mut records = Vec::new();
    let mut unprobed = Vec::new();
    for seg in segments {
        records.extend(seg.records);
        unprobed.extend(seg.unprobed);
    }
    ScanTable { records, unprobed }
}

/// Greedily scans window positions `start..end`, deriving the rolling
/// checksum at `start` and after every block jump.
fn scan_segment<P>(
    new: &[u8],
    block_size: usize,
    start: usize,
    end: usize,
    probe: &P,
) -> ScanTable
where
    P: Fn(u32, &[u8]) -> Option<ProbeOutcome>,
{
    let mut out = ScanTable {
        records: Vec::new(),
        unprobed: Vec::new(),
    };
    if start >= end {
        return out;
    }
    let mut pos = start;
    let mut rc = RollingChecksum::new(&new[pos..pos + block_size]);
    loop {
        let hit = probe(rc.digest(), &new[pos..pos + block_size]);
        let matched = matches!(hit, Some((Some(_), _, _)));
        if let Some((m, confirm_bytes, confirm_ops)) = hit {
            out.records.push(MatchRecord {
                pos,
                matched: m,
                confirm_bytes,
                confirm_ops,
            });
        }
        if matched {
            let skipped_to = (pos + block_size).min(end);
            if skipped_to > pos + 1 {
                out.unprobed.push((pos + 1, skipped_to));
            }
            pos += block_size;
            if pos >= end {
                break;
            }
            rc = RollingChecksum::new(&new[pos..pos + block_size]);
        } else {
            pos += 1;
            if pos >= end {
                break;
            }
            rc.roll(new[pos - 1], new[pos - 1 + block_size]);
        }
    }
    out
}

/// Replays the sequential greedy walk over the precomputed scan table.
///
/// `charge` applies a confirm cost to the right [`Cost`] field;
/// `block_range` maps a confirmed block index to `(offset, len)` in the
/// old file; `probe_at(pos)` answers the probe question from scratch for
/// the (rare) visited positions inside unprobed intervals. Rolling-
/// checksum bytes are charged along the replayed path — a full window at
/// every (re)initialization, one byte per slide — so the totals equal the
/// sequential matcher's to the byte.
pub(crate) fn replay_matches(
    new: &[u8],
    block_size: usize,
    table: &ScanTable,
    cost: &mut Cost,
    charge: impl Fn(&mut Cost, u64, u64),
    block_range: impl Fn(u32) -> (u64, u64),
    probe_at: impl Fn(usize) -> Option<ProbeOutcome>,
) -> Delta {
    let records = &table.records;
    let mut ops: Vec<DeltaOp> = Vec::new();
    let mut literal_start = 0usize;
    let mut pos = 0usize;
    let mut cursor = 0usize;
    let mut iv = 0usize;

    let flush_literal = |ops: &mut Vec<DeltaOp>, from: usize, to: usize, cost: &mut Cost| {
        if to > from {
            ops.push(DeltaOp::Literal(bytes::Bytes::copy_from_slice(
                &new[from..to],
            )));
            cost.bytes_copied += (to - from) as u64;
        }
    };

    if new.len() >= block_size {
        cost.bytes_rolled += block_size as u64;
        loop {
            while cursor < records.len() && records[cursor].pos < pos {
                cursor += 1;
            }
            while iv < table.unprobed.len() && table.unprobed[iv].1 <= pos {
                iv += 1;
            }
            let matched = if cursor < records.len() && records[cursor].pos == pos {
                let r = &records[cursor];
                charge(cost, r.confirm_bytes, r.confirm_ops);
                r.matched
            } else if iv < table.unprobed.len()
                && table.unprobed[iv].0 <= pos
                && pos < table.unprobed[iv].1
            {
                // A worker jumped over this position; ask from scratch.
                match probe_at(pos) {
                    Some((m, confirm_bytes, confirm_ops)) => {
                        charge(cost, confirm_bytes, confirm_ops);
                        m
                    }
                    None => None,
                }
            } else {
                None
            };
            if let Some(block_idx) = matched {
                flush_literal(&mut ops, literal_start, pos, cost);
                let (offset, len) = block_range(block_idx);
                ops.push(DeltaOp::Copy { offset, len });
                pos += block_size;
                literal_start = pos;
                if pos + block_size > new.len() {
                    break;
                }
                cost.bytes_rolled += block_size as u64;
            } else {
                if pos + block_size >= new.len() {
                    break;
                }
                cost.bytes_rolled += 1;
                pos += 1;
            }
        }
    }
    flush_literal(&mut ops, literal_start, new.len(), cost);
    Delta::from_ops(ops)
}
