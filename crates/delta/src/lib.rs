//! # deltacfs-delta
//!
//! Delta-encoding algorithms for the DeltaCFS reproduction (Zhang et al.,
//! ICDCS 2017), all implemented from scratch so that the *work they perform*
//! is measurable:
//!
//! * [`rsync`] — the classic rsync algorithm: fixed-size blocks, an
//!   Adler-style rolling checksum plus an MD5 strong checksum
//!   ([`RollingChecksum`], [`md5`]). This is what Dropbox runs on every file
//!   change (paper §II-A).
//! * [`local`] — the paper's optimisation (§III-A): when *both* versions of
//!   a file are on the same machine, strong checksums are unnecessary —
//!   candidate blocks found by the rolling hash are verified by **bitwise
//!   comparison** (word-at-a-time with exact first-difference accounting),
//!   eliminating the dominant MD5 cost.
//! * both block-based diffs also come in a parallel flavour
//!   ([`local::diff_parallel`], [`rsync::diff_parallel`]): window probing
//!   runs across a scoped worker pool, then a cheap sequential replay
//!   re-walks the greedy traversal — output and [`Cost`] totals are
//!   byte-identical to the sequential functions for any thread count.
//! * [`cdc`] — content-defined chunking with a gear hash, as used by
//!   Seafile/LBFS (1 MB average chunks by default).
//! * [`dedup`] — fixed-size super-block deduplication (Dropbox's 4 MB
//!   granularity).
//! * [`compress`] — a small LZ77-style byte compressor standing in for
//!   Snappy, which the paper suspects Dropbox applies to uploads.
//!
//! Every API threads a [`Cost`] accumulator that counts the bytes each
//! primitive touched (rolled, strong-hashed, compared, chunked,
//! compressed). The evaluation converts these counts into platform "CPU
//! ticks" — the quantity Table II of the paper reports.
//!
//! # Example
//!
//! ```
//! use deltacfs_delta::{local, rsync, Cost, DeltaParams};
//!
//! let old = b"the quick brown fox jumps over the lazy dog".repeat(200);
//! let mut new = old.clone();
//! new[10] = b'Q';
//!
//! let params = DeltaParams::with_block_size(64);
//! let mut cost = Cost::default();
//! let delta = local::diff(&old, &new, &params, &mut cost);
//! assert_eq!(delta.apply(&old).unwrap(), new);
//! // The local variant never computes a strong checksum.
//! assert_eq!(cost.bytes_strong_hashed, 0);
//!
//! let mut cost_rsync = Cost::default();
//! let sig = rsync::signature(&old, &params, &mut cost_rsync);
//! let delta2 = rsync::diff(&sig, &new, &params, &mut cost_rsync);
//! assert_eq!(delta2.apply(&old).unwrap(), new);
//! assert!(cost_rsync.bytes_strong_hashed > 0);
//! ```

#![warn(missing_docs)]

pub mod cdc;
pub mod compress;
mod cost;
pub mod dedup;
mod delta_ops;
pub mod hierarchy;
pub mod local;
mod md5_impl;
mod parallel;
mod rolling;
pub mod rsync;
mod stream;
mod weak_index;

pub use cost::Cost;
pub use hierarchy::{
    record_hierarchy_stats, take_hierarchy_stats, HierarchyParams, HierarchyStats,
};
pub use parallel::segment_bounds;
pub use delta_ops::{ApplyError, Delta, DeltaOp, OP_HEADER_BYTES};
pub use md5_impl::{md5, md5_hex, Md5};
pub use rolling::RollingChecksum;
pub use stream::{ChunkSink, DeltaChunk};

/// Tuning parameters shared by the block-based delta algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaParams {
    /// Block size in bytes used by [`rsync`] and [`local`] diffs.
    ///
    /// The paper uses rsync's historical default of 4 KB; this is also the
    /// reason op-level RPC beats delta sync for sub-4 KB in-place writes
    /// (§IV-C: "the delta is at least one data block even though only 1 byte
    /// is modified").
    pub block_size: usize,

    /// New-file sizes below this take the sequential matcher even when a
    /// parallel diff is requested: per-segment seam overhead (window
    /// re-derivations, on-demand replay probes) outweighs the parallel
    /// win on small inputs — BENCH_3 measured 0.76–0.84x at 4 MiB.
    /// Output and [`Cost`] are unaffected either way, by contract.
    pub min_parallel_bytes: usize,

    /// Hierarchical coarse→fine matching for huge files ([`hierarchy`]):
    /// `Some` enables the shingle tree for new files at least
    /// [`HierarchyParams::min_file_bytes`] long. Output and [`Cost`] are
    /// byte-identical to the sequential matcher either way, by contract —
    /// only wall-clock time and [`HierarchyStats`] change.
    pub hierarchy: Option<HierarchyParams>,
}

impl DeltaParams {
    /// rsync's historical 4 KB block size, the paper's default.
    pub const DEFAULT_BLOCK_SIZE: usize = 4096;

    /// Default [`min_parallel_bytes`](DeltaParams::min_parallel_bytes)
    /// threshold (8 MiB): the smallest size where the BENCH_3 thread
    /// sweep shows parallel segmentation breaking even.
    pub const DEFAULT_MIN_PARALLEL_BYTES: usize = 8 << 20;

    /// Creates parameters with the paper's default 4 KB block size.
    pub fn new() -> Self {
        Self::with_block_size(Self::DEFAULT_BLOCK_SIZE)
    }

    /// Creates parameters with a custom block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn with_block_size(block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        DeltaParams {
            block_size,
            min_parallel_bytes: Self::DEFAULT_MIN_PARALLEL_BYTES,
            hierarchy: None,
        }
    }

    /// Overrides the sequential-fallback threshold (0 forces the parallel
    /// path whenever `workers > 1`; tests use this to keep coverage on
    /// small inputs).
    pub fn with_min_parallel_bytes(mut self, min_parallel_bytes: usize) -> Self {
        self.min_parallel_bytes = min_parallel_bytes;
        self
    }

    /// Enables (or with `None`, disables) hierarchical coarse→fine
    /// matching for huge files.
    pub fn with_hierarchy(mut self, hierarchy: Option<HierarchyParams>) -> Self {
        self.hierarchy = hierarchy;
        self
    }
}

impl Default for DeltaParams {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_use_4k_blocks() {
        assert_eq!(DeltaParams::new().block_size, 4096);
        assert_eq!(DeltaParams::default(), DeltaParams::new());
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_size_panics() {
        let _ = DeltaParams::with_block_size(0);
    }
}
