//! Hierarchical coarse→fine reconciliation for huge files.
//!
//! The block matchers in [`local`](crate::local) / [`rsync`](crate::rsync)
//! walk a rolling window over the *entire* new file, so a 10 GB file with
//! a few divergent spans still pays the full O(n) probe walk. Following
//! the recursive content-dependent shingling idea (Song & Trachtenberg),
//! this module first reconciles the two files at coarse granularity and
//! only hands the ranges that actually diverge to the byte-level walk:
//!
//! 1. **Prescans** — a word-wise same-offset comparison of the two files
//!    finds identical runs at memcmp speed, covering the dominant
//!    huge-file pattern (in-place page writes to VM images or
//!    databases); a second pass at offset `new_len - old_len` resolves
//!    the suffix a lone insertion or truncation shifted.
//! 2. **Shingle levels** — the ranges the prescan could not pair are
//!    partitioned with content-defined cut points (the CDC gear hash via
//!    [`cdc::cut_spans_sparse`](crate::cdc)) at 1–3 granularities, coarse
//!    to fine (~4 MiB → ~64 KiB → ~6 KiB by default). Each new-side
//!    chunk is looked up by a 64-bit span hash in a map of the old side's
//!    chunks and verified byte-for-byte, which catches content that an
//!    insertion *shifted*. Chunks still unmatched after the finest level
//!    are the divergent leaf ranges.
//! 3. **Exact replay** ([`hier_replay_with`]) — the sequential greedy walk
//!    is then reproduced position by position. Inside a verified span the
//!    probe question ("does this window match an old block, at what
//!    confirm cost?") is answered from the *old* file: the window equals
//!    an old-side slice byte-for-byte, so at block-aligned old offsets a
//!    memoized per-block self-probe answers in O(1) and the walk jumps a
//!    whole block without touching the new bytes. Divergent ranges are
//!    scanned by the PR 3 segment scanner (in parallel, streamed into the
//!    replay) and handled exactly like parallel seams.
//!
//! The output [`Delta`](crate::Delta) and the charged [`Cost`] totals are
//! **byte-identical** to the sequential greedy matcher for every input —
//! the property suite in `tests/properties.rs` enforces it. All hierarchy
//! work (prescan, gear cuts, span hashes, verify compares, self-probe
//! windows) is wall-clock overhead accounted separately in
//! [`HierarchyStats::overhead`], following the PR 3 precedent that
//! speculative work the greedy walk never performs is not charged to the
//! reproducible cost model.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::cdc::{cut_spans_sparse, CdcParams};
use crate::cost::Cost;
use crate::parallel::{scan_segment, ProbeOutcome, ReadyFeed, ScanTable, TableFeed};
use crate::rolling::RollingChecksum;
use crate::stream::OpSink;

/// Maximum number of shingle levels (coarse → fine).
pub const MAX_LEVELS: usize = 3;

/// Tuning for the hierarchical matcher. `Copy` so it can ride inside
/// [`DeltaParams`](crate::DeltaParams).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyParams {
    /// Shingle levels, coarse to fine; `None` entries are unused. The
    /// level fan-out knob: more levels match moved content at finer
    /// granularity at the price of extra old-side passes.
    pub levels: [Option<CdcParams>; MAX_LEVELS],
    /// New files smaller than this take the plain matcher — the shingle
    /// tree only pays off once the probe walk dominates (the huge-file
    /// analogue of `min_parallel_bytes`).
    pub min_file_bytes: usize,
}

impl HierarchyParams {
    /// Default minimum file size for the hierarchical path (64 MiB).
    pub const DEFAULT_MIN_FILE_BYTES: usize = 64 << 20;

    /// The default shingle ladder: ~4 MiB, ~64 KiB and ~6 KiB average
    /// chunks (`avg = min_size + 2^mask_bits`).
    pub const DEFAULT_LEVELS: [CdcParams; MAX_LEVELS] = [
        CdcParams {
            min_size: 2 << 20,
            mask_bits: 21,
            max_size: 16 << 20,
        },
        CdcParams {
            min_size: 32 << 10,
            mask_bits: 15,
            max_size: 256 << 10,
        },
        CdcParams {
            min_size: 2 << 10,
            mask_bits: 12,
            max_size: 32 << 10,
        },
    ];

    /// Parameters using the first `n` default levels (1..=3).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds [`MAX_LEVELS`].
    pub fn with_levels(n: usize) -> Self {
        assert!(
            (1..=MAX_LEVELS).contains(&n),
            "hierarchy levels must be 1..={MAX_LEVELS}"
        );
        let mut levels = [None; MAX_LEVELS];
        for (slot, params) in levels.iter_mut().zip(Self::DEFAULT_LEVELS).take(n) {
            *slot = Some(params);
        }
        HierarchyParams {
            levels,
            min_file_bytes: Self::DEFAULT_MIN_FILE_BYTES,
        }
    }

    /// Parameters with a custom level ladder (tests use tiny chunk sizes
    /// to exercise the tree on kilobyte buffers).
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty or longer than [`MAX_LEVELS`].
    pub fn from_levels(levels: &[CdcParams]) -> Self {
        assert!(
            (1..=MAX_LEVELS).contains(&levels.len()),
            "hierarchy levels must be 1..={MAX_LEVELS}"
        );
        let mut out = [None; MAX_LEVELS];
        for (slot, params) in out.iter_mut().zip(levels.iter()) {
            *slot = Some(*params);
        }
        HierarchyParams {
            levels: out,
            min_file_bytes: Self::DEFAULT_MIN_FILE_BYTES,
        }
    }

    /// Overrides the minimum file size gate (0 forces the hierarchical
    /// path on any input; tests use this).
    pub fn with_min_file_bytes(mut self, min_file_bytes: usize) -> Self {
        self.min_file_bytes = min_file_bytes;
        self
    }

    /// The configured levels, coarse to fine.
    pub fn level_params(&self) -> impl Iterator<Item = CdcParams> + '_ {
        self.levels.iter().filter_map(|l| *l)
    }
}

impl Default for HierarchyParams {
    fn default() -> Self {
        Self::with_levels(2)
    }
}

/// What the hierarchical matcher did on one diff, plus the wall-clock
/// overhead it spent doing it. Accumulated per thread; drained with
/// [`take_hierarchy_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HierarchyStats {
    /// Hierarchical diffs that actually engaged (passed the size gate).
    pub diffs: u64,
    /// Identical runs accepted by the word-wise prescans (same-offset,
    /// plus the length-difference shift probe).
    pub aligned_runs: u64,
    /// Chunks matched wholesale per shingle level, coarse to fine.
    pub level_chunks_matched: [u64; MAX_LEVELS],
    /// New-file bytes inside wholesale-accepted spans — bytes the greedy
    /// walk fast-forwards over instead of byte-walking.
    pub bytes_skipped: u64,
    /// New-file bytes left to the byte-level leaf walk.
    pub leaf_walk_bytes: u64,
    /// Wall-clock hierarchy work, in the same units as the matcher's
    /// [`Cost`]: prescan and verify compares (`bytes_compared`), gear
    /// cuts (`bytes_chunked`), span hashes (`bytes_strong_hashed`),
    /// self-probe window checksums (`bytes_rolled`). Never merged into
    /// the diff's own `Cost` — that one stays byte-identical to the
    /// sequential matcher's by contract.
    pub overhead: Cost,
}

impl HierarchyStats {
    /// Total spans accepted wholesale across the prescan and every level
    /// (the `hierarchy_levels_matched` metric).
    pub fn levels_matched(&self) -> u64 {
        self.aligned_runs + self.level_chunks_matched.iter().sum::<u64>()
    }

    /// Whether any hierarchical diff contributed to these stats.
    pub fn engaged(&self) -> bool {
        self.diffs > 0
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &HierarchyStats) {
        self.diffs += other.diffs;
        self.aligned_runs += other.aligned_runs;
        for (a, b) in self
            .level_chunks_matched
            .iter_mut()
            .zip(other.level_chunks_matched)
        {
            *a += b;
        }
        self.bytes_skipped += other.bytes_skipped;
        self.leaf_walk_bytes += other.leaf_walk_bytes;
        self.overhead.merge(&other.overhead);
    }
}

thread_local! {
    static STATS: RefCell<HierarchyStats> = RefCell::new(HierarchyStats::default());
}

/// Drains the [`HierarchyStats`] accumulated by hierarchical diffs on the
/// *current thread* since the last call.
///
/// The diff entry points keep their signatures free of out-params by
/// accumulating here; callers that export metrics take the stats right
/// after the diff call, on the same thread that ran it (the streaming
/// paths run the matcher on the encoder thread — take the stats inside
/// the encode closure).
pub fn take_hierarchy_stats() -> HierarchyStats {
    STATS.with(|s| std::mem::take(&mut *s.borrow_mut()))
}

/// Merges `stats` into the current thread's accumulator. Pipelines that
/// run the diff on a dedicated encoder thread drain there and re-record
/// here, so their callers see the stats through [`take_hierarchy_stats`]
/// exactly as with an in-thread diff.
pub fn record_hierarchy_stats(stats: &HierarchyStats) {
    STATS.with(|s| s.borrow_mut().merge(stats));
}

/// A verified identical region: `len` bytes at `new_start` of the new
/// file equal to the bytes at `old_start` of the old file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SpanPair {
    pub new_start: usize,
    pub old_start: usize,
    pub len: usize,
}

/// 64-bit span fingerprint, word-wise FNV-style. Collisions are harmless
/// — every map hit is verified byte-for-byte before a span is accepted —
/// so speed beats cryptographic strength here.
fn span_hash(data: &[u8]) -> u64 {
    const K: u64 = 0x100000001b3;
    let mut h = 0xcbf29ce484222325u64 ^ (data.len() as u64).wrapping_mul(K);
    let mut words = data.chunks_exact(8);
    for w in words.by_ref() {
        h = (h ^ u64::from_le_bytes(w.try_into().expect("8-byte chunk"))).wrapping_mul(K);
    }
    for &b in words.remainder() {
        h = (h ^ b as u64).wrapping_mul(K);
    }
    h ^ (h >> 32)
}

/// Word-wise equal-run scan: maximal runs of `a[i..] == b[i..]` at least
/// `min_run` bytes long, over the common prefix length of the two views.
/// Run bounds are word-aligned at the start and byte-exact at the end —
/// coverage, not correctness, is at stake, so the cheap scan wins.
fn equal_runs(a: &[u8], b: &[u8], min_run: usize) -> Vec<(usize, usize)> {
    let common = a.len().min(b.len());
    let mut runs = Vec::new();
    let mut run_start: Option<usize> = None;
    let words = common / 8;
    let close = |start: usize, end: usize, runs: &mut Vec<(usize, usize)>| {
        if end - start >= min_run {
            runs.push((start, end));
        }
    };
    for w in 0..words {
        let i = w * 8;
        let x = u64::from_le_bytes(a[i..i + 8].try_into().expect("8-byte chunk"));
        let y = u64::from_le_bytes(b[i..i + 8].try_into().expect("8-byte chunk"));
        if x == y {
            if run_start.is_none() {
                run_start = Some(i);
            }
        } else if let Some(start) = run_start.take() {
            // Extend byte-exactly into the mismatching word.
            let extra = ((x ^ y).trailing_zeros() / 8) as usize;
            close(start, i + extra, &mut runs);
        }
    }
    if let Some(start) = run_start {
        // Extend through the byte tail past the last full word.
        let mut end = words * 8;
        while end < common && a[end] == b[end] {
            end += 1;
        }
        close(start, end, &mut runs);
    }
    runs
}

/// Same-offset prescan: identical runs of `old[i..] == new[i..]`.
fn aligned_runs(old: &[u8], new: &[u8], min_run: usize, stats: &mut HierarchyStats) -> Vec<SpanPair> {
    stats.overhead.bytes_compared += old.len().min(new.len()) as u64;
    let runs: Vec<SpanPair> = equal_runs(old, new, min_run)
        .into_iter()
        .map(|(s, e)| SpanPair {
            new_start: s,
            old_start: s,
            len: e - s,
        })
        .collect();
    stats.aligned_runs += runs.len() as u64;
    runs
}

/// Prescan at a fixed shift: compares `new[p]` against `old[p - shift]`
/// over the still-uncovered ranges only. A single insertion (or
/// truncation) of `s` bytes shifts everything after it by exactly
/// `s = new_len - old_len`, so probing that one offset catches the whole
/// shifted suffix at memcmp speed and the shingle ladder never pays its
/// gear pass over two near-identical files for the dominant
/// prepend/append pattern.
fn shifted_runs(
    old: &[u8],
    new: &[u8],
    shift: isize,
    min_run: usize,
    pending: &[(usize, usize)],
    stats: &mut HierarchyStats,
) -> Vec<SpanPair> {
    // Positions p where old[p - shift] exists.
    let lo = shift.max(0) as usize;
    let hi = (old.len() as isize + shift).clamp(0, new.len() as isize) as usize;
    let mut runs = Vec::new();
    for &(r0, r1) in pending {
        let p0 = r0.max(lo);
        let p1 = r1.min(hi);
        if p1 <= p0 {
            continue;
        }
        let q0 = (p0 as isize - shift) as usize;
        let len = p1 - p0;
        stats.overhead.bytes_compared += len as u64;
        for (s, e) in equal_runs(&old[q0..q0 + len], &new[p0..p0 + len], min_run) {
            runs.push(SpanPair {
                new_start: p0 + s,
                old_start: q0 + s,
                len: e - s,
            });
        }
    }
    stats.aligned_runs += runs.len() as u64;
    runs
}

/// The byte ranges of `new` not covered by `spans` (which must be sorted
/// and non-overlapping).
fn uncovered_ranges(spans: &[SpanPair], new_len: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut at = 0usize;
    for s in spans {
        if s.new_start > at {
            out.push((at, s.new_start));
        }
        at = s.new_start + s.len;
    }
    if at < new_len {
        out.push((at, new_len));
    }
    out
}

/// Computes the verified identical spans between `old` and `new`:
/// aligned prescan first, then the configured shingle levels over
/// whatever remains. Returned spans are sorted by `new_start`,
/// non-overlapping in `new`, merged where contiguous in both files, and
/// at least `block_size` long (shorter matches cannot seed a
/// fast-forward window and are left to the leaf walk).
pub(crate) fn compute_spans(
    old: &[u8],
    new: &[u8],
    block_size: usize,
    hp: &HierarchyParams,
    stats: &mut HierarchyStats,
) -> Vec<SpanPair> {
    let mut spans = aligned_runs(old, new, 4 * block_size, stats);
    let mut pending = uncovered_ranges(&spans, new.len());
    // Length-difference shift probe: a lone insertion or truncation moves
    // every byte after it by exactly `new_len - old_len`, so one more
    // word-wise pass at that offset resolves whole shifted suffixes
    // before the (much costlier) shingle levels get involved.
    let shift = new.len() as isize - old.len() as isize;
    if shift != 0 && !pending.is_empty() {
        let shifted = shifted_runs(old, new, shift, 4 * block_size, &pending, stats);
        if !shifted.is_empty() {
            spans.extend(shifted);
            spans.sort_by_key(|s| s.new_start);
            pending = uncovered_ranges(&spans, new.len());
        }
    }
    for (level, params) in hp.level_params().enumerate() {
        let pending_bytes: usize = pending.iter().map(|(a, b)| b - a).sum();
        if pending.is_empty() {
            break;
        }
        // Cost-model gate: indexing the whole old file at this level
        // costs an old-side pass; descending only pays when the pending
        // ranges would otherwise leaf-walk more work than that pass.
        if pending_bytes.saturating_mul(8) < old.len() {
            break;
        }
        // Old-side shingle map at this level: (hash, len) -> first offset.
        let old_cuts = cut_spans_sparse(old, &params, &mut stats.overhead.bytes_chunked);
        let mut map: HashMap<(u64, u64), u64> = HashMap::with_capacity(old_cuts.len());
        for c in &old_cuts {
            let bytes = c.slice(old);
            stats.overhead.bytes_strong_hashed += c.len;
            map.entry((span_hash(bytes), c.len)).or_insert(c.offset);
        }
        let mut still_pending = Vec::new();
        for &(r0, r1) in &pending {
            let range = &new[r0..r1];
            let cuts = cut_spans_sparse(range, &params, &mut stats.overhead.bytes_chunked);
            for c in &cuts {
                let bytes = c.slice(range);
                stats.overhead.bytes_strong_hashed += c.len;
                let matched = map.get(&(span_hash(bytes), c.len)).copied().and_then(|off| {
                    let candidate = &old[off as usize..off as usize + bytes.len()];
                    stats.overhead.bytes_compared += c.len;
                    (candidate == bytes).then_some(off as usize)
                });
                if let Some(old_start) = matched {
                    stats.level_chunks_matched[level] += 1;
                    spans.push(SpanPair {
                        new_start: r0 + c.offset as usize,
                        old_start,
                        len: c.len as usize,
                    });
                } else {
                    still_pending.push((r0 + c.offset as usize, r0 + (c.offset + c.len) as usize));
                }
            }
        }
        pending = still_pending;
    }
    spans.sort_by_key(|s| s.new_start);
    // Merge spans contiguous in both files, then drop the ones too short
    // to hold a window.
    let mut merged: Vec<SpanPair> = Vec::with_capacity(spans.len());
    for s in spans {
        if let Some(last) = merged.last_mut() {
            if last.new_start + last.len == s.new_start && last.old_start + last.len == s.old_start
            {
                last.len += s.len;
                continue;
            }
        }
        merged.push(s);
    }
    merged.retain(|s| s.len >= block_size);
    stats.bytes_skipped += merged.iter().map(|s| s.len as u64).sum::<u64>();
    stats.leaf_walk_bytes +=
        new.len() as u64 - merged.iter().map(|s| s.len as u64).sum::<u64>();
    merged
}

/// The window-position ranges the leaf walk must actually scan: the
/// complement of the spans' *safe* regions (positions whose whole window
/// lies inside a span) over `[0, new_len - block_size + 1)`.
fn gap_position_ranges(
    spans: &[SpanPair],
    new_len: usize,
    block_size: usize,
) -> Vec<(usize, usize)> {
    if new_len < block_size {
        return Vec::new();
    }
    let positions = new_len - block_size + 1;
    let mut out = Vec::new();
    let mut at = 0usize;
    for s in spans {
        // Safe positions of this span: [new_start, new_start + len - bs].
        let safe_start = s.new_start.min(positions);
        let safe_end = (s.new_start + s.len - block_size + 1).min(positions);
        if safe_start > at {
            out.push((at, safe_start));
        }
        at = at.max(safe_end);
    }
    if at < positions {
        out.push((at, positions));
    }
    out
}

/// Splits the gap ranges into roughly `workers`-balanced scan segments.
fn split_gap_segments(gaps: &[(usize, usize)], workers: usize) -> Vec<(usize, usize)> {
    let total: usize = gaps.iter().map(|(a, b)| b - a).sum();
    if total == 0 {
        return Vec::new();
    }
    let target = total.div_ceil(workers.max(1)).max(16 * 1024);
    let mut out = Vec::new();
    for &(a, b) in gaps {
        let mut start = a;
        while start < b {
            let end = (start + target).min(b);
            out.push((start, end));
            start = end;
        }
    }
    out
}

/// Streaming feed over the gap scan segments: per-segment tables arrive
/// over a channel in whatever order the scan workers finish; `ensure`
/// splices them in segment order so the replay only ever sees an
/// append-only, position-sorted prefix (the same contract as the PR 3
/// `StreamFeed`).
struct GapFeed<'a> {
    bounds: &'a [(usize, usize)],
    rx: std::sync::mpsc::Receiver<(usize, ScanTable)>,
    pending: Vec<Option<ScanTable>>,
    next: usize,
    acc: ScanTable,
}

impl TableFeed for GapFeed<'_> {
    fn ensure(&mut self, pos: usize) -> &ScanTable {
        while self.next < self.bounds.len() && self.bounds[self.next].0 <= pos {
            while self.pending[self.next].is_none() {
                let (i, seg) = self.rx.recv().expect("gap scan worker disconnected");
                self.pending[i] = Some(seg);
            }
            let seg = self.pending[self.next].take().expect("segment just arrived");
            self.acc.records.extend(seg.records);
            self.acc.unprobed.extend(seg.unprobed);
            self.next += 1;
        }
        &self.acc
    }
}

/// Scans the gap segments across a pool of `workers` scoped threads
/// (work-stealing over the segment list) while `consume` replays against
/// the incrementally-fed table — the overlap that keeps the streaming
/// path streaming.
fn scan_gaps_streaming<P, F, T>(
    new: &[u8],
    block_size: usize,
    segs: &[(usize, usize)],
    workers: usize,
    probe: &P,
    consume: F,
) -> T
where
    P: Fn(u32, &[u8]) -> Option<ProbeOutcome> + Sync,
    F: FnOnce(&mut dyn TableFeed) -> T,
{
    if segs.is_empty() {
        let empty = ScanTable::empty();
        return consume(&mut ReadyFeed(&empty));
    }
    let nworkers = workers.clamp(1, segs.len());
    let (tx, rx) = std::sync::mpsc::channel::<(usize, ScanTable)>();
    let task = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..nworkers {
            let tx = tx.clone();
            let task = &task;
            s.spawn(move || loop {
                let i = task.fetch_add(1, Ordering::Relaxed);
                if i >= segs.len() {
                    break;
                }
                let (a, b) = segs[i];
                let seg = scan_segment(new, block_size, a, b, probe);
                if tx.send((i, seg)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut feed = GapFeed {
            bounds: segs,
            rx,
            pending: (0..segs.len()).map(|_| None).collect(),
            next: 0,
            acc: ScanTable::empty(),
        };
        consume(&mut feed)
    })
}

/// Replays the sequential greedy walk with span fast-forwarding.
///
/// Position classes:
/// * **span-safe, old-aligned** — the window equals a full old block, so
///   the memoized `self_probe` answers in O(1) and the walk jumps a
///   block without reading the new bytes;
/// * **span-safe, unaligned** — the window equals an unaligned old
///   slice; `probe_at` answers from scratch (at most `block_size - 1`
///   such positions per span entry before the walk aligns);
/// * **gap** — answered from the scanned tables exactly as
///   [`replay_with`](crate::parallel) does: a record is a weak hit with
///   its precomputed confirm cost, an unprobed interval triggers an
///   on-demand probe, anything else is a scanned miss.
///
/// Rolling bytes are charged along the replayed path — full window at
/// every (re)initialization, one per slide — so `Cost` totals equal the
/// sequential matcher's to the byte.
#[allow(clippy::too_many_arguments)]
fn hier_replay_with<S: OpSink>(
    new: &[u8],
    block_size: usize,
    spans: &[SpanPair],
    feed: &mut dyn TableFeed,
    self_probe: &mut dyn FnMut(u32) -> ProbeOutcome,
    cost: &mut Cost,
    charge: impl Fn(&mut Cost, u64, u64),
    block_range: impl Fn(u32) -> (u64, u64),
    probe_at: impl Fn(usize) -> Option<ProbeOutcome>,
    sink: &mut S,
) {
    let mut literal_start = 0usize;
    let mut pos = 0usize;
    let mut cursor = 0usize;
    let mut iv = 0usize;
    let mut sc = 0usize;

    let flush_literal = |sink: &mut S, from: usize, to: usize, cost: &mut Cost| {
        if to > from {
            sink.literal(&new[from..to]);
            cost.bytes_copied += (to - from) as u64;
        }
    };

    if new.len() >= block_size {
        cost.bytes_rolled += block_size as u64;
        loop {
            while sc < spans.len() && spans[sc].new_start + spans[sc].len - block_size < pos {
                sc += 1;
            }
            let matched = if sc < spans.len() && spans[sc].new_start <= pos {
                let s = &spans[sc];
                let q = s.old_start + (pos - s.new_start);
                if q.is_multiple_of(block_size) {
                    let (m, confirm_bytes, confirm_ops) =
                        self_probe((q / block_size) as u32);
                    charge(cost, confirm_bytes, confirm_ops);
                    m
                } else {
                    match probe_at(pos) {
                        Some((m, confirm_bytes, confirm_ops)) => {
                            charge(cost, confirm_bytes, confirm_ops);
                            m
                        }
                        None => None,
                    }
                }
            } else {
                let table = feed.ensure(pos);
                let records = &table.records;
                while cursor < records.len() && records[cursor].pos < pos {
                    cursor += 1;
                }
                while iv < table.unprobed.len() && table.unprobed[iv].1 <= pos {
                    iv += 1;
                }
                if cursor < records.len() && records[cursor].pos == pos {
                    let r = &records[cursor];
                    charge(cost, r.confirm_bytes, r.confirm_ops);
                    r.matched
                } else if iv < table.unprobed.len()
                    && table.unprobed[iv].0 <= pos
                    && pos < table.unprobed[iv].1
                {
                    match probe_at(pos) {
                        Some((m, confirm_bytes, confirm_ops)) => {
                            charge(cost, confirm_bytes, confirm_ops);
                            m
                        }
                        None => None,
                    }
                } else {
                    None
                }
            };
            if let Some(block_idx) = matched {
                flush_literal(sink, literal_start, pos, cost);
                let (offset, len) = block_range(block_idx);
                sink.copy(offset, len);
                pos += block_size;
                literal_start = pos;
                if pos + block_size > new.len() {
                    break;
                }
                cost.bytes_rolled += block_size as u64;
            } else {
                if pos + block_size >= new.len() {
                    break;
                }
                cost.bytes_rolled += 1;
                pos += 1;
            }
        }
    }
    flush_literal(sink, literal_start, new.len(), cost);
}

/// The hierarchical matcher, generic over the path-specific probe /
/// charge / block-range closures so `local` and `rsync` share one
/// implementation. The caller has already built (and charged) the weak
/// index the probe closes over.
///
/// `self_probe_meta` answers "what would the sequential probe return for
/// old block `b` probing its own content?" from index/signature
/// *metadata* — no window checksum, usually no byte compares — and is
/// the reason span fast-forwarding beats the byte walk on the clock.
/// Returning `None` falls back to an honest windowed probe; either way
/// the memoized answer (and the cost charged through `charge`) must be
/// exactly what the sequential walk computes at that position.
#[allow(clippy::too_many_arguments)]
pub(crate) fn diff_hier_sink<S, P>(
    old: &[u8],
    new: &[u8],
    block_size: usize,
    hp: &HierarchyParams,
    workers: usize,
    probe: &P,
    self_probe_meta: impl Fn(u32) -> Option<ProbeOutcome>,
    cost: &mut Cost,
    charge: impl Fn(&mut Cost, u64, u64),
    block_range: impl Fn(u32) -> (u64, u64),
    sink: &mut S,
) where
    S: OpSink,
    P: Fn(u32, &[u8]) -> Option<ProbeOutcome> + Sync,
{
    let mut stats = HierarchyStats {
        diffs: 1,
        ..HierarchyStats::default()
    };
    let spans = compute_spans(old, new, block_size, hp, &mut stats);
    let gaps = gap_position_ranges(&spans, new.len(), block_size);
    let segs = split_gap_segments(&gaps, workers);
    let memo: RefCell<HashMap<u32, ProbeOutcome>> = RefCell::new(HashMap::new());
    let fallback_probes = std::cell::Cell::new(0u64);
    let mut self_probe = |block: u32| -> ProbeOutcome {
        if let Some(hit) = memo.borrow().get(&block) {
            return *hit;
        }
        let outcome = self_probe_meta(block).unwrap_or_else(|| {
            fallback_probes.set(fallback_probes.get() + 1);
            let start = block as usize * block_size;
            let window = &old[start..start + block_size];
            probe(RollingChecksum::new(window).digest(), window)
                .expect("full old block must hit its own weak map")
        });
        memo.borrow_mut().insert(block, outcome);
        outcome
    };
    scan_gaps_streaming(new, block_size, &segs, workers, probe, |feed| {
        hier_replay_with(
            new,
            block_size,
            &spans,
            feed,
            &mut self_probe,
            cost,
            charge,
            block_range,
            |pos| {
                let window = &new[pos..pos + block_size];
                probe(RollingChecksum::new(window).digest(), window)
            },
            sink,
        );
    });
    stats.overhead.bytes_rolled += fallback_probes.get() * block_size as u64;
    record_hierarchy_stats(&stats);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_levels() -> HierarchyParams {
        HierarchyParams::from_levels(&[
            CdcParams {
                min_size: 128,
                mask_bits: 7,
                max_size: 2048,
            },
            CdcParams {
                min_size: 32,
                mask_bits: 5,
                max_size: 512,
            },
        ])
        .with_min_file_bytes(0)
    }

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect()
    }

    #[test]
    fn span_hash_differs_on_content_and_length() {
        assert_ne!(span_hash(b"abcdefgh"), span_hash(b"abcdefgi"));
        assert_ne!(span_hash(b"abc"), span_hash(b"abcd"));
        assert_eq!(span_hash(b"same bytes!"), span_hash(b"same bytes!"));
    }

    #[test]
    fn aligned_prescan_finds_identical_runs() {
        let old = pseudo_random(10_000, 3);
        let mut new = old.clone();
        new[5_000] ^= 0xFF;
        let mut stats = HierarchyStats::default();
        let runs = aligned_runs(&old, &new, 64, &mut stats);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].new_start, 0);
        assert!(runs[0].len >= 4_992 && runs[0].len <= 5_000);
        assert!(runs[1].new_start > 5_000 && runs[1].new_start <= 5_008);
        assert_eq!(runs[1].new_start + runs[1].len, 10_000);
        assert_eq!(stats.aligned_runs, 2);
    }

    #[test]
    fn aligned_prescan_ignores_short_runs() {
        let old = pseudo_random(1_000, 5);
        let mut new = pseudo_random(1_000, 7);
        new[100..140].copy_from_slice(&old[100..140]);
        let mut stats = HierarchyStats::default();
        assert!(aligned_runs(&old, &new, 256, &mut stats).is_empty());
    }

    #[test]
    fn shift_probe_resolves_a_prepended_suffix() {
        let old = pseudo_random(20_000, 11);
        let mut new = pseudo_random(777, 13);
        new.extend_from_slice(&old);
        let mut stats = HierarchyStats::default();
        // Offset 0 finds nothing; the length-difference probe must pair
        // the entire shifted suffix in one run.
        assert!(aligned_runs(&old, &new, 512, &mut stats).is_empty());
        let runs = shifted_runs(&old, &new, 777, 512, &[(0, new.len())], &mut stats);
        assert_eq!(runs.len(), 1);
        assert_eq!(
            runs[0],
            SpanPair {
                new_start: 777,
                old_start: 0,
                len: 20_000
            }
        );
        // And compute_spans wires the probe in: no shingle level needed.
        let hp = HierarchyParams::default().with_min_file_bytes(0);
        let mut cstats = HierarchyStats::default();
        let spans = compute_spans(&old, &new, 64, &hp, &mut cstats);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].old_start, 0);
        assert_eq!(spans[0].new_start, 777);
        assert_eq!(cstats.overhead.bytes_chunked, 0, "gear pass should not run");
    }

    #[test]
    fn shingle_levels_match_shifted_content() {
        // Two insertions of different sizes: the same-offset prescan finds
        // nothing, the length-difference probe only pairs the suffix after
        // the second insertion, and the body between the two shifts is the
        // shingle map's to recover.
        let old = pseudo_random(50_000, 11);
        let mut new = pseudo_random(777, 13);
        new.extend_from_slice(&old[..25_000]);
        new.extend_from_slice(&pseudo_random(531, 17));
        new.extend_from_slice(&old[25_000..]);
        let mut stats = HierarchyStats::default();
        let spans = compute_spans(&old, &new, 64, &tiny_levels(), &mut stats);
        assert_eq!(stats.aligned_runs, 1, "shift probe should pair the suffix only");
        assert!(
            stats.level_chunks_matched.iter().sum::<u64>() > 0,
            "no shingle matches"
        );
        let covered: usize = spans.iter().map(|s| s.len).sum();
        assert!(
            covered > old.len() * 8 / 10,
            "only {covered} of {} bytes covered",
            old.len()
        );
        for s in &spans {
            assert_eq!(
                &new[s.new_start..s.new_start + s.len],
                &old[s.old_start..s.old_start + s.len],
                "span not byte-identical"
            );
        }
    }

    #[test]
    fn spans_are_sorted_disjoint_and_merged() {
        let old = pseudo_random(40_000, 17);
        let mut new = old.clone();
        new[10_000] ^= 1;
        new[30_000] ^= 1;
        let mut stats = HierarchyStats::default();
        let spans = compute_spans(&old, &new, 32, &tiny_levels(), &mut stats);
        let mut at = 0usize;
        for s in &spans {
            assert!(s.new_start >= at, "overlap");
            assert!(s.len >= 32);
            at = s.new_start + s.len;
        }
        assert_eq!(
            stats.bytes_skipped + stats.leaf_walk_bytes,
            new.len() as u64
        );
    }

    #[test]
    fn descent_gate_skips_cdc_when_pending_is_tiny() {
        // 1% divergence: the leaf walk is cheaper than an old-side
        // shingle pass, so no CDC level should engage.
        let old = pseudo_random(100_000, 19);
        let mut new = old.clone();
        new[50_000..50_500].copy_from_slice(&pseudo_random(500, 21));
        let mut stats = HierarchyStats::default();
        let _ = compute_spans(&old, &new, 64, &tiny_levels(), &mut stats);
        assert_eq!(stats.level_chunks_matched, [0; MAX_LEVELS]);
        assert!(stats.overhead.bytes_chunked == 0);
        assert!(stats.bytes_skipped > 0);
    }

    #[test]
    fn gap_ranges_complement_safe_regions() {
        let spans = vec![
            SpanPair {
                new_start: 100,
                old_start: 0,
                len: 200,
            },
            SpanPair {
                new_start: 500,
                old_start: 300,
                len: 64,
            },
        ];
        let bs = 64;
        let gaps = gap_position_ranges(&spans, 1000, bs);
        // Safe regions: [100, 237) and [500, 501).
        assert_eq!(gaps, vec![(0, 100), (237, 500), (501, 937)]);
        // Short input: no positions at all.
        assert!(gap_position_ranges(&spans, 63, bs).is_empty());
        // No spans: one gap covering every position.
        assert_eq!(gap_position_ranges(&[], 1000, bs), vec![(0, 937)]);
    }

    #[test]
    fn gap_segments_split_and_cover() {
        let gaps = vec![(0usize, 40_000usize), (60_000, 61_000)];
        let segs = split_gap_segments(&gaps, 2);
        assert!(segs.len() >= 2);
        let mut covered = 0usize;
        let mut last_end = 0usize;
        for &(a, b) in &segs {
            assert!(a >= last_end);
            covered += b - a;
            last_end = b;
        }
        assert_eq!(covered, 41_000);
        assert!(split_gap_segments(&[], 4).is_empty());
    }
}
