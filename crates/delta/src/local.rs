//! The paper's lightweight local delta encoding (§III-A).
//!
//! When the relation table triggers delta encoding, *both* the old and the
//! new version of the file are on the client (the old version survives as
//! the `dst` of a relation entry, e.g. Word's `t0`). Classic rsync was
//! designed for files on different machines and therefore pays for MD5
//! strong checksums; with both files local, a candidate match found by the
//! rolling checksum can instead be verified by **bitwise comparison**,
//! which short-circuits on the first differing byte and costs no hashing
//! at all.
//!
//! The emitted [`Delta`] is bit-for-bit compatible with
//! [`rsync::diff`](crate::rsync::diff)'s output format, so the cloud-side
//! apply path is shared.

use std::collections::HashMap;

use crate::cost::Cost;
use crate::delta_ops::Delta;
use crate::rolling::RollingChecksum;
use crate::rsync::diff_with;
use crate::DeltaParams;

/// Computes a [`Delta`] from `old` to `new` using rolling-checksum search
/// with bitwise confirmation (no strong checksums).
///
/// Charges rolled and compared bytes to `cost`;
/// `cost.bytes_strong_hashed` is never incremented by this function —
/// that is the whole point.
pub fn diff(old: &[u8], new: &[u8], params: &DeltaParams, cost: &mut Cost) -> Delta {
    let bs = params.block_size;
    // Index old-file blocks by weak checksum only.
    let nblocks = old.len().div_ceil(bs);
    let mut weak_map: HashMap<u32, Vec<u32>> = HashMap::with_capacity(nblocks);
    for (i, block) in old.chunks(bs).enumerate() {
        let weak = RollingChecksum::new(block).digest();
        cost.bytes_rolled += block.len() as u64;
        cost.ops += 1;
        weak_map.entry(weak).or_default().push(i as u32);
    }
    diff_with(
        new,
        bs,
        cost,
        |weak| weak_map.get(&weak).map(|v| v.as_slice()),
        |window, candidates, cost| {
            candidates.iter().copied().find(|&b| {
                let start = b as usize * bs;
                let block = &old[start..(start + bs).min(old.len())];
                let (equal, compared) = bitwise_eq(block, window);
                cost.bytes_compared += compared;
                cost.ops += 1;
                equal
            })
        },
        |block_idx| {
            let start = block_idx as u64 * bs as u64;
            let len = (old.len() as u64 - start).min(bs as u64);
            (start, len)
        },
    )
}

/// Compares two slices, returning whether they are equal and how many bytes
/// were examined before the answer was known (mismatches short-circuit).
fn bitwise_eq(a: &[u8], b: &[u8]) -> (bool, u64) {
    if a.len() != b.len() {
        return (false, 0);
    }
    match a.iter().zip(b.iter()).position(|(x, y)| x != y) {
        Some(idx) => (false, idx as u64 + 1),
        None => (true, a.len() as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(old: &[u8], new: &[u8], bs: usize) -> (Delta, Cost) {
        let mut cost = Cost::new();
        let delta = diff(old, new, &DeltaParams::with_block_size(bs), &mut cost);
        assert_eq!(delta.apply(old).unwrap(), new);
        (delta, cost)
    }

    #[test]
    fn never_strong_hashes() {
        let old = b"hello world, this is a longer buffer".repeat(100);
        let mut new = old.clone();
        new[50] = b'#';
        let (_, cost) = roundtrip(&old, &new, 64);
        assert_eq!(cost.bytes_strong_hashed, 0);
        assert!(cost.bytes_compared > 0);
    }

    #[test]
    fn identical_files_full_copy() {
        let data = vec![42u8; 8192];
        let (delta, _) = roundtrip(&data, &data, 512);
        assert_eq!(delta.literal_bytes(), 0);
        assert_eq!(delta.copy_bytes(), 8192);
    }

    #[test]
    fn matches_rsync_semantics_on_shifted_data() {
        let old: Vec<u8> = (0..8192u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut new = old.clone();
        new.splice(400..400, [0xEE; 13]);
        let (delta, _) = roundtrip(&old, &new, 128);
        assert!(delta.copy_bytes() as usize > old.len() * 9 / 10);
    }

    #[test]
    fn disjoint_files_are_all_literal() {
        let old = vec![0u8; 1000];
        let new = vec![1u8; 1000];
        let (delta, _) = roundtrip(&old, &new, 100);
        assert_eq!(delta.copy_bytes(), 0);
        assert_eq!(delta.literal_bytes(), 1000);
    }

    #[test]
    fn empty_edges() {
        roundtrip(b"", b"", 16);
        roundtrip(b"", b"xyz", 16);
        roundtrip(b"xyz", b"", 16);
    }

    #[test]
    fn comparison_short_circuits() {
        // All-zero old; new block differs in the first byte, so only one
        // byte per candidate comparison should be charged (plus full-block
        // compares for real matches).
        let old = vec![0u8; 1024];
        let mut new = vec![0u8; 1024];
        for (i, byte) in new.iter_mut().enumerate() {
            if i % 2 == 0 {
                *byte = 1;
            }
        }
        let (_, cost) = roundtrip(&old, &new, 64);
        // Comparisons happened but far fewer bytes than rolled.
        assert!(cost.bytes_compared < cost.bytes_rolled);
    }

    #[test]
    fn cheaper_than_rsync_on_same_input() {
        use crate::rsync;
        let old: Vec<u8> = (0..50_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut new = old.clone();
        new[12_345] ^= 0xFF;

        let params = DeltaParams::with_block_size(4096);
        let mut c_local = Cost::new();
        let d_local = diff(&old, &new, &params, &mut c_local);

        let mut c_rsync = Cost::new();
        let sig = rsync::signature(&old, &params, &mut c_rsync);
        let d_rsync = rsync::diff(&sig, &new, &params, &mut c_rsync);

        assert_eq!(d_local.apply(&old).unwrap(), d_rsync.apply(&old).unwrap());
        assert_eq!(c_local.bytes_strong_hashed, 0);
        assert!(c_rsync.bytes_strong_hashed >= old.len() as u64);
    }
}
