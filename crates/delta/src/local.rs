//! The paper's lightweight local delta encoding (§III-A).
//!
//! When the relation table triggers delta encoding, *both* the old and the
//! new version of the file are on the client (the old version survives as
//! the `dst` of a relation entry, e.g. Word's `t0`). Classic rsync was
//! designed for files on different machines and therefore pays for MD5
//! strong checksums; with both files local, a candidate match found by the
//! rolling checksum can instead be verified by **bitwise comparison**,
//! which short-circuits on the first differing byte and costs no hashing
//! at all.
//!
//! The emitted [`Delta`] is bit-for-bit compatible with
//! [`rsync::diff`](crate::rsync::diff)'s output format, so the cloud-side
//! apply path is shared. [`diff_parallel`] runs the same search across a
//! scoped worker pool and is guaranteed to produce byte-identical output
//! (and identical [`Cost`] totals) to [`diff`].

use std::collections::HashMap;

use crate::cost::Cost;
use crate::delta_ops::Delta;
use crate::hierarchy::{diff_hier_sink, HierarchyParams};
use crate::parallel::{replay_matches, replay_with, scan_matches, scan_streaming, ProbeOutcome};
use crate::rolling::RollingChecksum;
use crate::rsync::diff_with_sink;
use crate::stream::{ChunkSink, DeltaChunk, MaterializeSink, OpSink};
use crate::weak_index::{insert_candidate, CandidateSet, WeakFilter, WeakIndex};
use crate::DeltaParams;

/// Indexes old-file blocks by weak checksum only, charging the canonical
/// one-pass cost.
fn index_old(old: &[u8], bs: usize, cost: &mut Cost) -> HashMap<u32, CandidateSet> {
    let nblocks = old.len().div_ceil(bs);
    let mut weak_map: HashMap<u32, CandidateSet> = HashMap::with_capacity(nblocks);
    for (i, block) in old.chunks(bs).enumerate() {
        let weak = RollingChecksum::new(block).digest();
        cost.bytes_rolled += block.len() as u64;
        cost.ops += 1;
        insert_candidate(&mut weak_map, weak, i as u32);
    }
    weak_map
}

/// The sequential bitwise-confirming walk, generic over the op sink.
fn diff_sink<S: OpSink>(
    old: &[u8],
    new: &[u8],
    bs: usize,
    cost: &mut Cost,
    weak_map: &HashMap<u32, CandidateSet>,
    sink: &mut S,
) {
    let filter = WeakFilter::from_weak_keys(weak_map.keys().copied());
    diff_with_sink(
        new,
        bs,
        cost,
        Some(&filter),
        |weak| weak_map.get(&weak),
        |window, candidates, cost| {
            confirm_bitwise(old, bs, window, candidates, |bytes, ops| {
                cost.bytes_compared += bytes;
                cost.ops += ops;
            })
        },
        |block_idx| block_range(old.len(), bs, block_idx),
        sink,
    );
}

/// Computes a [`Delta`] from `old` to `new` using rolling-checksum search
/// with bitwise confirmation (no strong checksums).
///
/// Charges rolled and compared bytes to `cost`;
/// `cost.bytes_strong_hashed` is never incremented by this function —
/// that is the whole point.
pub fn diff(old: &[u8], new: &[u8], params: &DeltaParams, cost: &mut Cost) -> Delta {
    let bs = params.block_size;
    let weak_map = index_old(old, bs, cost);
    let mut sink = MaterializeSink::new();
    diff_sink(old, new, bs, cost, &weak_map, &mut sink);
    sink.into_delta()
}

/// Like [`diff`], but probes window positions across `workers` scoped
/// threads (old-file indexing is parallelized too, sharded by
/// `weak % workers`).
///
/// The output `Delta` is **byte-identical** to [`diff`]'s for any thread
/// count — candidate selection stays ordered by block index and the greedy
/// walk is replayed sequentially over the precomputed match table — and the
/// `Cost` totals are identical as well: speculative probing at positions
/// the greedy walk skips is wall-clock overhead of the parallel pipeline,
/// not algorithmic work, and is never charged.
///
/// `workers <= 1` — or an input below `params.min_parallel_bytes`, where
/// seam overhead would outweigh the parallel win — falls through to the
/// sequential implementation (same output and cost by contract).
pub fn diff_parallel(
    old: &[u8],
    new: &[u8],
    params: &DeltaParams,
    workers: usize,
    cost: &mut Cost,
) -> Delta {
    if let Some(h) = hierarchy_gate(params, new) {
        let mut sink = MaterializeSink::new();
        diff_hier_local(old, new, params.block_size, &h, workers, cost, &mut sink);
        return sink.into_delta();
    }
    if workers <= 1 || new.len() < params.min_parallel_bytes {
        return diff(old, new, params, cost);
    }
    let bs = params.block_size;
    let index = WeakIndex::build_parallel(old, bs, workers);
    // Canonical indexing cost: one weak pass over every old block, same as
    // the sequential loop charges.
    cost.bytes_rolled += old.len() as u64;
    cost.ops += old.len().div_ceil(bs) as u64;
    let probe = probe_bitwise(old, bs, &index);
    let table = scan_matches(new, bs, workers, &probe);
    replay_matches(
        new,
        bs,
        &table,
        cost,
        |cost, bytes, ops| {
            cost.bytes_compared += bytes;
            cost.ops += ops;
        },
        |block_idx| block_range(old.len(), bs, block_idx),
        |pos| {
            let window = &new[pos..pos + bs];
            probe(RollingChecksum::new(window).digest(), window)
        },
    )
}

/// The hierarchy gate: `Some(params)` when hierarchical matching is
/// configured and the new file clears its size floor.
fn hierarchy_gate(params: &DeltaParams, new: &[u8]) -> Option<HierarchyParams> {
    params
        .hierarchy
        .filter(|h| new.len() >= h.min_file_bytes && new.len() >= params.block_size)
}

/// Hierarchical coarse→fine walk with bitwise confirmation: shares the
/// canonical index charge and probe with [`diff_parallel`], hands the
/// rest to [`diff_hier_sink`]. Byte-identical output and [`Cost`] to
/// [`diff`], by contract.
fn diff_hier_local<S: OpSink>(
    old: &[u8],
    new: &[u8],
    bs: usize,
    h: &HierarchyParams,
    workers: usize,
    cost: &mut Cost,
    sink: &mut S,
) {
    let workers = workers.max(1);
    let index = WeakIndex::build_parallel(old, bs, workers);
    cost.bytes_rolled += old.len() as u64;
    cost.ops += old.len().div_ceil(bs) as u64;
    let probe = probe_bitwise(old, bs, &index);
    // Metadata self-probe: a span-aligned window IS old block `block`
    // (full length), so its weak digest is in the index's census. When
    // the block is the sole candidate of its digest class, the
    // sequential confirm compares it against itself — equal, all
    // `bs` bytes, one op — so the outcome is known without touching a
    // byte. Collision classes rerun the real candidate compares (the
    // window checksum alone is skipped; the digest is the census entry).
    let self_probe_meta = |block: u32| -> Option<ProbeOutcome> {
        let candidates = index.lookup(index.block_weak(block))?;
        let mut it = candidates.iter();
        if it.next() == Some(block) && it.next().is_none() {
            return Some((Some(block), bs as u64, 1));
        }
        let start = block as usize * bs;
        let window = &old[start..start + bs];
        let mut bytes = 0u64;
        let mut ops = 0u64;
        let matched = confirm_bitwise(old, bs, window, candidates, |b, o| {
            bytes += b;
            ops += o;
        });
        Some((matched, bytes, ops))
    };
    diff_hier_sink(
        old,
        new,
        bs,
        h,
        workers,
        &probe,
        self_probe_meta,
        cost,
        |cost, bytes, ops| {
            cost.bytes_compared += bytes;
            cost.ops += ops;
        },
        |block_idx| block_range(old.len(), bs, block_idx),
        sink,
    );
}

/// The bitwise-confirming probe shared by the parallel and streaming
/// paths.
fn probe_bitwise<'a>(
    old: &'a [u8],
    bs: usize,
    index: &'a WeakIndex,
) -> impl Fn(u32, &[u8]) -> Option<ProbeOutcome> + Sync + 'a {
    move |weak: u32, window: &[u8]| {
        index.lookup(weak).map(|candidates| {
            let mut bytes = 0u64;
            let mut ops = 0u64;
            let matched = confirm_bitwise(old, bs, window, candidates, |b, o| {
                bytes += b;
                ops += o;
            });
            (matched, bytes, ops)
        })
    }
}

/// Streaming variant of [`diff_parallel`]: instead of materializing a
/// [`Delta`], hands [`DeltaChunk`]s of at most `chunk_budget` literal
/// bytes to `emit` as the walk produces them — the replay releases a
/// chunk as soon as its scan segment resolves, so upload can overlap the
/// remaining encode work and in-flight literal memory stays bounded.
///
/// Reassembling the chunks with [`Delta::from_chunks`] yields output
/// byte-identical to [`diff`] / [`diff_parallel`], with identical
/// [`Cost`] totals. Sub-threshold or single-worker inputs run the
/// sequential walk through the same chunk sink.
pub fn diff_streaming(
    old: &[u8],
    new: &[u8],
    params: &DeltaParams,
    workers: usize,
    cost: &mut Cost,
    chunk_budget: usize,
    emit: impl FnMut(DeltaChunk),
) {
    let bs = params.block_size;
    let mut sink = ChunkSink::new(chunk_budget, emit);
    if let Some(h) = hierarchy_gate(params, new) {
        diff_hier_local(old, new, bs, &h, workers, cost, &mut sink);
    } else if workers <= 1 || new.len() < params.min_parallel_bytes {
        let weak_map = index_old(old, bs, cost);
        diff_sink(old, new, bs, cost, &weak_map, &mut sink);
    } else {
        let index = WeakIndex::build_parallel(old, bs, workers);
        cost.bytes_rolled += old.len() as u64;
        cost.ops += old.len().div_ceil(bs) as u64;
        let probe = probe_bitwise(old, bs, &index);
        scan_streaming(new, bs, workers, &probe, |feed| {
            replay_with(
                new,
                bs,
                feed,
                cost,
                |cost, bytes, ops| {
                    cost.bytes_compared += bytes;
                    cost.ops += ops;
                },
                |block_idx| block_range(old.len(), bs, block_idx),
                |pos| {
                    let window = &new[pos..pos + bs];
                    probe(RollingChecksum::new(window).digest(), window)
                },
                &mut sink,
            );
        });
    }
    sink.finish();
}

/// `(offset, len)` of block `block_idx` in an old file of `old_len` bytes.
fn block_range(old_len: usize, block_size: usize, block_idx: u32) -> (u64, u64) {
    let start = block_idx as u64 * block_size as u64;
    let len = (old_len as u64 - start).min(block_size as u64);
    (start, len)
}

/// Tries `candidates` in block-index order until one bitwise-matches
/// `window`, reporting each compare's exact cost through `charge(bytes,
/// ops)`. Shared by the sequential and parallel paths so they cannot
/// drift.
fn confirm_bitwise(
    old: &[u8],
    block_size: usize,
    window: &[u8],
    candidates: &CandidateSet,
    mut charge: impl FnMut(u64, u64),
) -> Option<u32> {
    for b in candidates.iter() {
        let start = b as usize * block_size;
        let block = &old[start..(start + block_size).min(old.len())];
        let (equal, compared) = bitwise_eq(block, window);
        charge(compared, 1);
        if equal {
            return Some(b);
        }
    }
    None
}

/// Compares two slices word-at-a-time (8-byte chunks), returning whether
/// they are equal and how many bytes were examined before the answer was
/// known.
///
/// The byte count is *exact*: on a mismatch inside a word, the XOR of the
/// two words locates the first differing byte, so the charge is the
/// position of that byte plus one — precisely what a byte-at-a-time
/// short-circuiting scan would report. `Cost::bytes_compared` accounting
/// is therefore unchanged by the word-wise fast path.
fn bitwise_eq(a: &[u8], b: &[u8]) -> (bool, u64) {
    if a.len() != b.len() {
        return (false, 0);
    }
    let mut a_words = a.chunks_exact(8);
    let mut b_words = b.chunks_exact(8);
    let mut i = 0usize;
    for (aw, bw) in a_words.by_ref().zip(b_words.by_ref()) {
        let x = u64::from_le_bytes(aw.try_into().expect("8-byte chunk"));
        let y = u64::from_le_bytes(bw.try_into().expect("8-byte chunk"));
        if x != y {
            // Little-endian: the lowest differing byte in memory is the
            // lowest non-zero byte of the XOR.
            let first = (x ^ y).trailing_zeros() as usize / 8;
            return (false, (i + first) as u64 + 1);
        }
        i += 8;
    }
    for (&x, &y) in a_words.remainder().iter().zip(b_words.remainder()) {
        if x != y {
            return (false, i as u64 + 1);
        }
        i += 1;
    }
    (true, a.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(old: &[u8], new: &[u8], bs: usize) -> (Delta, Cost) {
        let mut cost = Cost::new();
        let delta = diff(old, new, &DeltaParams::with_block_size(bs), &mut cost);
        assert_eq!(delta.apply(old).unwrap(), new);
        (delta, cost)
    }

    /// Reference byte-at-a-time comparison with the same contract.
    fn bitwise_eq_reference(a: &[u8], b: &[u8]) -> (bool, u64) {
        if a.len() != b.len() {
            return (false, 0);
        }
        match a.iter().zip(b.iter()).position(|(x, y)| x != y) {
            Some(idx) => (false, idx as u64 + 1),
            None => (true, a.len() as u64),
        }
    }

    #[test]
    fn never_strong_hashes() {
        let old = b"hello world, this is a longer buffer".repeat(100);
        let mut new = old.clone();
        new[50] = b'#';
        let (_, cost) = roundtrip(&old, &new, 64);
        assert_eq!(cost.bytes_strong_hashed, 0);
        assert!(cost.bytes_compared > 0);
    }

    #[test]
    fn identical_files_full_copy() {
        let data = vec![42u8; 8192];
        let (delta, _) = roundtrip(&data, &data, 512);
        assert_eq!(delta.literal_bytes(), 0);
        assert_eq!(delta.copy_bytes(), 8192);
    }

    #[test]
    fn matches_rsync_semantics_on_shifted_data() {
        let old: Vec<u8> = (0..8192u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut new = old.clone();
        new.splice(400..400, [0xEE; 13]);
        let (delta, _) = roundtrip(&old, &new, 128);
        assert!(delta.copy_bytes() as usize > old.len() * 9 / 10);
    }

    #[test]
    fn disjoint_files_are_all_literal() {
        let old = vec![0u8; 1000];
        let new = vec![1u8; 1000];
        let (delta, _) = roundtrip(&old, &new, 100);
        assert_eq!(delta.copy_bytes(), 0);
        assert_eq!(delta.literal_bytes(), 1000);
    }

    #[test]
    fn empty_edges() {
        roundtrip(b"", b"", 16);
        roundtrip(b"", b"xyz", 16);
        roundtrip(b"xyz", b"", 16);
    }

    #[test]
    fn comparison_short_circuits() {
        // All-zero old; new block differs in the first byte, so only one
        // byte per candidate comparison should be charged (plus full-block
        // compares for real matches).
        let old = vec![0u8; 1024];
        let mut new = vec![0u8; 1024];
        for (i, byte) in new.iter_mut().enumerate() {
            if i % 2 == 0 {
                *byte = 1;
            }
        }
        let (_, cost) = roundtrip(&old, &new, 64);
        // Comparisons happened but far fewer bytes than rolled.
        assert!(cost.bytes_compared < cost.bytes_rolled);
    }

    #[test]
    fn cheaper_than_rsync_on_same_input() {
        use crate::rsync;
        let old: Vec<u8> = (0..50_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut new = old.clone();
        new[12_345] ^= 0xFF;

        let params = DeltaParams::with_block_size(4096);
        let mut c_local = Cost::new();
        let d_local = diff(&old, &new, &params, &mut c_local);

        let mut c_rsync = Cost::new();
        let sig = rsync::signature(&old, &params, &mut c_rsync);
        let d_rsync = rsync::diff(&sig, &new, &params, &mut c_rsync);

        assert_eq!(d_local.apply(&old).unwrap(), d_rsync.apply(&old).unwrap());
        assert_eq!(c_local.bytes_strong_hashed, 0);
        assert!(c_rsync.bytes_strong_hashed >= old.len() as u64);
    }

    #[test]
    fn bitwise_eq_matches_reference_at_all_lengths() {
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 4095, 4096] {
            let a: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            // Equal slices: full length charged.
            assert_eq!(bitwise_eq(&a, &a), (true, len as u64), "equal len {len}");
            assert_eq!(bitwise_eq(&a, &a), bitwise_eq_reference(&a, &a));
            // Mismatch at every position: exact first-diff accounting.
            for at in 0..len {
                let mut b = a.clone();
                b[at] ^= 0x80;
                let got = bitwise_eq(&a, &b);
                assert_eq!(got, (false, at as u64 + 1), "len {len} mismatch at {at}");
                assert_eq!(got, bitwise_eq_reference(&a, &b));
            }
        }
    }

    #[test]
    fn bitwise_eq_mismatch_at_word_boundaries() {
        // The boundary cases the word-wise fast path must not miscount:
        // last byte of a word, first byte of the next, and the scalar tail.
        let len = 4096;
        let a = vec![0xA5u8; len];
        for at in [0usize, 6, 7, 8, 9, 4087, 4088, 4089, 4095] {
            let mut b = a.clone();
            b[at] = !b[at];
            assert_eq!(bitwise_eq(&a, &b), (false, at as u64 + 1), "boundary {at}");
        }
    }

    #[test]
    fn bitwise_eq_length_mismatch_is_free() {
        assert_eq!(bitwise_eq(b"abc", b"abcd"), (false, 0));
    }

    #[test]
    fn parallel_output_is_byte_identical() {
        let old: Vec<u8> = (0..30_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut new = old.clone();
        new.splice(5_000..5_000, [0xEE; 37]);
        new[70_000] ^= 0xFF;
        let params = DeltaParams::with_block_size(512).with_min_parallel_bytes(0);
        let mut c_seq = Cost::new();
        let d_seq = diff(&old, &new, &params, &mut c_seq);
        for workers in [2, 3, 4, 7] {
            let mut c_par = Cost::new();
            let d_par = diff_parallel(&old, &new, &params, workers, &mut c_par);
            assert_eq!(d_par, d_seq, "delta differs with {workers} workers");
            assert_eq!(c_par, c_seq, "cost differs with {workers} workers");
        }
    }

    #[test]
    fn parallel_handles_edge_inputs() {
        let params = DeltaParams::with_block_size(16).with_min_parallel_bytes(0);
        for (old, new) in [
            (&b""[..], &b""[..]),
            (&b""[..], &b"short"[..]),
            (&b"short"[..], &b""[..]),
            (&b"tiny"[..], &b"tin"[..]),
        ] {
            let mut c_seq = Cost::new();
            let d_seq = diff(old, new, &params, &mut c_seq);
            let mut c_par = Cost::new();
            let d_par = diff_parallel(old, new, &params, 4, &mut c_par);
            assert_eq!(d_par, d_seq);
            assert_eq!(c_par, c_seq);
            assert_eq!(d_par.apply(old).unwrap(), new);
        }
    }

    #[test]
    fn small_inputs_skip_parallel_segmentation() {
        // Below the threshold the parallel entry point must behave exactly
        // like the sequential one (it is documented to fall through).
        let old: Vec<u8> = (0..8_192u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut new = old.clone();
        new[1000] ^= 0xFF;
        let params = DeltaParams::with_block_size(512); // default 8 MiB gate
        assert!(new.len() < params.min_parallel_bytes);
        let mut c_seq = Cost::new();
        let d_seq = diff(&old, &new, &params, &mut c_seq);
        let mut c_par = Cost::new();
        let d_par = diff_parallel(&old, &new, &params, 8, &mut c_par);
        assert_eq!(d_par, d_seq);
        assert_eq!(c_par, c_seq);
    }

    fn tiny_hierarchy() -> HierarchyParams {
        use crate::cdc::CdcParams;
        HierarchyParams::from_levels(&[
            CdcParams {
                min_size: 128,
                mask_bits: 7,
                max_size: 2048,
            },
            CdcParams {
                min_size: 32,
                mask_bits: 5,
                max_size: 512,
            },
        ])
        .with_min_file_bytes(0)
    }

    #[test]
    fn hierarchical_output_is_byte_identical() {
        let old: Vec<u8> = (0..30_000u32).flat_map(|i| i.to_le_bytes()).collect();
        // A prepend (shift), a splice, a point edit and a tail append —
        // exercises prescan, shingle descent and the leaf walk at once.
        let mut new = vec![0xCD; 777];
        new.extend_from_slice(&old);
        new.splice(5_000..5_000, [0xEE; 37]);
        new[70_000] ^= 0xFF;
        new.extend_from_slice(&[0xBB; 3_000]);
        let params = DeltaParams::with_block_size(512);
        let mut c_seq = Cost::new();
        let d_seq = diff(&old, &new, &params, &mut c_seq);
        let hier = params.with_hierarchy(Some(tiny_hierarchy()));
        for workers in [1, 2, 4] {
            let mut c_h = Cost::new();
            let d_h = diff_parallel(&old, &new, &hier, workers, &mut c_h);
            let stats = crate::take_hierarchy_stats();
            assert_eq!(d_h, d_seq, "delta differs ({workers} workers)");
            assert_eq!(c_h, c_seq, "cost differs ({workers} workers)");
            assert!(stats.engaged());
            assert!(stats.bytes_skipped > 0, "hierarchy never skipped");
        }
    }

    #[test]
    fn hierarchical_streaming_respects_budget_and_identity() {
        let old: Vec<u8> = (0..30_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut new = old.clone();
        new.splice(40_000..40_000, [0x11; 999]);
        let params = DeltaParams::with_block_size(512);
        let mut c_seq = Cost::new();
        let d_seq = diff(&old, &new, &params, &mut c_seq);
        let hier = params.with_hierarchy(Some(tiny_hierarchy()));
        for budget in [64usize, 4096] {
            let mut c_h = Cost::new();
            let mut chunks = Vec::new();
            diff_streaming(&old, &new, &hier, 2, &mut c_h, budget, |c| chunks.push(c));
            let _ = crate::take_hierarchy_stats();
            assert!(chunks.iter().all(|c| c.literal_bytes() <= budget as u64));
            assert_eq!(chunks.last().map(|c| c.last), Some(true));
            assert_eq!(Delta::from_chunks(chunks), d_seq, "budget {budget}");
            assert_eq!(c_h, c_seq, "budget {budget}");
        }
    }

    #[test]
    fn hierarchy_min_size_gate_uses_plain_matcher() {
        let old: Vec<u8> = (0..8_192u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut new = old.clone();
        new[1000] ^= 0xFF;
        // Default 64 MiB floor: a 32 KB file must not engage the tree.
        let params =
            DeltaParams::with_block_size(512).with_hierarchy(Some(HierarchyParams::default()));
        let mut c = Cost::new();
        let d = diff_parallel(&old, &new, &params, 4, &mut c);
        assert!(!crate::take_hierarchy_stats().engaged());
        assert_eq!(d.apply(&old).unwrap(), new);
    }

    #[test]
    fn streaming_chunks_reassemble_byte_identically() {
        let old: Vec<u8> = (0..30_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut new = old.clone();
        new.splice(5_000..5_000, [0xEE; 37]);
        new[70_000] ^= 0xFF;
        new.extend_from_slice(&[0xBB; 3_000]);
        let params = DeltaParams::with_block_size(512).with_min_parallel_bytes(0);
        let mut c_seq = Cost::new();
        let d_seq = diff(&old, &new, &params, &mut c_seq);
        for workers in [1, 2, 4] {
            for budget in [64usize, 1024, 1 << 20] {
                let mut c_str = Cost::new();
                let mut chunks = Vec::new();
                diff_streaming(&old, &new, &params, workers, &mut c_str, budget, |c| {
                    chunks.push(c)
                });
                assert!(
                    chunks.iter().all(|c| c.literal_bytes() <= budget as u64),
                    "budget exceeded ({workers} workers, budget {budget})"
                );
                assert_eq!(chunks.last().map(|c| c.last), Some(true));
                let d_str = Delta::from_chunks(chunks);
                assert_eq!(d_str, d_seq, "{workers} workers, budget {budget}");
                assert_eq!(c_str, c_seq, "{workers} workers, budget {budget}");
            }
        }
    }
}
