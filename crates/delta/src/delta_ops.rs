use std::error::Error;
use std::fmt;

use bytes::Bytes;

/// One instruction of a [`Delta`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaOp {
    /// Copy `len` bytes starting at `offset` of the *old* file.
    Copy {
        /// Byte offset into the old file.
        offset: u64,
        /// Number of bytes to copy.
        len: u64,
    },
    /// Emit these bytes verbatim.
    Literal(Bytes),
}

/// A reconstruction recipe: applying it to the old file yields the new one.
///
/// This is the unit rsync transmits instead of the file. Its
/// [`wire_size`](Delta::wire_size) is what the network-traffic figures
/// count for delta-encoding engines.
///
/// # Example
///
/// ```
/// use bytes::Bytes;
/// use deltacfs_delta::{Delta, DeltaOp};
///
/// let delta = Delta::from_ops(vec![
///     DeltaOp::Copy { offset: 0, len: 3 },
///     DeltaOp::Literal(Bytes::from_static(b"XY")),
/// ]);
/// assert_eq!(delta.apply(b"abcdef")?, b"abcXY");
/// # Ok::<(), deltacfs_delta::ApplyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Delta {
    ops: Vec<DeltaOp>,
}

/// Per-instruction wire overhead: opcode + offset/length encoding.
///
/// Matches librsync's order of magnitude; the exact constant only has to be
/// charged consistently across engines.
pub const OP_HEADER_BYTES: u64 = 9;

impl Delta {
    /// Creates a delta from a list of instructions, merging adjacent
    /// compatible ops (back-to-back copies, back-to-back literals).
    pub fn from_ops(ops: Vec<DeltaOp>) -> Self {
        let mut merged: Vec<DeltaOp> = Vec::with_capacity(ops.len());
        for op in ops {
            match (merged.last_mut(), op) {
                (
                    Some(DeltaOp::Copy { offset, len }),
                    DeltaOp::Copy {
                        offset: o2,
                        len: l2,
                    },
                ) if *offset + *len == o2 => *len += l2,
                (Some(DeltaOp::Literal(a)), DeltaOp::Literal(b)) => {
                    let mut v = Vec::with_capacity(a.len() + b.len());
                    v.extend_from_slice(a);
                    v.extend_from_slice(&b);
                    *a = Bytes::from(v);
                }
                (_, op) => merged.push(op),
            }
        }
        Delta { ops: merged }
    }

    /// Reassembles a materialized delta from streamed chunks.
    ///
    /// Ops split at chunk boundaries (adjacent copies, a literal cut by
    /// the chunk budget) re-merge under the [`from_ops`](Delta::from_ops)
    /// rules, so the result is byte-identical to the `Delta` the
    /// non-streaming walk would have produced.
    pub fn from_chunks<I: IntoIterator<Item = crate::stream::DeltaChunk>>(chunks: I) -> Self {
        Delta::from_ops(chunks.into_iter().flat_map(|c| c.ops).collect())
    }

    /// The instructions, in order.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// Total bytes carried literally.
    pub fn literal_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                DeltaOp::Literal(b) => b.len() as u64,
                DeltaOp::Copy { .. } => 0,
            })
            .sum()
    }

    /// Total bytes referenced from the old file.
    pub fn copy_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                DeltaOp::Copy { len, .. } => *len,
                DeltaOp::Literal(_) => 0,
            })
            .sum()
    }

    /// Length of the file this delta reconstructs.
    pub fn output_len(&self) -> u64 {
        self.literal_bytes() + self.copy_bytes()
    }

    /// Size of the delta on the wire: literals plus per-op headers.
    pub fn wire_size(&self) -> u64 {
        self.literal_bytes() + OP_HEADER_BYTES * self.ops.len() as u64
    }

    /// Reconstructs the new file from `old`.
    ///
    /// # Errors
    ///
    /// Returns [`ApplyError`] if a copy instruction references bytes beyond
    /// the end of `old` — which means the delta was computed against a
    /// different base version (the situation DeltaCFS's version control
    /// exists to prevent).
    pub fn apply(&self, old: &[u8]) -> Result<Vec<u8>, ApplyError> {
        let mut out = Vec::with_capacity(self.output_len() as usize);
        for op in &self.ops {
            match op {
                DeltaOp::Copy { offset, len } => {
                    let start = *offset as usize;
                    let end =
                        start
                            .checked_add(*len as usize)
                            .ok_or(ApplyError::CopyOutOfRange {
                                offset: *offset,
                                len: *len,
                                old_len: old.len() as u64,
                            })?;
                    if end > old.len() {
                        return Err(ApplyError::CopyOutOfRange {
                            offset: *offset,
                            len: *len,
                            old_len: old.len() as u64,
                        });
                    }
                    out.extend_from_slice(&old[start..end]);
                }
                DeltaOp::Literal(b) => out.extend_from_slice(b),
            }
        }
        Ok(out)
    }
}

/// Error returned by [`Delta::apply`] when the base file does not match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApplyError {
    /// A copy instruction referenced a range outside the base file.
    CopyOutOfRange {
        /// Offset the instruction asked for.
        offset: u64,
        /// Length the instruction asked for.
        len: u64,
        /// Actual length of the base file.
        old_len: u64,
    },
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::CopyOutOfRange {
                offset,
                len,
                old_len,
            } => write!(
                f,
                "delta copy [{offset}, +{len}) exceeds base file of {old_len} bytes"
            ),
        }
    }
}

impl Error for ApplyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_mixed_ops() {
        let delta = Delta::from_ops(vec![
            DeltaOp::Literal(Bytes::from_static(b">>")),
            DeltaOp::Copy { offset: 2, len: 2 },
        ]);
        assert_eq!(delta.apply(b"abcd").unwrap(), b">>cd");
        assert_eq!(delta.output_len(), 4);
        assert_eq!(delta.literal_bytes(), 2);
        assert_eq!(delta.copy_bytes(), 2);
    }

    #[test]
    fn adjacent_copies_merge() {
        let delta = Delta::from_ops(vec![
            DeltaOp::Copy { offset: 0, len: 4 },
            DeltaOp::Copy { offset: 4, len: 4 },
            DeltaOp::Copy { offset: 10, len: 2 },
        ]);
        assert_eq!(delta.ops().len(), 2);
        assert_eq!(delta.wire_size(), 2 * OP_HEADER_BYTES);
    }

    #[test]
    fn adjacent_literals_merge() {
        let delta = Delta::from_ops(vec![
            DeltaOp::Literal(Bytes::from_static(b"ab")),
            DeltaOp::Literal(Bytes::from_static(b"cd")),
        ]);
        assert_eq!(delta.ops().len(), 1);
        assert_eq!(delta.apply(b"").unwrap(), b"abcd");
    }

    #[test]
    fn out_of_range_copy_errors() {
        let delta = Delta::from_ops(vec![DeltaOp::Copy { offset: 2, len: 10 }]);
        let err = delta.apply(b"abcd").unwrap_err();
        assert!(matches!(err, ApplyError::CopyOutOfRange { old_len: 4, .. }));
        assert!(err.to_string().contains("exceeds base file"));
    }

    #[test]
    fn empty_delta_yields_empty_file() {
        let delta = Delta::default();
        assert_eq!(delta.apply(b"whatever").unwrap(), Vec::<u8>::new());
        assert_eq!(delta.wire_size(), 0);
    }
}
