//! Fixed-size super-block deduplication, as Dropbox applies it.
//!
//! Dropbox deduplicates uploads at 4 MB granularity (paper §IV-B, citing
//! \[2\]): a file is split into fixed 4 MB blocks, each identified by a
//! strong hash; only blocks whose hash the server has not seen are
//! uploaded. The paper notes this "perfectly works for simple data upload"
//! but interacts badly with editing workloads where content shifts across
//! block boundaries, and it confines rsync to operate *within* each 4 MB
//! block (\[38\]).

use crate::cost::Cost;
use crate::md5_impl::md5;

/// Dropbox's deduplication block size: 4 MB.
pub const DROPBOX_BLOCK_SIZE: usize = 4 * 1024 * 1024;

/// A fixed-size block and its identity hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockId {
    /// Block index within the file (offset = index * block_size).
    pub index: u32,
    /// MD5 of the block's content.
    pub hash: [u8; 16],
}

/// Hashes `data` in fixed `block_size` blocks, charging the strong-hash
/// bytes to `cost`.
///
/// # Panics
///
/// Panics if `block_size` is zero.
pub fn block_ids(data: &[u8], block_size: usize, cost: &mut Cost) -> Vec<BlockId> {
    assert!(block_size > 0, "block size must be positive");
    data.chunks(block_size)
        .enumerate()
        .map(|(i, block)| {
            cost.bytes_strong_hashed += block.len() as u64;
            cost.ops += 1;
            BlockId {
                index: i as u32,
                hash: md5(block),
            }
        })
        .collect()
}

/// Returns the indices of blocks in `new` that are absent from `old`
/// (position-independent, i.e. true dedup against the known-block set).
pub fn changed_blocks(old: &[BlockId], new: &[BlockId]) -> Vec<u32> {
    use std::collections::HashSet;
    let known: HashSet<[u8; 16]> = old.iter().map(|b| b.hash).collect();
    new.iter()
        .filter(|b| !known.contains(&b.hash))
        .map(|b| b.index)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_files_have_no_changed_blocks() {
        let data = vec![5u8; 10_000];
        let a = block_ids(&data, 1024, &mut Cost::new());
        let b = block_ids(&data, 1024, &mut Cost::new());
        assert!(changed_blocks(&a, &b).is_empty());
    }

    #[test]
    fn single_byte_change_dirties_one_block() {
        let data = vec![5u8; 10_000];
        let mut edited = data.clone();
        edited[3000] = 9;
        let a = block_ids(&data, 1024, &mut Cost::new());
        let b = block_ids(&edited, 1024, &mut Cost::new());
        assert_eq!(changed_blocks(&a, &b), vec![2]);
    }

    #[test]
    fn shifted_content_dirties_everything_after_the_shift() {
        // The paper's point: one inserted byte shifts all later blocks, so
        // fixed-block dedup re-uploads nearly the whole file.
        let data: Vec<u8> = (0..20_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut edited = data.clone();
        edited.insert(100, 0xAB);
        let a = block_ids(&data, 1024, &mut Cost::new());
        let b = block_ids(&edited, 1024, &mut Cost::new());
        let changed = changed_blocks(&a, &b);
        assert!(changed.len() >= a.len() - 1);
    }

    #[test]
    fn dedup_matches_blocks_at_different_positions() {
        // A block moved to a different index is still deduplicated.
        let block = vec![7u8; 1024];
        let mut old = vec![1u8; 1024];
        old.extend_from_slice(&block);
        let mut new = block.clone();
        new.extend_from_slice(&vec![2u8; 1024]);
        let a = block_ids(&old, 1024, &mut Cost::new());
        let b = block_ids(&new, 1024, &mut Cost::new());
        assert_eq!(changed_blocks(&a, &b), vec![1]);
    }

    #[test]
    fn cost_charges_every_byte() {
        let mut cost = Cost::new();
        block_ids(&vec![0u8; 2500], 1024, &mut cost);
        assert_eq!(cost.bytes_strong_hashed, 2500);
        assert_eq!(cost.ops, 3);
    }

    #[test]
    fn empty_input_yields_no_blocks() {
        assert!(block_ids(&[], 1024, &mut Cost::new()).is_empty());
    }
}
