//! Golden-file tests for the snapshot export formats.
//!
//! The JSON and Prometheus renderings of a fixed registry are compared
//! byte-for-byte against checked-in golden files, so any accidental
//! format drift (ordering, whitespace, bucket math) fails loudly.
//! Regenerate with `OBS_BLESS=1 cargo test -p deltacfs-obs`.

use deltacfs_obs::Registry;

/// Builds the registry every golden file is rendered from: a slice of
/// each metric kind, shaped like the real sync-pipeline export.
fn sample_registry() -> Registry {
    let reg = Registry::new();
    reg.counter("traffic_bytes_up", "bytes uploaded over the wire")
        .add(70_443);
    reg.counter("traffic_bytes_down", "bytes downloaded over the wire")
        .add(1_289);
    reg.counter_labeled("io_bytes_read", "bytes read from the VFS", Some(("client", "0")))
        .add(704_512);
    reg.counter_labeled("io_bytes_read", "bytes read from the VFS", Some(("client", "1")))
        .add(12_288);
    reg.gauge("sync_queue_depth", "nodes waiting in the sync queue")
        .set(3);
    let h = reg.histogram(
        "retry_backoff_ms",
        "armed retry backoff delays",
        &[500, 1000, 2000, 4000, 8000],
    );
    for v in [375, 625, 1500, 2750, 8000, 8000] {
        h.observe(v);
    }
    reg
}

fn check_golden(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("OBS_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        actual,
        expected,
        "export drifted from golden file {} — regenerate with OBS_BLESS=1 if intended",
        path.display()
    );
}

#[test]
fn json_export_matches_golden() {
    check_golden("metrics.json", &sample_registry().snapshot().to_json());
}

#[test]
fn prometheus_export_matches_golden() {
    check_golden("metrics.prom", &sample_registry().snapshot().to_prometheus());
}
