//! The lock-cheap metrics registry.
//!
//! Registration (name → handle) takes a short mutex; the returned
//! [`Counter`]/[`Gauge`]/[`Histogram`] handles are `Arc`'d atomics, so
//! every update afterwards is a single atomic operation with no lock and
//! no allocation. Handles registered twice under the same name and label
//! resolve to the *same* cells, which lets independent components share a
//! metric without coordinating.
//!
//! [`Registry::snapshot`] freezes the registry into a name-sorted
//! [`Snapshot`] whose JSON and Prometheus renderings are byte-stable for
//! a given set of metric values — the property the golden-file tests and
//! the trace-determinism contract (DESIGN.md §11) rely on.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One metric's identity: name plus an optional `key="value"` label.
type MetricKey = (String, Option<(String, String)>);

#[derive(Debug)]
enum Entry {
    Counter { help: String, cell: Arc<AtomicU64> },
    Gauge { help: String, cell: Arc<AtomicI64> },
    Histogram { help: String, cell: Arc<HistogramCell> },
}

/// A monotonic counter handle (atomic, lock-free after registration).
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value — used when absorbing an externally
    /// accumulated counter struct at snapshot time (see
    /// [`metric_struct!`](crate::metric_struct)).
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a value that can move both ways.
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.cell.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCell {
    /// Inclusive upper bounds of the finite buckets, strictly increasing.
    bounds: Vec<u64>,
    /// One count per finite bucket plus the overflow (+Inf) bucket.
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
    max: AtomicU64,
}

/// A fixed-bucket histogram handle.
#[derive(Debug, Clone)]
pub struct Histogram {
    cell: Arc<HistogramCell>,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let idx = self
            .cell
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.cell.bounds.len());
        self.cell.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.cell.sum.fetch_add(v, Ordering::Relaxed);
        self.cell.count.fetch_add(1, Ordering::Relaxed);
        self.cell.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.cell.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.cell.sum.load(Ordering::Relaxed)
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.cell.max.load(Ordering::Relaxed)
    }

    /// Estimates the `q`-quantile (`q` is clamped into `[0.0, 1.0]`).
    ///
    /// The interpolation rule: the target rank is
    /// `max(1, ceil(q * count))`, counted from the smallest bucket.
    /// Inside the finite bucket holding that rank the estimate moves
    /// linearly from the bucket's lower bound (exclusive, 0 for the
    /// first bucket) to its inclusive upper bound, proportional to the
    /// rank's position among the bucket's observations — so `q = 0.0`
    /// reports the first bucket's upper bound scaled by `1/n` of its
    /// width, not 0. Edge cases:
    ///
    /// * empty histogram → `None` for every `q`;
    /// * rank in the overflow (+Inf) bucket → the observed
    ///   [`Histogram::max`], the only upper bound a fixed-bucket
    ///   histogram actually knows;
    /// * a single-observation bucket reports that bucket's upper bound
    ///   (the interpolation fraction is `1/1`).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (idx, c) in self.cell.counts.iter().enumerate() {
            let in_bucket = c.load(Ordering::Relaxed);
            if cumulative + in_bucket >= target {
                if idx >= self.cell.bounds.len() {
                    return Some(self.max());
                }
                let lo = if idx == 0 { 0 } else { self.cell.bounds[idx - 1] };
                let hi = self.cell.bounds[idx];
                let into = (target - cumulative) as f64 / in_bucket as f64;
                return Some(lo + ((hi - lo) as f64 * into).round() as u64);
            }
            cumulative += in_bucket;
        }
        Some(self.max())
    }
}

/// The shared metrics registry. Cloning yields a handle to the same
/// metric set.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    metrics: Mutex<BTreeMap<MetricKey, Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or retrieves) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_labeled(name, help, None)
    }

    /// Registers (or retrieves) a counter carrying one `key="value"`
    /// label — the same name may be registered under several labels
    /// (e.g. one per client).
    ///
    /// # Panics
    ///
    /// Panics if the name+label is already registered as a different
    /// metric kind.
    pub fn counter_labeled(
        &self,
        name: &str,
        help: &str,
        label: Option<(&str, &str)>,
    ) -> Counter {
        let key = make_key(name, label);
        let mut metrics = self.inner.metrics.lock().expect("registry poisoned");
        let entry = metrics.entry(key).or_insert_with(|| Entry::Counter {
            help: help.to_string(),
            cell: Arc::new(AtomicU64::new(0)),
        });
        match entry {
            Entry::Counter { cell, .. } => Counter { cell: cell.clone() },
            _ => panic!("metric {name} already registered as a non-counter"),
        }
    }

    /// Registers (or retrieves) an unlabeled gauge.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different kind.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_labeled(name, help, None)
    }

    /// Registers (or retrieves) a gauge carrying one `key="value"`
    /// label — the same name may be registered under several labels
    /// (e.g. one per shard).
    ///
    /// # Panics
    ///
    /// Panics if the name+label is already registered as a different
    /// metric kind.
    pub fn gauge_labeled(&self, name: &str, help: &str, label: Option<(&str, &str)>) -> Gauge {
        let key = make_key(name, label);
        let mut metrics = self.inner.metrics.lock().expect("registry poisoned");
        let entry = metrics.entry(key).or_insert_with(|| Entry::Gauge {
            help: help.to_string(),
            cell: Arc::new(AtomicI64::new(0)),
        });
        match entry {
            Entry::Gauge { cell, .. } => Gauge { cell: cell.clone() },
            _ => panic!("metric {name} already registered as a non-gauge"),
        }
    }

    /// Registers (or retrieves) a fixed-bucket histogram. `bounds` are
    /// the inclusive upper bounds of the finite buckets, strictly
    /// increasing; an overflow (+Inf) bucket is added automatically.
    /// When the name is already registered, the existing histogram is
    /// returned and `bounds` is ignored.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing, or if the
    /// name is already registered as a different kind.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[u64]) -> Histogram {
        self.histogram_labeled(name, help, bounds, None)
    }

    /// Registers (or retrieves) a histogram carrying one `key="value"`
    /// label — the same name may be registered under several labels
    /// (e.g. one per pipeline stage). Same bound rules as
    /// [`Registry::histogram`].
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing, or if the
    /// name+label is already registered as a different kind.
    pub fn histogram_labeled(
        &self,
        name: &str,
        help: &str,
        bounds: &[u64],
        label: Option<(&str, &str)>,
    ) -> Histogram {
        assert!(!bounds.is_empty(), "histogram {name} needs buckets");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram {name} bounds must be strictly increasing"
        );
        let key = make_key(name, label);
        let mut metrics = self.inner.metrics.lock().expect("registry poisoned");
        let entry = metrics.entry(key).or_insert_with(|| Entry::Histogram {
            help: help.to_string(),
            cell: Arc::new(HistogramCell {
                bounds: bounds.to_vec(),
                counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        });
        match entry {
            Entry::Histogram { cell, .. } => Histogram { cell: cell.clone() },
            _ => panic!("metric {name} already registered as a non-histogram"),
        }
    }

    /// Freezes every metric into a name-sorted snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.inner.metrics.lock().expect("registry poisoned");
        let entries = metrics
            .iter()
            .map(|((name, label), entry)| {
                let value = match entry {
                    Entry::Counter { cell, .. } => {
                        MetricValue::Counter(cell.load(Ordering::Relaxed))
                    }
                    Entry::Gauge { cell, .. } => MetricValue::Gauge(cell.load(Ordering::Relaxed)),
                    Entry::Histogram { cell, .. } => MetricValue::Histogram {
                        bounds: cell.bounds.clone(),
                        counts: cell
                            .counts
                            .iter()
                            .map(|c| c.load(Ordering::Relaxed))
                            .collect(),
                        sum: cell.sum.load(Ordering::Relaxed),
                        count: cell.count.load(Ordering::Relaxed),
                        max: cell.max.load(Ordering::Relaxed),
                    },
                };
                let help = match entry {
                    Entry::Counter { help, .. }
                    | Entry::Gauge { help, .. }
                    | Entry::Histogram { help, .. } => help.clone(),
                };
                SnapshotEntry {
                    name: name.clone(),
                    label: label.clone(),
                    help,
                    value,
                }
            })
            .collect();
        Snapshot { entries }
    }
}

fn make_key(name: &str, label: Option<(&str, &str)>) -> MetricKey {
    (
        name.to_string(),
        label.map(|(k, v)| (k.to_string(), v.to_string())),
    )
}

/// One frozen metric value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A monotonic counter.
    Counter(u64),
    /// A point-in-time gauge.
    Gauge(i64),
    /// A fixed-bucket histogram; `counts` has one entry per finite bound
    /// plus the overflow bucket.
    Histogram {
        /// Inclusive upper bounds of the finite buckets.
        bounds: Vec<u64>,
        /// Per-bucket (non-cumulative) observation counts.
        counts: Vec<u64>,
        /// Sum of all observations.
        sum: u64,
        /// Number of observations.
        count: u64,
        /// Largest observation (0 when empty).
        max: u64,
    },
}

#[derive(Debug, Clone)]
struct SnapshotEntry {
    name: String,
    label: Option<(String, String)>,
    help: String,
    value: MetricValue,
}

/// A frozen, name-sorted view of a [`Registry`], renderable as JSON or
/// Prometheus text exposition. Both renderings are byte-stable for a
/// given set of metric values.
#[derive(Debug, Clone)]
pub struct Snapshot {
    entries: Vec<SnapshotEntry>,
}

impl Snapshot {
    /// Number of metrics in the snapshot.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks a metric up by name (first label match wins).
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| &e.value)
    }

    /// Looks a labeled metric up by name and label value.
    pub fn get_labeled(&self, name: &str, label_value: &str) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|e| e.name == name && e.label.as_ref().is_some_and(|(_, v)| v == label_value))
            .map(|e| &e.value)
    }

    /// Renders the snapshot as a deterministic JSON document: one entry
    /// per metric, sorted by name then label.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"metrics\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(out, "\"name\": {}", json_str(&e.name));
            if let Some((k, v)) = &e.label {
                let _ = write!(out, ", \"labels\": {{{}: {}}}", json_str(k), json_str(v));
            }
            if !e.help.is_empty() {
                let _ = write!(out, ", \"help\": {}", json_str(&e.help));
            }
            match &e.value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, ", \"type\": \"counter\", \"value\": {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, ", \"type\": \"gauge\", \"value\": {v}");
                }
                MetricValue::Histogram {
                    bounds,
                    counts,
                    sum,
                    count,
                    max,
                } => {
                    out.push_str(", \"type\": \"histogram\", \"buckets\": [");
                    for (j, (b, c)) in bounds.iter().zip(counts.iter()).enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "{{\"le\": {b}, \"count\": {c}}}");
                    }
                    if !bounds.is_empty() {
                        out.push_str(", ");
                    }
                    let _ = write!(
                        out,
                        "{{\"le\": \"+Inf\", \"count\": {}}}]",
                        counts.last().copied().unwrap_or(0)
                    );
                    let _ = write!(out, ", \"sum\": {sum}, \"count\": {count}, \"max\": {max}");
                }
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    /// `# HELP`/`# TYPE` headers are emitted once per metric name;
    /// histograms expand to cumulative `_bucket{le=...}` series plus
    /// `_sum`, `_count`, and `_max` lines.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_header: Option<&str> = None;
        for e in &self.entries {
            let kind = match &e.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram { .. } => "histogram",
            };
            if last_header != Some(e.name.as_str()) {
                if !e.help.is_empty() {
                    let _ = writeln!(out, "# HELP {} {}", e.name, e.help);
                }
                let _ = writeln!(out, "# TYPE {} {}", e.name, kind);
                last_header = Some(e.name.as_str());
            }
            let label = |extra: Option<(&str, String)>| -> String {
                let mut parts = Vec::new();
                if let Some((k, v)) = &e.label {
                    parts.push(format!("{k}=\"{}\"", prom_label_value(v)));
                }
                if let Some((k, v)) = extra {
                    parts.push(format!("{k}=\"{}\"", prom_label_value(&v)));
                }
                if parts.is_empty() {
                    String::new()
                } else {
                    format!("{{{}}}", parts.join(","))
                }
            };
            match &e.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {v}", e.name, label(None));
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {v}", e.name, label(None));
                }
                MetricValue::Histogram {
                    bounds,
                    counts,
                    sum,
                    count,
                    max,
                } => {
                    let mut cumulative = 0u64;
                    for (b, c) in bounds.iter().zip(counts.iter()) {
                        cumulative += c;
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cumulative}",
                            e.name,
                            label(Some(("le", b.to_string())))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {count}",
                        e.name,
                        label(Some(("le", "+Inf".to_string())))
                    );
                    let _ = writeln!(out, "{}_sum{} {sum}", e.name, label(None));
                    let _ = writeln!(out, "{}_count{} {count}", e.name, label(None));
                    let _ = writeln!(out, "{}_max{} {max}", e.name, label(None));
                }
            }
        }
        out
    }
}

/// Escapes a label value for the Prometheus text exposition format: in
/// quoted label values, backslash, double quote, and line feed must be
/// written `\\`, `\"`, and `\n` respectively (any other byte passes
/// through verbatim). Without this, a path or client label containing
/// one of those characters would break the exposition line.
fn prom_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a string into a JSON string literal (quotes included).
/// Shared with the span profiler's Chrome trace export.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_by_name() {
        let reg = Registry::new();
        let a = reg.counter("ops_total", "operations");
        let b = reg.counter("ops_total", "ignored on re-register");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        match reg.snapshot().get("ops_total") {
            Some(MetricValue::Counter(3)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn labels_keep_series_separate() {
        let reg = Registry::new();
        reg.counter_labeled("bytes_up", "", Some(("client", "0"))).add(10);
        reg.counter_labeled("bytes_up", "", Some(("client", "1"))).add(20);
        let snap = reg.snapshot();
        assert_eq!(
            snap.get_labeled("bytes_up", "0"),
            Some(&MetricValue::Counter(10))
        );
        assert_eq!(
            snap.get_labeled("bytes_up", "1"),
            Some(&MetricValue::Counter(20))
        );
    }

    #[test]
    fn gauge_moves_both_ways() {
        let reg = Registry::new();
        let g = reg.gauge("queue_depth", "nodes queued");
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_buckets_and_max() {
        let reg = Registry::new();
        let h = reg.histogram("delay_ms", "backoff delays", &[10, 100, 1000]);
        for v in [5, 50, 500, 5000, 7] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5562);
        assert_eq!(h.max(), 5000);
        match reg.snapshot().get("delay_ms") {
            Some(MetricValue::Histogram { counts, .. }) => {
                assert_eq!(counts, &vec![2, 1, 1, 1]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn labeled_gauges_keep_series_separate() {
        let reg = Registry::new();
        reg.gauge_labeled("shard_queue_depth", "", Some(("shard", "0")))
            .set(3);
        reg.gauge_labeled("shard_queue_depth", "", Some(("shard", "1")))
            .set(7);
        let snap = reg.snapshot();
        assert_eq!(
            snap.get_labeled("shard_queue_depth", "0"),
            Some(&MetricValue::Gauge(3))
        );
        assert_eq!(
            snap.get_labeled("shard_queue_depth", "1"),
            Some(&MetricValue::Gauge(7))
        );
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("lat", "", &[100, 200, 400]);
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantiles");
        for v in [50, 150, 250, 350, 999] {
            h.observe(v);
        }
        // Rank 3 of 5 lands in the (200, 400] bucket, halfway through it.
        assert_eq!(h.quantile(0.5), Some(300));
        // The tail lives in the overflow bucket: report the observed max.
        assert_eq!(h.quantile(0.99), Some(999));
        // Rank 1 interpolates inside the first bucket.
        assert_eq!(h.quantile(0.0), Some(100));
    }

    #[test]
    fn quantile_edge_cases() {
        let reg = Registry::new();
        // Empty: no quantile at any q, including the extremes.
        let empty = reg.histogram("empty", "", &[10]);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(empty.quantile(q), None);
        }
        // Every observation in one finite bucket: all quantiles
        // interpolate inside it and q=1.0 reports its upper bound.
        let single = reg.histogram("single", "", &[100, 200]);
        for _ in 0..4 {
            single.observe(150);
        }
        assert_eq!(single.quantile(0.0), Some(125)); // rank 1 of 4: 1/4 into (100,200]
        assert_eq!(single.quantile(0.5), Some(150));
        assert_eq!(single.quantile(1.0), Some(200));
        // One observation: rank 1 is the whole bucket, so every q
        // reports the bucket's upper bound.
        let one = reg.histogram("one", "", &[50]);
        one.observe(3);
        assert_eq!(one.quantile(0.0), Some(50));
        assert_eq!(one.quantile(1.0), Some(50));
        // Everything in the overflow bucket: the observed max is the
        // only honest answer at any q.
        let over = reg.histogram("over", "", &[10]);
        over.observe(500);
        over.observe(900);
        assert_eq!(over.quantile(0.0), Some(900));
        assert_eq!(over.quantile(0.5), Some(900));
        assert_eq!(over.quantile(1.0), Some(900));
        // Out-of-range q clamps rather than panicking.
        assert_eq!(over.quantile(-3.0), Some(900));
        assert_eq!(over.quantile(7.0), Some(900));
    }

    #[test]
    fn prometheus_label_values_are_escaped() {
        let reg = Registry::new();
        reg.counter_labeled("by_path", "", Some(("path", "/a\"b\\c\nd")))
            .inc();
        let prom = reg.snapshot().to_prometheus();
        assert!(
            prom.contains("by_path{path=\"/a\\\"b\\\\c\\nd\"} 1"),
            "{prom}"
        );
        // The line must stay a single exposition line: the raw newline
        // may not survive into the output.
        let line = prom.lines().find(|l| l.starts_with("by_path{")).unwrap();
        assert!(line.ends_with("} 1"), "{line}");
        // Histograms escape the shared label on every series they expand to.
        let h = reg.histogram_labeled("lat_ms", "", &[10], Some(("op", "up\"load")));
        h.observe(5);
        let prom = reg.snapshot().to_prometheus();
        assert!(
            prom.contains("lat_ms_bucket{op=\"up\\\"load\",le=\"10\"} 1"),
            "{prom}"
        );
        assert!(prom.contains("lat_ms_sum{op=\"up\\\"load\"} 5"), "{prom}");
    }

    #[test]
    fn labeled_histograms_keep_series_separate() {
        let reg = Registry::new();
        reg.histogram_labeled("stage_ms", "", &[10, 100], Some(("stage", "encode")))
            .observe(5);
        reg.histogram_labeled("stage_ms", "", &[10, 100], Some(("stage", "upload")))
            .observe(50);
        let snap = reg.snapshot();
        match snap.get_labeled("stage_ms", "encode") {
            Some(MetricValue::Histogram { counts, .. }) => assert_eq!(counts, &vec![1, 0, 0]),
            other => panic!("unexpected {other:?}"),
        }
        match snap.get_labeled("stage_ms", "upload") {
            Some(MetricValue::Histogram { counts, .. }) => assert_eq!(counts, &vec![0, 1, 0]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let reg = Registry::new();
        let h = reg.histogram("d", "", &[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(5000);
        let prom = reg.snapshot().to_prometheus();
        assert!(prom.contains("d_bucket{le=\"10\"} 1"), "{prom}");
        assert!(prom.contains("d_bucket{le=\"100\"} 2"), "{prom}");
        assert!(prom.contains("d_bucket{le=\"+Inf\"} 3"), "{prom}");
        assert!(prom.contains("d_count 3"), "{prom}");
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let reg = Registry::new();
        reg.counter("zeta", "").inc();
        reg.counter("alpha", "").inc();
        let a = reg.snapshot().to_json();
        let b = reg.snapshot().to_json();
        assert_eq!(a, b);
        let alpha = a.find("alpha").unwrap();
        let zeta = a.find("zeta").unwrap();
        assert!(alpha < zeta, "snapshot not sorted:\n{a}");
    }

    #[test]
    #[should_panic(expected = "non-counter")]
    fn kind_mismatch_is_rejected() {
        let reg = Registry::new();
        reg.gauge("x", "");
        reg.counter("x", "");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
