//! Structured sync-pipeline tracing and the fault-run flight recorder.
//!
//! A [`Tracer`] records spans ([`Tracer::enter`]/[`Tracer::exit`]) and
//! point events ([`Tracer::event`]) into a bounded ring buffer. The
//! caller supplies every timestamp from the deterministic `SimClock`
//! (as raw milliseconds, so this crate stays dependency-free), which
//! makes two runs of the same seed produce *byte-identical*
//! [`Tracer::dump`] output — the determinism contract tests assert on.
//!
//! A disabled tracer (the default) costs one relaxed atomic load per
//! call site; detail strings are built through `FnOnce() -> String`
//! closures that never run while tracing is off. That is the cheap
//! runtime gate behind the < 5 % overhead acceptance criterion.
//!
//! [`DumpGuard`] is the flight recorder's trigger: drop it at the end
//! of a fault or property run and, if the thread is panicking, the ring
//! buffer (and optionally a metrics snapshot) is written to the file
//! named by the `DELTACFS_TRACE_DUMP` environment variable, or to
//! stderr when the variable is unset.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::Registry;

/// What a [`TraceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A span opened (`enter`).
    Enter,
    /// A span closed (`exit`).
    Exit,
    /// A point event inside the current span.
    Event,
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number (monotonic across all actors).
    pub seq: u64,
    /// Simulated time in milliseconds, supplied by the caller.
    pub at_ms: u64,
    /// Which actor emitted it (e.g. `client-0`, `server`).
    pub actor: String,
    /// Span nesting depth of this actor when the event fired.
    pub depth: u32,
    /// Enter / exit / point event.
    pub kind: TraceKind,
    /// Pipeline stage name (e.g. `wire.upload`, `delta.encode`).
    pub stage: String,
    /// Lazily built human-readable detail.
    pub detail: String,
}

#[derive(Debug)]
struct TraceState {
    seq: u64,
    depths: BTreeMap<String, u32>,
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

#[derive(Debug)]
struct TracerInner {
    enabled: AtomicBool,
    state: Mutex<TraceState>,
}

/// The sync-pipeline tracer: a shared, bounded ring buffer of
/// [`TraceEvent`]s. Cloning yields a handle to the same buffer.
///
/// The default tracer is *disabled*: call sites pay one relaxed atomic
/// load and detail closures never execute.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        let t = Tracer::new(1024);
        t.set_enabled(false);
        t
    }
}

impl Tracer {
    /// An enabled tracer whose ring keeps the most recent `capacity`
    /// events (older events are dropped and counted).
    pub fn new(capacity: usize) -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                enabled: AtomicBool::new(true),
                state: Mutex::new(TraceState {
                    seq: 0,
                    depths: BTreeMap::new(),
                    ring: VecDeque::with_capacity(capacity.min(4096)),
                    capacity: capacity.max(1),
                    dropped: 0,
                }),
            }),
        }
    }

    /// Whether events are currently recorded.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Records a point event. `detail` only runs while the tracer is
    /// enabled, so formatting cost is zero when tracing is off.
    pub fn event(&self, at_ms: u64, actor: &str, stage: &str, detail: impl FnOnce() -> String) {
        if !self.enabled() {
            return;
        }
        self.push(at_ms, actor, TraceKind::Event, stage, detail());
    }

    /// Opens a span for `actor`: subsequent events from the same actor
    /// nest one level deeper until the matching [`Tracer::exit`].
    pub fn enter(&self, at_ms: u64, actor: &str, stage: &str, detail: impl FnOnce() -> String) {
        if !self.enabled() {
            return;
        }
        self.push(at_ms, actor, TraceKind::Enter, stage, detail());
    }

    /// Closes the innermost open span for `actor`.
    pub fn exit(&self, at_ms: u64, actor: &str, stage: &str, detail: impl FnOnce() -> String) {
        if !self.enabled() {
            return;
        }
        self.push(at_ms, actor, TraceKind::Exit, stage, detail());
    }

    fn push(&self, at_ms: u64, actor: &str, kind: TraceKind, stage: &str, detail: String) {
        let mut state = self.inner.state.lock().expect("tracer poisoned");
        let depth_entry = state.depths.entry(actor.to_string()).or_insert(0);
        let depth = match kind {
            TraceKind::Enter => {
                let d = *depth_entry;
                *depth_entry += 1;
                d
            }
            TraceKind::Exit => {
                *depth_entry = depth_entry.saturating_sub(1);
                *depth_entry
            }
            TraceKind::Event => *depth_entry,
        };
        let seq = state.seq;
        state.seq += 1;
        if state.ring.len() == state.capacity {
            state.ring.pop_front();
            state.dropped += 1;
        }
        state.ring.push_back(TraceEvent {
            seq,
            at_ms,
            actor: actor.to_string(),
            depth,
            kind,
            stage: stage.to_string(),
            detail,
        });
    }

    /// Number of events currently held in the ring.
    pub fn len(&self) -> usize {
        self.inner.state.lock().expect("tracer poisoned").ring.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.state.lock().expect("tracer poisoned").dropped
    }

    /// Clears the ring (sequence numbers keep counting up).
    pub fn clear(&self) {
        let mut state = self.inner.state.lock().expect("tracer poisoned");
        state.ring.clear();
        state.depths.clear();
    }

    /// Clones the recorded events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner
            .state
            .lock()
            .expect("tracer poisoned")
            .ring
            .iter()
            .cloned()
            .collect()
    }

    /// Renders the ring as a stable, human-readable timeline. For a
    /// given event sequence the output is byte-identical — the trace
    /// determinism tests compare these strings directly.
    pub fn dump(&self) -> String {
        let state = self.inner.state.lock().expect("tracer poisoned");
        let mut out = String::new();
        let _ = writeln!(
            out,
            "=== flight recorder: {} events ({} dropped) ===",
            state.ring.len(),
            state.dropped
        );
        for e in &state.ring {
            let marker = match e.kind {
                TraceKind::Enter => ">",
                TraceKind::Exit => "<",
                TraceKind::Event => "·",
            };
            let indent = "  ".repeat(e.depth as usize);
            let _ = write!(
                out,
                "[{:>8}ms] {:<10} {indent}{marker} {}",
                e.at_ms, e.actor, e.stage
            );
            if e.detail.is_empty() {
                out.push('\n');
            } else {
                let _ = writeln!(out, ": {}", e.detail);
            }
        }
        out
    }
}

/// The flight recorder's trigger: a drop guard that dumps the tracer's
/// ring buffer when the surrounding test or fault run panics.
///
/// On drop, if the thread is panicking, the timeline (plus a Prometheus
/// metrics snapshot, when a registry was attached) is written to the
/// path named by the `DELTACFS_TRACE_DUMP` environment variable, or to
/// stderr when unset. Nothing is written on a clean exit.
#[derive(Debug)]
pub struct DumpGuard {
    label: String,
    tracer: Tracer,
    registry: Option<Registry>,
}

impl DumpGuard {
    /// Arms the flight recorder for `tracer`; `label` names the run in
    /// the dump header (e.g. the seed and topology under test).
    pub fn new(label: &str, tracer: &Tracer) -> Self {
        DumpGuard {
            label: label.to_string(),
            tracer: tracer.clone(),
            registry: None,
        }
    }

    /// Also appends a Prometheus snapshot of `registry` to the dump.
    pub fn with_registry(mut self, registry: &Registry) -> Self {
        self.registry = Some(registry.clone());
        self
    }

    /// Builds the dump text without writing it anywhere (what the guard
    /// would emit on panic).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== DeltaCFS flight recorder dump: {} ===", self.label);
        out.push_str(&self.tracer.dump());
        if let Some(reg) = &self.registry {
            out.push_str("=== metrics at failure ===\n");
            out.push_str(&reg.snapshot().to_prometheus());
        }
        out
    }
}

impl Drop for DumpGuard {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        let dump = self.render();
        match std::env::var_os("DELTACFS_TRACE_DUMP") {
            Some(path) if !path.is_empty() => {
                if std::fs::write(&path, &dump).is_err() {
                    eprintln!("{dump}");
                } else {
                    eprintln!(
                        "flight recorder: wrote {} bytes to {}",
                        dump.len(),
                        path.to_string_lossy()
                    );
                }
            }
            _ => eprintln!("{dump}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_skips_detail_closures() {
        let t = Tracer::default();
        assert!(!t.enabled());
        t.event(1, "a", "s", || unreachable!("must stay lazy"));
        t.enter(1, "a", "s", || unreachable!());
        t.exit(2, "a", "s", || unreachable!());
        assert!(t.is_empty());
    }

    #[test]
    fn spans_nest_per_actor() {
        let t = Tracer::new(64);
        t.enter(10, "client-0", "sync.flush", String::new);
        t.event(11, "client-0", "delta.encode", || "seg 0".into());
        t.event(11, "server", "apply", String::new);
        t.exit(12, "client-0", "sync.flush", String::new);
        let ev = t.events();
        assert_eq!(ev.len(), 4);
        assert_eq!(ev[0].depth, 0); // enter recorded at outer depth
        assert_eq!(ev[1].depth, 1); // nested event
        assert_eq!(ev[2].depth, 0); // other actor unaffected
        assert_eq!(ev[3].depth, 0); // exit back at outer depth
        assert_eq!(ev.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let t = Tracer::new(3);
        for i in 0..5 {
            t.event(i, "a", "s", || format!("{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let ev = t.events();
        assert_eq!(ev[0].detail, "2"); // oldest two evicted
    }

    #[test]
    fn dump_is_deterministic_for_identical_inputs() {
        let run = || {
            let t = Tracer::new(32);
            t.enter(100, "client-1", "sync.flush", || "3 nodes".into());
            t.event(105, "client-1", "wire.upload", || "group 7".into());
            t.exit(140, "client-1", "sync.flush", String::new);
            t.dump()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.contains("wire.upload: group 7"), "{a}");
        assert!(a.contains("3 events (0 dropped)"), "{a}");
    }

    #[test]
    fn guard_renders_label_and_metrics() {
        let reg = Registry::new();
        reg.counter("fails_total", "").inc();
        let t = Tracer::new(8);
        t.event(1, "a", "s", String::new);
        let guard = DumpGuard::new("seed=7", &t).with_registry(&reg);
        let text = guard.render();
        assert!(text.contains("seed=7"), "{text}");
        assert!(text.contains("fails_total 1"), "{text}");
    }
}
