//! Causal per-group spans and the critical-path sync profiler.
//!
//! Every upload group already carries a `<CliID, GroupSeq>` identity on
//! the wire (the `group_opt` header of each chunk frame, in the upload,
//! forward, and recovery-download directions). A [`SpanRecorder`] keys
//! parented spans on that identity — mirrored here as [`GroupKey`] so
//! this crate stays dependency-free — which lets the client, the
//! pipeline threads, the wire codec, the server shards, and the forward
//! fan-out all contribute spans to the *same* causal tree without any
//! extra bytes on the wire: the group id rides the existing headers and
//! the shared recorder resolves parents on each side.
//!
//! Like the [`Tracer`](crate::Tracer), the caller supplies every
//! timestamp from the deterministic `SimClock` (raw milliseconds), so
//! two runs of the same seed produce byte-identical span tables, text
//! reports, and Chrome trace exports. A disabled recorder (the default)
//! costs one relaxed atomic load per span site; detail closures never
//! run while recording is off.
//!
//! The [`Profiler`] assembles per-group span trees and computes a
//! **critical-path attribution**: the group's wall-clock interval
//! `[min start, max end]` is swept over the elementary intervals induced
//! by all span boundaries, and each slice is attributed to the covering
//! span whose stage ranks highest in the pipeline order
//! (`vfs.write < relation.trigger < delta.encode < wire.compress <
//! wire.upload < server.stage < server.apply < forward`). Overlapped
//! time therefore lands on the *downstream* stage — exactly the
//! critical-path reading of the concurrent encode/upload overlap — and
//! slices covered by no span at all are attributed to `pipeline.wait`.
//! By construction the per-stage attributions sum to the end-to-end
//! time of every group, with no double counting.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::registry::json_str;
use crate::Registry;

/// The span-context key: a mirror of the protocol's `GroupId`
/// (`<CliID, GroupSeq>`), kept as plain integers so the obs crate does
/// not depend on the protocol types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupKey {
    /// The uploading client's id (`ClientId`); 0 marks the server's
    /// synthetic download streams (full sync / anti-entropy).
    pub client: u32,
    /// The client-local upload group sequence number.
    pub seq: u64,
}

impl std::fmt::Display for GroupKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<c{},g{}>", self.client, self.seq)
    }
}

/// Handle to a recorded span. [`SpanId::NONE`] is the sentinel a
/// disabled recorder hands out; ending it is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// The null span: returned by every [`SpanRecorder::start`] while
    /// recording is disabled, accepted (and ignored) everywhere.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is the null span.
    pub fn is_none(&self) -> bool {
        self.0 == 0
    }
}

/// One recorded span. `end_ms: None` means the span never closed — for
/// example a `wire.upload` attempt whose frames were dropped by the
/// fault plan. Open spans are excluded from critical-path attribution
/// but surface in the report and export as Chrome `B` (begin-only)
/// events, so a lost chunk is visible rather than silently absorbed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// This span's id (recording order, 1-based).
    pub id: SpanId,
    /// The parent span, when one was resolvable.
    pub parent: Option<SpanId>,
    /// The upload group this span belongs to.
    pub group: GroupKey,
    /// Which actor ran it (e.g. `client-1`, `server`, `codec`).
    pub actor: String,
    /// Pipeline stage name (e.g. `wire.upload`).
    pub stage: String,
    /// Simulated start, milliseconds.
    pub start_ms: u64,
    /// Simulated end, milliseconds; `None` = never closed.
    pub end_ms: Option<u64>,
    /// Lazily built human-readable detail.
    pub detail: String,
}

#[derive(Debug)]
struct SpanState {
    spans: Vec<SpanRecord>,
    /// id -> index into `spans`.
    by_id: HashMap<u64, usize>,
    /// First span recorded per group: the tree root spans with no
    /// explicit parent attach to.
    roots: BTreeMap<GroupKey, SpanId>,
    capacity: usize,
    dropped: u64,
}

#[derive(Debug)]
struct RecorderInner {
    enabled: AtomicBool,
    state: Mutex<SpanState>,
}

/// The shared span recorder: a bounded, append-only span table keyed by
/// upload group. Cloning yields a handle to the same table, so the
/// client threads, the pipeline's encoder thread, the codec, and the
/// server all write into one causal record.
///
/// The default recorder is *disabled*: every span site pays exactly one
/// relaxed atomic load, [`SpanRecorder::start`] returns
/// [`SpanId::NONE`], and detail closures never execute.
#[derive(Debug, Clone)]
pub struct SpanRecorder {
    inner: Arc<RecorderInner>,
}

impl Default for SpanRecorder {
    fn default() -> Self {
        let r = SpanRecorder::new(65_536);
        r.set_enabled(false);
        r
    }
}

impl SpanRecorder {
    /// An enabled recorder holding up to `capacity` spans. Once full,
    /// further spans are counted as dropped rather than evicting old
    /// ones (eviction would orphan parent links mid-tree).
    pub fn new(capacity: usize) -> Self {
        SpanRecorder {
            inner: Arc::new(RecorderInner {
                enabled: AtomicBool::new(true),
                state: Mutex::new(SpanState {
                    spans: Vec::new(),
                    by_id: HashMap::new(),
                    roots: BTreeMap::new(),
                    capacity: capacity.max(1),
                    dropped: 0,
                }),
            }),
        }
    }

    /// Whether spans are currently recorded — the one relaxed atomic
    /// load every span site pays when profiling is off.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Opens a span for `group`. With `parent: None` the span attaches
    /// to the group's root (its first recorded span); the first span of
    /// a group becomes that root. Returns [`SpanId::NONE`] while
    /// disabled.
    pub fn start(
        &self,
        group: GroupKey,
        actor: &str,
        stage: &str,
        at_ms: u64,
        parent: Option<SpanId>,
    ) -> SpanId {
        if !self.enabled() {
            return SpanId::NONE;
        }
        self.push(group, actor, stage, at_ms, None, parent, String::new())
    }

    /// Closes span `id` at `at_ms`. No-op for [`SpanId::NONE`], unknown
    /// ids, or spans already closed.
    pub fn end(&self, id: SpanId, at_ms: u64) {
        self.end_detail(id, at_ms, String::new);
    }

    /// Closes span `id`, attaching a lazily built detail string. The
    /// closure only runs if the span is actually closed.
    pub fn end_detail(&self, id: SpanId, at_ms: u64, detail: impl FnOnce() -> String) {
        if id.is_none() || !self.enabled() {
            return;
        }
        let mut state = self.inner.state.lock().expect("span recorder poisoned");
        if let Some(&idx) = state.by_id.get(&id.0) {
            let span = &mut state.spans[idx];
            if span.end_ms.is_none() {
                span.end_ms = Some(at_ms.max(span.start_ms));
                let d = detail();
                if !d.is_empty() {
                    span.detail = d;
                }
            }
        }
    }

    /// Records an already-closed span in one shot (same parent rules as
    /// [`SpanRecorder::start`]). `detail` only runs while enabled.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        group: GroupKey,
        actor: &str,
        stage: &str,
        start_ms: u64,
        end_ms: u64,
        parent: Option<SpanId>,
        detail: impl FnOnce() -> String,
    ) -> SpanId {
        if !self.enabled() {
            return SpanId::NONE;
        }
        self.push(
            group,
            actor,
            stage,
            start_ms,
            Some(end_ms.max(start_ms)),
            parent,
            detail(),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &self,
        group: GroupKey,
        actor: &str,
        stage: &str,
        start_ms: u64,
        end_ms: Option<u64>,
        parent: Option<SpanId>,
        detail: String,
    ) -> SpanId {
        let mut state = self.inner.state.lock().expect("span recorder poisoned");
        if state.spans.len() >= state.capacity {
            state.dropped += 1;
            return SpanId::NONE;
        }
        let id = SpanId(state.spans.len() as u64 + 1);
        let parent = parent
            .filter(|p| !p.is_none())
            .or_else(|| state.roots.get(&group).copied());
        state.roots.entry(group).or_insert(id);
        let idx = state.spans.len();
        state.by_id.insert(id.0, idx);
        state.spans.push(SpanRecord {
            id,
            parent,
            group,
            actor: actor.to_string(),
            stage: stage.to_string(),
            start_ms,
            end_ms,
            detail,
        });
        id
    }

    /// The root span of `group` (its first recorded span), used to
    /// parent the far side of a wire crossing: the server's spans for a
    /// group attach under the root the uploading client created.
    pub fn group_root(&self, group: GroupKey) -> Option<SpanId> {
        self.inner
            .state
            .lock()
            .expect("span recorder poisoned")
            .roots
            .get(&group)
            .copied()
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.inner
            .state
            .lock()
            .expect("span recorder poisoned")
            .spans
            .len()
    }

    /// Whether no span has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans refused because the table was at capacity.
    pub fn dropped(&self) -> u64 {
        self.inner
            .state
            .lock()
            .expect("span recorder poisoned")
            .dropped
    }

    /// Clones the span table in recording order (deterministic for a
    /// pinned seed).
    pub fn records(&self) -> Vec<SpanRecord> {
        self.inner
            .state
            .lock()
            .expect("span recorder poisoned")
            .spans
            .clone()
    }

    /// Clears the table and the root index.
    pub fn clear(&self) {
        let mut state = self.inner.state.lock().expect("span recorder poisoned");
        state.spans.clear();
        state.by_id.clear();
        state.roots.clear();
    }
}

/// Pipeline order of the committed stages; attribution rank is the
/// index, and overlapping spans resolve to the highest rank (the
/// downstream stage wins the overlapped slice). Stages outside this
/// list rank below all of them.
pub const STAGE_ORDER: [&str; 9] = [
    "vfs.write",
    "relation.trigger",
    "delta.hierarchy",
    "delta.encode",
    "wire.compress",
    "wire.upload",
    "server.stage",
    "server.apply",
    "forward",
];

/// The synthetic stage that absorbs slices of a group's end-to-end
/// interval covered by no span: time spent queued between stages.
pub const WAIT_STAGE: &str = "pipeline.wait";

fn stage_rank(stage: &str) -> usize {
    STAGE_ORDER
        .iter()
        .position(|s| *s == stage)
        .map(|i| i + 1)
        .unwrap_or(0)
}

/// One group's assembled profile.
#[derive(Debug, Clone)]
pub struct GroupProfile {
    /// The group.
    pub group: GroupKey,
    /// `max end - min start` over the group's closed spans.
    pub e2e_ms: u64,
    /// Critical-path attribution: `(stage, attributed ms)` in pipeline
    /// order (then `pipeline.wait` last). Sums exactly to `e2e_ms`.
    pub attribution: Vec<(String, u64)>,
    /// Spans that never closed (dropped chunks, lost attempts).
    pub open_spans: usize,
    /// VFS write → last server commit, when both ends were recorded.
    pub sync_lag_ms: Option<u64>,
    /// VFS write → last peer (forward) commit; falls back to
    /// `sync_lag_ms` when the group fanned out to no peer.
    pub convergence_lag_ms: Option<u64>,
}

/// Assembles span records into per-group trees, critical-path
/// attributions, SLO lags, a text report, and a Chrome trace export.
#[derive(Debug, Clone)]
pub struct Profiler {
    records: Vec<SpanRecord>,
}

impl Profiler {
    /// A profiler over a cloned span table (see
    /// [`SpanRecorder::records`]).
    pub fn new(records: Vec<SpanRecord>) -> Self {
        Profiler { records }
    }

    /// All recorded spans, in recording order.
    pub fn records(&self) -> &[SpanRecord] {
        &self.records
    }

    /// Per-group profiles, ordered by group key.
    pub fn groups(&self) -> Vec<GroupProfile> {
        let mut by_group: BTreeMap<GroupKey, Vec<&SpanRecord>> = BTreeMap::new();
        for r in &self.records {
            by_group.entry(r.group).or_default().push(r);
        }
        by_group
            .into_iter()
            .map(|(group, spans)| profile_group(group, &spans))
            .collect()
    }

    /// Critical-path attributed milliseconds per stage, one sample per
    /// group (the inputs to the `span_stage_ms` histograms).
    pub fn stage_samples(&self) -> BTreeMap<String, Vec<u64>> {
        let mut out: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        for g in self.groups() {
            for (stage, ms) in &g.attribution {
                out.entry(stage.clone()).or_default().push(*ms);
            }
        }
        out
    }

    /// Worst observed sync lag per client: VFS write → last server
    /// commit, maxed over the client's groups.
    pub fn sync_lags(&self) -> BTreeMap<u32, u64> {
        let mut out: BTreeMap<u32, u64> = BTreeMap::new();
        for g in self.groups() {
            if let Some(lag) = g.sync_lag_ms {
                let e = out.entry(g.group.client).or_insert(0);
                *e = (*e).max(lag);
            }
        }
        out
    }

    /// Worst observed convergence lag across all groups: VFS write →
    /// last peer commit.
    pub fn convergence_lag(&self) -> Option<u64> {
        self.groups().iter().filter_map(|g| g.convergence_lag_ms).max()
    }

    /// Registers the profiler's aggregates on `reg`: per-stage
    /// `span_stage_ms{stage=...}` histograms (one observation per
    /// group), `sync_lag_ms{client=...}` and `convergence_lag_ms`
    /// gauges, and `spans_recorded` / `spans_open` counters.
    pub fn export(&self, reg: &Registry) {
        const STAGE_MS_BUCKETS: [u64; 14] = [
            1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 15_000, 60_000,
        ];
        let stage_help = "critical-path ms attributed to this stage, one sample per group";
        for (stage, samples) in self.stage_samples() {
            let h = reg.histogram_labeled(
                "span_stage_ms",
                stage_help,
                &STAGE_MS_BUCKETS,
                Some(("stage", &stage)),
            );
            for s in samples {
                h.observe(s);
            }
        }
        for (client, lag) in self.sync_lags() {
            reg.gauge_labeled(
                "sync_lag_ms",
                "worst VFS write -> server commit lag over the client's groups",
                Some(("client", &client.to_string())),
            )
            .set(lag as i64);
        }
        if let Some(lag) = self.convergence_lag() {
            reg.gauge(
                "convergence_lag_ms",
                "worst VFS write -> last peer commit lag over all groups",
            )
            .set(lag as i64);
        }
        reg.counter("spans_recorded", "spans in the profiler table")
            .set(self.records.len() as u64);
        let open = self.records.iter().filter(|r| r.end_ms.is_none()).count();
        reg.counter("spans_open", "spans that never closed (lost work)")
            .set(open as u64);
    }

    /// Renders the per-group critical-path report plus the SLO gauges
    /// as stable text (byte-identical for identical span tables).
    pub fn text_report(&self) -> String {
        let groups = self.groups();
        let open_total: usize = groups.iter().map(|g| g.open_spans).sum();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "=== sync profile: {} groups, {} spans ({} open) ===",
            groups.len(),
            self.records.len(),
            open_total
        );
        for g in &groups {
            let _ = write!(out, "\ngroup {}  e2e {}ms", g.group, g.e2e_ms);
            if let Some(lag) = g.sync_lag_ms {
                let _ = write!(out, "  sync-lag {lag}ms");
            }
            if let Some(lag) = g.convergence_lag_ms {
                let _ = write!(out, "  convergence-lag {lag}ms");
            }
            if g.open_spans > 0 {
                let _ = write!(out, "  [{} open span(s)]", g.open_spans);
            }
            out.push('\n');
            for (stage, ms) in &g.attribution {
                let pct = if g.e2e_ms > 0 {
                    *ms as f64 * 100.0 / g.e2e_ms as f64
                } else {
                    0.0
                };
                let _ = writeln!(out, "  {stage:<18} {ms:>8}ms  {pct:>5.1}%");
            }
        }
        let samples = self.stage_samples();
        if !samples.is_empty() {
            let _ = writeln!(
                out,
                "\nper-stage critical-path latency (ms across groups):"
            );
            let _ = writeln!(
                out,
                "  {:<18} {:>6} {:>8} {:>8} {:>8}",
                "stage", "groups", "p50", "p95", "p99"
            );
            for (stage, mut vals) in samples {
                vals.sort_unstable();
                let q = |f: f64| -> u64 {
                    let idx = ((f * vals.len() as f64).ceil() as usize).max(1) - 1;
                    vals[idx.min(vals.len() - 1)]
                };
                let _ = writeln!(
                    out,
                    "  {:<18} {:>6} {:>8} {:>8} {:>8}",
                    stage,
                    vals.len(),
                    q(0.50),
                    q(0.95),
                    q(0.99)
                );
            }
        }
        let lags = self.sync_lags();
        if !lags.is_empty() || self.convergence_lag().is_some() {
            let _ = writeln!(out, "\nSLO gauges:");
            for (client, lag) in &lags {
                let _ = writeln!(out, "  sync_lag_ms{{client=\"{client}\"}} {lag}");
            }
            if let Some(lag) = self.convergence_lag() {
                let _ = writeln!(out, "  convergence_lag_ms {lag}");
            }
        }
        out
    }

    /// Exports the span table as Chrome trace-event JSON (the format
    /// Perfetto and `chrome://tracing` load): closed spans become `X`
    /// complete events, open spans `B` begin-only events; `pid` is the
    /// group's client id and `tid` indexes the actor, with metadata
    /// name records for both. Timestamps are microseconds (simulated
    /// ms × 1000). Byte-identical for identical span tables.
    pub fn chrome_trace(&self) -> String {
        let mut actors: BTreeSet<&str> = BTreeSet::new();
        let mut clients: BTreeSet<u32> = BTreeSet::new();
        for r in &self.records {
            actors.insert(r.actor.as_str());
            clients.insert(r.group.client);
        }
        let tid_of: BTreeMap<&str, usize> = actors
            .iter()
            .enumerate()
            .map(|(i, a)| (*a, i + 1))
            .collect();
        let mut events: Vec<String> = Vec::new();
        for client in &clients {
            events.push(format!(
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{client},\"tid\":0,\
                 \"args\":{{\"name\":{}}}}}",
                json_str(&format!("groups of client {client}"))
            ));
        }
        for (actor, tid) in &tid_of {
            for client in &clients {
                events.push(format!(
                    "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{client},\"tid\":{tid},\
                     \"args\":{{\"name\":{}}}}}",
                    json_str(actor)
                ));
            }
        }
        for r in &self.records {
            let tid = tid_of[r.actor.as_str()];
            let pid = r.group.client;
            let ts = r.start_ms * 1000;
            let args = format!(
                "{{\"group\":{},\"span\":{},\"parent\":{},\"detail\":{}}}",
                json_str(&r.group.to_string()),
                r.id.0,
                r.parent.map(|p| p.0).unwrap_or(0),
                json_str(&r.detail)
            );
            match r.end_ms {
                Some(end) => {
                    let dur = (end - r.start_ms) * 1000;
                    events.push(format!(
                        "{{\"ph\":\"X\",\"name\":{},\"cat\":\"sync\",\"ts\":{ts},\"dur\":{dur},\
                         \"pid\":{pid},\"tid\":{tid},\"args\":{args}}}",
                        json_str(&r.stage)
                    ));
                }
                None => {
                    events.push(format!(
                        "{{\"ph\":\"B\",\"name\":{},\"cat\":\"sync\",\"ts\":{ts},\
                         \"pid\":{pid},\"tid\":{tid},\"args\":{args}}}",
                        json_str(&r.stage)
                    ));
                }
            }
        }
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        for (i, e) in events.iter().enumerate() {
            out.push_str(e);
            if i + 1 < events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }
}

/// The critical-path sweep for one group (see the module docs for the
/// attribution rule).
fn profile_group(group: GroupKey, spans: &[&SpanRecord]) -> GroupProfile {
    let closed: Vec<(&SpanRecord, u64)> = spans
        .iter()
        .filter_map(|s| s.end_ms.map(|e| (*s, e)))
        .collect();
    let open_spans = spans.len() - closed.len();
    let mut bounds: BTreeSet<u64> = BTreeSet::new();
    for (s, e) in &closed {
        bounds.insert(s.start_ms);
        bounds.insert(*e);
    }
    let mut attributed: BTreeMap<&str, u64> = BTreeMap::new();
    let edges: Vec<u64> = bounds.into_iter().collect();
    for w in edges.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let winner = closed
            .iter()
            .filter(|(s, e)| s.start_ms <= lo && *e >= hi)
            .max_by_key(|(s, _)| (stage_rank(&s.stage), s.id.0))
            .map(|(s, _)| s.stage.as_str())
            .unwrap_or(WAIT_STAGE);
        *attributed.entry(winner).or_insert(0) += hi - lo;
    }
    // Stages whose spans are zero-width on the simulated clock (encode
    // CPU, server staging/apply) still surface in the table at 0ms —
    // the report must show every committed stage, not just the winners.
    for (s, _) in &closed {
        attributed.entry(s.stage.as_str()).or_insert(0);
    }
    let e2e_ms = match (edges.first(), edges.last()) {
        (Some(lo), Some(hi)) => hi - lo,
        _ => 0,
    };
    // Pipeline order first, pipeline.wait last, unknown stages in
    // between by name — a stable, readable ordering.
    let mut attribution: Vec<(String, u64)> = attributed
        .iter()
        .map(|(s, ms)| (s.to_string(), *ms))
        .collect();
    attribution.sort_by_key(|(stage, _)| {
        if stage == WAIT_STAGE {
            (usize::MAX, stage.clone())
        } else {
            let r = stage_rank(stage);
            if r > 0 {
                (r, String::new())
            } else {
                (STAGE_ORDER.len() + 1, stage.clone())
            }
        }
    });
    let origin = closed
        .iter()
        .filter(|(s, _)| s.stage == "vfs.write")
        .map(|(s, _)| s.start_ms)
        .min();
    let committed = closed
        .iter()
        .filter(|(s, _)| s.stage == "server.apply")
        .map(|(_, e)| *e)
        .max();
    let forwarded = closed
        .iter()
        .filter(|(s, _)| s.stage == "forward")
        .map(|(_, e)| *e)
        .max();
    let sync_lag_ms = match (origin, committed) {
        (Some(o), Some(c)) => Some(c.saturating_sub(o)),
        _ => None,
    };
    let convergence_lag_ms = match (origin, forwarded.or(committed)) {
        (Some(o), Some(f)) => Some(f.saturating_sub(o)),
        _ => None,
    };
    GroupProfile {
        group,
        e2e_ms,
        attribution,
        open_spans,
        sync_lag_ms,
        convergence_lag_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(client: u32, seq: u64) -> GroupKey {
        GroupKey { client, seq }
    }

    #[test]
    fn disabled_recorder_is_inert_and_lazy() {
        let r = SpanRecorder::default();
        assert!(!r.enabled());
        let id = r.start(key(1, 1), "client-1", "vfs.write", 5, None);
        assert!(id.is_none());
        r.end_detail(id, 9, || unreachable!("must stay lazy"));
        let id2 = r.record(key(1, 1), "client-1", "wire.upload", 5, 9, None, || {
            unreachable!("must stay lazy")
        });
        assert!(id2.is_none());
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn first_span_becomes_group_root_and_parents_followers() {
        let r = SpanRecorder::new(64);
        let root = r.record(key(1, 1), "client-1", "vfs.write", 0, 10, None, String::new);
        let child = r.start(key(1, 1), "client-1", "wire.upload", 10, None);
        let explicit = r.start(key(1, 1), "server", "server.apply", 20, Some(child));
        r.end(child, 30);
        r.end(explicit, 40);
        assert_eq!(r.group_root(key(1, 1)), Some(root));
        let recs = r.records();
        assert_eq!(recs[0].parent, None);
        assert_eq!(recs[1].parent, Some(root));
        assert_eq!(recs[2].parent, Some(child));
        // A different group roots independently.
        let other = r.start(key(2, 1), "client-2", "vfs.write", 5, None);
        assert_eq!(r.group_root(key(2, 1)), Some(other));
    }

    #[test]
    fn capacity_drops_are_counted_not_evicted() {
        let r = SpanRecorder::new(2);
        let a = r.start(key(1, 1), "a", "s", 0, None);
        let b = r.start(key(1, 1), "a", "s", 1, None);
        let c = r.start(key(1, 1), "a", "s", 2, None);
        assert!(!a.is_none() && !b.is_none());
        assert!(c.is_none());
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn double_end_keeps_first_close() {
        let r = SpanRecorder::new(8);
        let id = r.start(key(1, 1), "a", "wire.upload", 10, None);
        r.end(id, 20);
        r.end(id, 99);
        assert_eq!(r.records()[0].end_ms, Some(20));
    }

    #[test]
    fn critical_path_attributes_overlap_downstream_and_sums_to_e2e() {
        let r = SpanRecorder::new(64);
        let g = key(1, 1);
        // vfs.write dwell 0..100, encode 100..140 overlapping upload
        // 120..200, gap 200..210, server.apply 210..230.
        r.record(g, "client-1", "vfs.write", 0, 100, None, String::new);
        r.record(g, "client-1", "delta.encode", 100, 140, None, String::new);
        r.record(g, "client-1", "wire.upload", 120, 200, None, String::new);
        r.record(g, "server", "server.apply", 210, 230, None, String::new);
        let prof = Profiler::new(r.records());
        let groups = prof.groups();
        assert_eq!(groups.len(), 1);
        let gp = &groups[0];
        assert_eq!(gp.e2e_ms, 230);
        let ms = |stage: &str| {
            gp.attribution
                .iter()
                .find(|(s, _)| s == stage)
                .map(|(_, m)| *m)
                .unwrap_or(0)
        };
        assert_eq!(ms("vfs.write"), 100);
        assert_eq!(ms("delta.encode"), 20); // 100..120 only: 120..140 lost to upload
        assert_eq!(ms("wire.upload"), 80);
        assert_eq!(ms(WAIT_STAGE), 10); // the uncovered 200..210 gap
        assert_eq!(ms("server.apply"), 20);
        let total: u64 = gp.attribution.iter().map(|(_, m)| m).sum();
        assert_eq!(total, gp.e2e_ms);
        assert_eq!(gp.sync_lag_ms, Some(230));
        assert_eq!(gp.convergence_lag_ms, Some(230)); // no forward: falls back
    }

    #[test]
    fn open_spans_are_excluded_from_attribution_but_reported() {
        let r = SpanRecorder::new(64);
        let g = key(2, 3);
        r.record(g, "client-2", "vfs.write", 0, 10, None, String::new);
        let lost = r.start(g, "client-2", "wire.upload", 10, None);
        assert!(!lost.is_none()); // never ended: the dropped-chunk case
        r.record(g, "client-2", "wire.upload", 40, 60, None, String::new);
        r.record(g, "server", "server.apply", 60, 70, None, String::new);
        let prof = Profiler::new(r.records());
        let gp = &prof.groups()[0];
        assert_eq!(gp.open_spans, 1);
        let total: u64 = gp.attribution.iter().map(|(_, m)| m).sum();
        assert_eq!(total, gp.e2e_ms);
        let report = prof.text_report();
        assert!(report.contains("1 open"), "{report}");
        let trace = prof.chrome_trace();
        assert!(trace.contains("\"ph\":\"B\""), "{trace}");
    }

    #[test]
    fn lags_and_report_cover_forward() {
        let r = SpanRecorder::new(64);
        let g = key(1, 2);
        r.record(g, "client-1", "vfs.write", 100, 200, None, String::new);
        r.record(g, "server", "server.apply", 250, 300, None, String::new);
        r.record(g, "server", "forward", 300, 450, None, || {
            "peer client-2".into()
        });
        let prof = Profiler::new(r.records());
        let gp = &prof.groups()[0];
        assert_eq!(gp.sync_lag_ms, Some(200));
        assert_eq!(gp.convergence_lag_ms, Some(350));
        assert_eq!(prof.sync_lags().get(&1), Some(&200));
        assert_eq!(prof.convergence_lag(), Some(350));
        let report = prof.text_report();
        assert!(report.contains("sync_lag_ms{client=\"1\"} 200"), "{report}");
        assert!(report.contains("convergence_lag_ms 350"), "{report}");
    }

    #[test]
    fn export_registers_gauges_and_histograms() {
        let r = SpanRecorder::new(64);
        let g = key(1, 1);
        r.record(g, "client-1", "vfs.write", 0, 1_000, None, String::new);
        r.record(g, "client-1", "wire.upload", 1_000, 1_400, None, String::new);
        r.record(g, "server", "server.apply", 1_400, 1_500, None, String::new);
        let reg = Registry::new();
        Profiler::new(r.records()).export(&reg);
        let snap = reg.snapshot();
        assert_eq!(
            snap.get_labeled("sync_lag_ms", "1"),
            Some(&crate::MetricValue::Gauge(1_500))
        );
        let prom = reg.snapshot().to_prometheus();
        assert!(prom.contains("span_stage_ms"), "{prom}");
        assert!(prom.contains("stage=\"wire.upload\""), "{prom}");
    }

    #[test]
    fn chrome_trace_is_deterministic_and_balanced() {
        let build = || {
            let r = SpanRecorder::new(64);
            let g = key(3, 9);
            r.record(g, "client-3", "vfs.write", 0, 50, None, || "w \"q\"".into());
            let open = r.start(g, "client-3", "wire.upload", 50, None);
            assert!(!open.is_none());
            Profiler::new(r.records()).chrome_trace()
        };
        let a = build();
        assert_eq!(a, build());
        assert!(a.contains("\"ph\":\"X\""), "{a}");
        assert!(a.contains("\"ph\":\"B\""), "{a}");
        assert!(a.contains("\\\"q\\\""), "{a}"); // detail JSON-escaped
        assert!(a.trim_end().ends_with("]}"), "{a}");
    }
}
