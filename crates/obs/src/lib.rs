//! # deltacfs-obs
//!
//! The unified observability layer for the DeltaCFS reproduction: every
//! quantity the paper's evaluation measures — traffic (Fig. 8–9),
//! computation cost (Table II), IO amplification (§II-A) — and every
//! quantity the fault harness needs to explain a diverging run flows
//! through this crate.
//!
//! Three pieces:
//!
//! * [`Registry`] — a lock-cheap metrics registry: monotonic [`Counter`]s,
//!   [`Gauge`]s, and fixed-bucket [`Histogram`]s behind atomic handles.
//!   Registration takes a short lock; every increment afterwards is a
//!   single atomic operation. [`Registry::snapshot`] freezes all metrics
//!   into a deterministic, name-sorted [`Snapshot`] that exports as JSON
//!   ([`Snapshot::to_json`]) or Prometheus text exposition
//!   ([`Snapshot::to_prometheus`]).
//! * [`Tracer`] — structured event tracing for the sync pipeline: spans
//!   ([`Tracer::enter`]/[`Tracer::exit`]) and point events
//!   ([`Tracer::event`]), timestamped by the caller from the deterministic
//!   `SimClock`, so two runs of the same seed produce *byte-identical*
//!   trace output. Disabled tracers cost one relaxed atomic load per call
//!   site; detail strings are built lazily through closures and never
//!   materialize when tracing is off.
//! * **Flight recorder** — the tracer's bounded ring buffer plus
//!   [`DumpGuard`]: a drop guard that writes the recent-event timeline to
//!   a file (or stderr) when a test panics, turning an opaque convergence
//!   failure into a replayable timeline.
//!
//! The [`Merge`] trait and the [`metric_struct!`] macro unify the ad-hoc
//! counter structs (`TrafficStats`, `IoStats`, `Cost`, `FaultStats`) that
//! used to hand-roll their own `merge`/`reset`: the macro defines the
//! struct and its aggregation in one place, so a newly added field can
//! never be silently dropped from aggregation or from metric export.
//!
//! # Example
//!
//! ```
//! use deltacfs_obs::{Obs, Registry};
//!
//! let obs = Obs::with_tracing(1024);
//! let uploads = obs.registry.counter("uploads_total", "upload attempts");
//! uploads.inc();
//! obs.tracer.event(1500, "client-1", "wire.upload", || "group 1".into());
//! let snap = obs.registry.snapshot();
//! assert!(snap.to_prometheus().contains("uploads_total 1"));
//! assert!(obs.tracer.dump().contains("wire.upload"));
//! ```

#![warn(missing_docs)]

mod merge;
mod registry;
mod spans;
mod trace;

pub use merge::Merge;
pub use registry::{Counter, Gauge, Histogram, MetricValue, Registry, Snapshot};
pub use spans::{
    GroupKey, GroupProfile, Profiler, SpanId, SpanRecord, SpanRecorder, STAGE_ORDER, WAIT_STAGE,
};
pub use trace::{DumpGuard, TraceEvent, TraceKind, Tracer};

/// The observability bundle one simulated deployment shares: a metrics
/// registry, a tracer/flight-recorder, and a causal span recorder.
/// Cloning yields handles to the *same* registry, ring buffer, and
/// span table.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    /// The shared metrics registry.
    pub registry: Registry,
    /// The shared tracer (disabled by default; see [`Obs::with_tracing`]).
    pub tracer: Tracer,
    /// The shared causal span recorder (disabled by default; see
    /// [`Obs::with_profiling`]).
    pub spans: SpanRecorder,
}

impl Obs {
    /// A bundle whose tracer and span recorder are disabled: metrics
    /// record normally, trace and span call sites cost one relaxed
    /// atomic load each.
    pub fn new() -> Self {
        Self::default()
    }

    /// A bundle with tracing enabled and a flight-recorder ring holding
    /// the most recent `capacity` events. Span recording stays off.
    pub fn with_tracing(capacity: usize) -> Self {
        Obs {
            registry: Registry::new(),
            tracer: Tracer::new(capacity),
            spans: SpanRecorder::default(),
        }
    }

    /// A bundle with both tracing and causal span recording enabled:
    /// the tracer ring keeps `capacity` events, the span table holds up
    /// to `capacity` spans (further spans are counted as dropped).
    pub fn with_profiling(capacity: usize) -> Self {
        Obs {
            registry: Registry::new(),
            tracer: Tracer::new(capacity),
            spans: SpanRecorder::new(capacity),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_bundle_has_disabled_tracer() {
        let obs = Obs::new();
        assert!(!obs.tracer.enabled());
        obs.tracer.event(0, "a", "stage", || unreachable!("lazy detail"));
        assert_eq!(obs.tracer.len(), 0);
        assert!(!obs.spans.enabled());
        let g = GroupKey { client: 1, seq: 1 };
        assert!(obs.spans.start(g, "a", "stage", 0, None).is_none());
        assert!(obs.spans.is_empty());
    }

    #[test]
    fn profiling_bundle_records_spans() {
        let obs = Obs::with_profiling(128);
        assert!(obs.tracer.enabled());
        assert!(obs.spans.enabled());
        let g = GroupKey { client: 1, seq: 1 };
        let id = obs.spans.start(g, "client-1", "vfs.write", 0, None);
        obs.spans.end(id, 5);
        assert_eq!(obs.clone().spans.len(), 1); // clones share the table
    }

    #[test]
    fn clones_share_state() {
        let obs = Obs::with_tracing(16);
        let other = obs.clone();
        other.registry.counter("c", "").add(3);
        other.tracer.event(5, "x", "s", || "d".into());
        assert_eq!(obs.registry.counter("c", "").get(), 3);
        assert_eq!(obs.tracer.len(), 1);
    }
}
