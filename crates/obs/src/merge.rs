//! Uniform aggregation for counter structs.
//!
//! `TrafficStats`, `IoStats`, `Cost` and `FaultStats` all used to
//! hand-roll `merge`/`reset`/`absorb` methods that enumerate every field
//! by hand — which means a newly added field silently vanishes from
//! aggregation if one list is forgotten. The [`Merge`] trait plus the
//! [`metric_struct!`](crate::metric_struct) macro close that hole: the
//! macro defines the struct, its `Merge` impl, *and* its registry export
//! from one field list, so the three can never drift apart.

/// Additive aggregation: combine another instance into `self`, or reset
/// to the zero state.
pub trait Merge {
    /// Adds `other`'s contribution into `self`.
    fn merge_from(&mut self, other: &Self);
    /// Resets `self` to the zero state.
    fn reset(&mut self);
}

impl Merge for u64 {
    fn merge_from(&mut self, other: &Self) {
        *self += *other;
    }
    fn reset(&mut self) {
        *self = 0;
    }
}

/// Defines a counter struct together with its [`Merge`] impl and a
/// registry-export method, from a single field list.
///
/// Every field must be `u64`. The macro emits:
///
/// * the struct definition (attributes, including derives, pass through);
/// * `impl Merge` — `merge_from` adds and `reset` zeroes every field;
/// * `fn export_counters(&self, registry, prefix, label)` — sets one
///   registry counter per field, named `<prefix>_<field>`, optionally
///   carrying one `key="value"` label.
///
/// Because all three are generated from the same list, adding a field
/// automatically extends aggregation and export.
///
/// # Example
///
/// ```
/// deltacfs_obs::metric_struct! {
///     /// Demo counters.
///     #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
///     pub struct Demo {
///         /// Things seen.
///         pub seen: u64,
///         /// Things done.
///         pub done: u64,
///     }
/// }
/// use deltacfs_obs::Merge;
/// let mut a = Demo { seen: 1, done: 2 };
/// a.merge_from(&a.clone());
/// assert_eq!(a.done, 4);
/// let reg = deltacfs_obs::Registry::new();
/// a.export_counters(&reg, "demo", None);
/// assert_eq!(reg.counter("demo_seen", "").get(), 2);
/// ```
#[macro_export]
macro_rules! metric_struct {
    (
        $(#[$meta:meta])*
        $vis:vis struct $name:ident {
            $(
                $(#[$fmeta:meta])*
                $fvis:vis $field:ident: u64
            ),* $(,)?
        }
    ) => {
        $(#[$meta])*
        $vis struct $name {
            $(
                $(#[$fmeta])*
                $fvis $field: u64,
            )*
        }

        impl $crate::Merge for $name {
            fn merge_from(&mut self, other: &Self) {
                $( $crate::Merge::merge_from(&mut self.$field, &other.$field); )*
            }
            fn reset(&mut self) {
                $( $crate::Merge::reset(&mut self.$field); )*
            }
        }

        impl $name {
            /// Sets one registry counter per field, named
            /// `<prefix>_<field>`, optionally labeled `key="value"`.
            /// Counters are *set* to the struct's current values, so this
            /// is a snapshot-absorption: call it right before
            /// [`Registry::snapshot`]($crate::Registry::snapshot).
            $vis fn export_counters(
                &self,
                registry: &$crate::Registry,
                prefix: &str,
                label: Option<(&str, &str)>,
            ) {
                $(
                    registry
                        .counter_labeled(
                            &format!("{prefix}_{}", stringify!($field)),
                            "",
                            label,
                        )
                        .set(self.$field);
                )*
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    crate::metric_struct! {
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct Sample {
            pub hits: u64,
            pub misses: u64,
        }
    }

    #[test]
    fn merge_adds_every_field() {
        let mut a = Sample { hits: 2, misses: 3 };
        let b = Sample { hits: 5, misses: 7 };
        a.merge_from(&b);
        assert_eq!(a, Sample { hits: 7, misses: 10 });
        a.reset();
        assert_eq!(a, Sample::default());
    }

    #[test]
    fn export_covers_every_field() {
        let reg = crate::Registry::new();
        let s = Sample { hits: 4, misses: 9 };
        s.export_counters(&reg, "sample", Some(("client", "0")));
        let prom = reg.snapshot().to_prometheus();
        assert!(prom.contains("sample_hits{client=\"0\"} 4"), "{prom}");
        assert!(prom.contains("sample_misses{client=\"0\"} 9"), "{prom}");
    }
}
