/// Byte- and operation-level IO accounting for a [`Vfs`](crate::Vfs).
///
/// The paper calls out IO amplification as "another intrinsic flaw of delta
/// encoding algorithms" (§II-A): Dropbox read over 700 MB to sync 688 KB of
/// changes. These counters let the benchmarks report the same quantity for
/// every engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Total bytes returned by `read` calls.
    pub bytes_read: u64,
    /// Total bytes accepted by `write` calls.
    pub bytes_written: u64,
    /// Number of `read` calls.
    pub reads: u64,
    /// Number of `write` calls.
    pub writes: u64,
    /// Number of all mutating operations (create/write/rename/...).
    pub mutations: u64,
}

impl IoStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &IoStats) {
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.reads += other.reads;
        self.writes += other.writes;
        self.mutations += other.mutations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = IoStats {
            bytes_read: 1,
            bytes_written: 2,
            reads: 3,
            writes: 4,
            mutations: 5,
        };
        a.merge(&a.clone());
        assert_eq!(a.bytes_read, 2);
        assert_eq!(a.mutations, 10);
    }

    #[test]
    fn reset_zeroes() {
        let mut a = IoStats::new();
        a.bytes_read = 7;
        a.reset();
        assert_eq!(a, IoStats::default());
    }
}
