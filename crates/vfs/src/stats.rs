use deltacfs_obs::metric_struct;

metric_struct! {
    /// Byte- and operation-level IO accounting for a [`Vfs`](crate::Vfs).
    ///
    /// The paper calls out IO amplification as "another intrinsic flaw of delta
    /// encoding algorithms" (§II-A): Dropbox read over 700 MB to sync 688 KB of
    /// changes. These counters let the benchmarks report the same quantity for
    /// every engine. Defined through [`metric_struct!`] so aggregation
    /// ([`Merge`](deltacfs_obs::Merge)) and registry export
    /// ([`IoStats::export_counters`]) always cover every field.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct IoStats {
        /// Total bytes returned by `read` calls.
        pub bytes_read: u64,
        /// Total bytes accepted by `write` calls.
        pub bytes_written: u64,
        /// Number of `read` calls.
        pub reads: u64,
        /// Number of `write` calls.
        pub writes: u64,
        /// Number of all mutating operations (create/write/rename/...).
        pub mutations: u64,
    }
}

impl IoStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        deltacfs_obs::Merge::reset(self);
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &IoStats) {
        deltacfs_obs::Merge::merge_from(self, other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = IoStats {
            bytes_read: 1,
            bytes_written: 2,
            reads: 3,
            writes: 4,
            mutations: 5,
        };
        a.merge(&a.clone());
        assert_eq!(a.bytes_read, 2);
        assert_eq!(a.mutations, 10);
    }

    #[test]
    fn reset_zeroes() {
        let mut a = IoStats::new();
        a.bytes_read = 7;
        a.reset();
        assert_eq!(a, IoStats::default());
    }

    #[test]
    fn export_covers_every_field() {
        let reg = deltacfs_obs::Registry::new();
        let s = IoStats {
            bytes_read: 1,
            bytes_written: 2,
            reads: 3,
            writes: 4,
            mutations: 5,
        };
        s.export_counters(&reg, "io", Some(("client", "0")));
        let prom = reg.snapshot().to_prometheus();
        for line in [
            "io_bytes_read{client=\"0\"} 1",
            "io_bytes_written{client=\"0\"} 2",
            "io_reads{client=\"0\"} 3",
            "io_writes{client=\"0\"} 4",
            "io_mutations{client=\"0\"} 5",
        ] {
            assert!(prom.contains(line), "missing {line} in:\n{prom}");
        }
    }
}
