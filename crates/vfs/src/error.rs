use std::error::Error;
use std::fmt;

/// Errors produced by [`Vfs`](crate::Vfs) operations.
///
/// The variants mirror the POSIX errno values a FUSE file system would
/// return, which matters because the DeltaCFS relation table reacts to some
/// of them (e.g. `ENOSPC` suppresses preserving unlinked files, paper
/// §III-A).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VfsError {
    /// The path does not exist (`ENOENT`).
    NotFound(String),
    /// The path already exists (`EEXIST`).
    AlreadyExists(String),
    /// A directory was expected (`ENOTDIR`).
    NotADirectory(String),
    /// A regular file was expected (`EISDIR`).
    IsADirectory(String),
    /// Directory not empty on `rmdir`/`rename` (`ENOTEMPTY`).
    NotEmpty(String),
    /// The file system capacity would be exceeded (`ENOSPC`).
    NoSpace,
    /// An unknown file handle was used (`EBADF`).
    BadHandle(u64),
    /// A malformed path or argument was supplied (`EINVAL`).
    InvalidArgument(String),
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VfsError::NotFound(p) => write!(f, "no such file or directory: {p}"),
            VfsError::AlreadyExists(p) => write!(f, "file exists: {p}"),
            VfsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            VfsError::IsADirectory(p) => write!(f, "is a directory: {p}"),
            VfsError::NotEmpty(p) => write!(f, "directory not empty: {p}"),
            VfsError::NoSpace => write!(f, "no space left on device"),
            VfsError::BadHandle(h) => write!(f, "bad file handle: {h}"),
            VfsError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
        }
    }
}

impl Error for VfsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let e = VfsError::NotFound("/a".into());
        assert_eq!(e.to_string(), "no such file or directory: /a");
        assert_eq!(VfsError::NoSpace.to_string(), "no space left on device");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VfsError>();
    }
}
