//! # deltacfs-vfs
//!
//! An in-memory user-space file system that plays the role FUSE plays in the
//! DeltaCFS paper (Zhang et al., ICDCS 2017): a layer that *sees every file
//! operation* before it reaches the backing store.
//!
//! DeltaCFS's central trick — combining NFS-like file RPC with delta
//! encoding — requires intercepting `write`, `rename`, `link`, `unlink`,
//! `truncate` and `close` operations together with the written data. This
//! crate provides:
//!
//! * [`Vfs`] — a complete in-memory file system (files, directories, hard
//!   links, handles, capacity accounting),
//! * [`OpEvent`] / [`OpObserver`] — the interception hook. Every mutating
//!   operation emits an event carrying everything a sync engine needs,
//!   including the *overwritten* bytes (which is what the paper's physical
//!   undo logging copies out before a write lands),
//! * fault injection ([`Vfs::inject_bit_flip`], [`Vfs::inject_torn_write`])
//!   that mutates the backing store *without* emitting events, exactly like
//!   disk corruption or an ordered-journaling crash does underneath a real
//!   sync client (paper §IV-E).
//!
//! # Example
//!
//! ```
//! use deltacfs_vfs::{Vfs, VfsError};
//!
//! # fn main() -> Result<(), VfsError> {
//! let mut fs = Vfs::new();
//! fs.create("/doc.txt")?;
//! fs.write("/doc.txt", 0, b"hello")?;
//! assert_eq!(fs.read("/doc.txt", 0, 5)?, b"hello");
//! fs.rename("/doc.txt", "/doc.old")?;
//! assert!(fs.exists("/doc.old"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod error;
mod event;
mod fs;
mod path;
mod stats;

pub use error::VfsError;
pub use event::{OpEvent, OpObserver, RecordingObserver};
pub use fs::{DirEntry, FileKind, Handle, Metadata, Vfs};
pub use path::VPath;
pub use stats::IoStats;

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, VfsError>;
