use std::fmt;

use crate::VfsError;

/// A normalized, absolute path inside a [`Vfs`](crate::Vfs).
///
/// `VPath` guarantees the invariants the rest of the stack relies on:
/// it is absolute, uses `/` separators, contains no empty, `.` or `..`
/// components, and has no trailing slash (except the root itself). The
/// relation table compares paths for equality, so a canonical form is
/// essential.
///
/// # Example
///
/// ```
/// use deltacfs_vfs::VPath;
///
/// let p = VPath::new("/a//b/./c")?;
/// assert_eq!(p.as_str(), "/a/b/c");
/// assert_eq!(p.file_name(), Some("c"));
/// assert_eq!(p.parent().unwrap().as_str(), "/a/b");
/// # Ok::<(), deltacfs_vfs::VfsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VPath(String);

impl VPath {
    /// Parses and normalizes `raw` into a `VPath`.
    ///
    /// # Errors
    ///
    /// Returns [`VfsError::InvalidArgument`] if `raw` is relative, empty, or
    /// contains `..` components (the in-memory VFS has no notion of a
    /// current directory, so these are always programming errors).
    pub fn new(raw: &str) -> Result<Self, VfsError> {
        if !raw.starts_with('/') {
            return Err(VfsError::InvalidArgument(format!(
                "path must be absolute: {raw:?}"
            )));
        }
        let mut parts: Vec<&str> = Vec::new();
        for comp in raw.split('/') {
            match comp {
                "" | "." => {}
                ".." => {
                    return Err(VfsError::InvalidArgument(format!(
                        "path must not contain '..': {raw:?}"
                    )))
                }
                c => parts.push(c),
            }
        }
        if parts.is_empty() {
            Ok(VPath("/".to_string()))
        } else {
            Ok(VPath(format!("/{}", parts.join("/"))))
        }
    }

    /// The root path, `/`.
    pub fn root() -> Self {
        VPath("/".to_string())
    }

    /// Returns the normalized string form.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Returns `true` if this is the root directory.
    pub fn is_root(&self) -> bool {
        self.0 == "/"
    }

    /// The final component, or `None` for the root.
    pub fn file_name(&self) -> Option<&str> {
        if self.is_root() {
            None
        } else {
            self.0.rsplit('/').next()
        }
    }

    /// The parent directory, or `None` for the root.
    pub fn parent(&self) -> Option<VPath> {
        if self.is_root() {
            return None;
        }
        match self.0.rfind('/') {
            Some(0) => Some(VPath::root()),
            Some(idx) => Some(VPath(self.0[..idx].to_string())),
            None => None,
        }
    }

    /// Appends a single component, returning a new path.
    ///
    /// # Errors
    ///
    /// Returns [`VfsError::InvalidArgument`] if `component` is empty or
    /// contains a slash.
    pub fn join(&self, component: &str) -> Result<VPath, VfsError> {
        if component.is_empty() || component.contains('/') {
            return Err(VfsError::InvalidArgument(format!(
                "invalid path component: {component:?}"
            )));
        }
        if self.is_root() {
            Ok(VPath(format!("/{component}")))
        } else {
            Ok(VPath(format!("{}/{component}", self.0)))
        }
    }

    /// Iterates over the path components (excluding the root).
    pub fn components(&self) -> impl Iterator<Item = &str> {
        self.0.split('/').filter(|c| !c.is_empty())
    }

    /// Returns `true` if `self` is `other` or lies underneath it.
    pub fn starts_with(&self, other: &VPath) -> bool {
        if other.is_root() {
            return true;
        }
        self.0 == other.0 || self.0.starts_with(&format!("{}/", other.0))
    }
}

impl fmt::Display for VPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for VPath {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl std::str::FromStr for VPath {
    type Err = VfsError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        VPath::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_duplicate_slashes_and_dots() {
        assert_eq!(VPath::new("/a//b/./c").unwrap().as_str(), "/a/b/c");
        assert_eq!(VPath::new("/").unwrap().as_str(), "/");
        assert_eq!(VPath::new("//").unwrap().as_str(), "/");
        assert_eq!(VPath::new("/a/").unwrap().as_str(), "/a");
    }

    #[test]
    fn rejects_relative_and_dotdot() {
        assert!(VPath::new("a/b").is_err());
        assert!(VPath::new("").is_err());
        assert!(VPath::new("/a/../b").is_err());
    }

    #[test]
    fn parent_and_file_name() {
        let p = VPath::new("/a/b/c").unwrap();
        assert_eq!(p.file_name(), Some("c"));
        assert_eq!(p.parent().unwrap().as_str(), "/a/b");
        assert_eq!(VPath::new("/a").unwrap().parent().unwrap().as_str(), "/");
        assert!(VPath::root().parent().is_none());
        assert!(VPath::root().file_name().is_none());
    }

    #[test]
    fn join_builds_children() {
        let p = VPath::root().join("a").unwrap().join("b").unwrap();
        assert_eq!(p.as_str(), "/a/b");
        assert!(VPath::root().join("a/b").is_err());
        assert!(VPath::root().join("").is_err());
    }

    #[test]
    fn starts_with_is_component_wise() {
        let a = VPath::new("/a/b").unwrap();
        let ab = VPath::new("/a/bc").unwrap();
        assert!(ab.starts_with(&VPath::new("/a").unwrap()));
        assert!(!ab.starts_with(&a));
        assert!(a.starts_with(&a));
        assert!(a.starts_with(&VPath::root()));
    }

    #[test]
    fn components_iterates_in_order() {
        let p = VPath::new("/a/b/c").unwrap();
        assert_eq!(p.components().collect::<Vec<_>>(), vec!["a", "b", "c"]);
        assert_eq!(VPath::root().components().count(), 0);
    }
}
