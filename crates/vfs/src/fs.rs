use std::collections::{BTreeMap, HashMap};

use bytes::Bytes;

use crate::event::{OpEvent, OpObserver};
use crate::path::VPath;
use crate::stats::IoStats;
use crate::{Result, VfsError};

/// Identifier of an open file handle returned by [`Vfs::open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Handle(pub(crate) u64);

/// The kind of a file-system node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// A regular file.
    File,
    /// A directory.
    Directory,
}

/// Metadata reported by [`Vfs::metadata`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Metadata {
    /// Whether the node is a file or directory.
    pub kind: FileKind,
    /// Size in bytes (0 for directories).
    pub size: u64,
    /// Number of hard links pointing at the node.
    pub nlink: u32,
}

/// One entry in a directory listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// The entry's name within its directory.
    pub name: String,
    /// Whether the entry is a file or directory.
    pub kind: FileKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct InodeId(u64);

#[derive(Debug)]
enum Node {
    File {
        data: Vec<u8>,
        nlink: u32,
        open: u32,
    },
    Dir {
        children: BTreeMap<String, InodeId>,
    },
}

#[derive(Debug)]
struct HandleState {
    inode: InodeId,
    path: VPath,
}

/// An in-memory file system with operation interception.
///
/// `Vfs` supports two ways of observing operations:
///
/// * an inline [`OpObserver`] ([`Vfs::set_observer`]) that runs synchronously
///   inside each operation — this is how DeltaCFS hangs off LibFuse, and it
///   is what the Table III micro-benchmarks exercise (interception work slows
///   the application's IO path);
/// * a built-in event log ([`Vfs::enable_event_log`] / [`Vfs::drain_events`])
///   for replay drivers that want to pump events into an engine between
///   operations.
///
/// Both deliver the same [`OpEvent`] stream.
pub struct Vfs {
    inodes: HashMap<u64, Node>,
    next_inode: u64,
    next_handle: u64,
    handles: HashMap<u64, HandleState>,
    observer: Option<Box<dyn OpObserver + Send>>,
    event_log: Option<Vec<OpEvent>>,
    capacity: Option<u64>,
    used: u64,
    stats: IoStats,
}

impl std::fmt::Debug for Vfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vfs")
            .field("inodes", &self.inodes.len())
            .field("used", &self.used)
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

const ROOT: InodeId = InodeId(1);

impl Default for Vfs {
    fn default() -> Self {
        Self::new()
    }
}

impl Vfs {
    /// Creates an empty file system containing only the root directory.
    pub fn new() -> Self {
        let mut inodes = HashMap::new();
        inodes.insert(
            ROOT.0,
            Node::Dir {
                children: BTreeMap::new(),
            },
        );
        Vfs {
            inodes,
            next_inode: 2,
            next_handle: 1,
            handles: HashMap::new(),
            observer: None,
            event_log: None,
            capacity: None,
            used: 0,
            stats: IoStats::new(),
        }
    }

    /// Creates a file system with a byte-capacity limit; writes that would
    /// exceed it fail with [`VfsError::NoSpace`].
    pub fn with_capacity(limit: u64) -> Self {
        let mut fs = Self::new();
        fs.capacity = Some(limit);
        fs
    }

    /// Installs an inline observer, replacing any previous one.
    pub fn set_observer(&mut self, obs: Box<dyn OpObserver + Send>) {
        self.observer = Some(obs);
    }

    /// Removes and returns the inline observer, if any.
    pub fn take_observer(&mut self) -> Option<Box<dyn OpObserver + Send>> {
        self.observer.take()
    }

    /// Switches on the built-in event log.
    pub fn enable_event_log(&mut self) {
        if self.event_log.is_none() {
            self.event_log = Some(Vec::new());
        }
    }

    /// Drains and returns all events logged since the last drain.
    ///
    /// Returns an empty vector when the event log is disabled.
    pub fn drain_events(&mut self) -> Vec<OpEvent> {
        match &mut self.event_log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// IO counters accumulated so far.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Resets the IO counters.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Total bytes currently stored in regular files.
    pub fn bytes_used(&self) -> u64 {
        self.used
    }

    fn emit(&mut self, event: OpEvent) {
        if let Some(log) = &mut self.event_log {
            log.push(event.clone());
        }
        if let Some(mut obs) = self.observer.take() {
            obs.on_op(&event);
            self.observer = Some(obs);
        }
    }

    fn alloc_inode(&mut self, node: Node) -> InodeId {
        let id = self.next_inode;
        self.next_inode += 1;
        self.inodes.insert(id, node);
        InodeId(id)
    }

    fn resolve(&self, path: &VPath) -> Result<InodeId> {
        let mut cur = ROOT;
        for comp in path.components() {
            match self.inodes.get(&cur.0) {
                Some(Node::Dir { children }) => match children.get(comp) {
                    Some(id) => cur = *id,
                    None => return Err(VfsError::NotFound(path.to_string())),
                },
                Some(Node::File { .. }) => return Err(VfsError::NotADirectory(path.to_string())),
                None => return Err(VfsError::NotFound(path.to_string())),
            }
        }
        Ok(cur)
    }

    fn resolve_parent(&self, path: &VPath) -> Result<(InodeId, String)> {
        let parent = path
            .parent()
            .ok_or_else(|| VfsError::InvalidArgument("root has no parent".into()))?;
        let name = path
            .file_name()
            .ok_or_else(|| VfsError::InvalidArgument("path has no file name".into()))?
            .to_string();
        let pid = self.resolve(&parent)?;
        match self.inodes.get(&pid.0) {
            Some(Node::Dir { .. }) => Ok((pid, name)),
            _ => Err(VfsError::NotADirectory(parent.to_string())),
        }
    }

    fn dir_children_mut(&mut self, id: InodeId) -> &mut BTreeMap<String, InodeId> {
        match self.inodes.get_mut(&id.0) {
            Some(Node::Dir { children }) => children,
            _ => unreachable!("dir_children_mut on non-directory"),
        }
    }

    fn file_data(&self, id: InodeId, path: &VPath) -> Result<&Vec<u8>> {
        match self.inodes.get(&id.0) {
            Some(Node::File { data, .. }) => Ok(data),
            Some(Node::Dir { .. }) => Err(VfsError::IsADirectory(path.to_string())),
            None => Err(VfsError::NotFound(path.to_string())),
        }
    }

    fn check_space(&self, additional: u64) -> Result<()> {
        if let Some(cap) = self.capacity {
            if self.used.saturating_add(additional) > cap {
                return Err(VfsError::NoSpace);
            }
        }
        Ok(())
    }

    /// Returns `true` if `path` exists (file or directory).
    pub fn exists(&self, path: &str) -> bool {
        VPath::new(path)
            .ok()
            .map(|p| self.resolve(&p).is_ok())
            .unwrap_or(false)
    }

    /// Returns metadata for `path`.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotFound`] if the path does not exist.
    pub fn metadata(&self, path: &str) -> Result<Metadata> {
        let p = VPath::new(path)?;
        let id = self.resolve(&p)?;
        Ok(match self.inodes.get(&id.0) {
            Some(Node::File { data, nlink, .. }) => Metadata {
                kind: FileKind::File,
                size: data.len() as u64,
                nlink: *nlink,
            },
            Some(Node::Dir { .. }) => Metadata {
                kind: FileKind::Directory,
                size: 0,
                nlink: 1,
            },
            None => return Err(VfsError::NotFound(path.to_string())),
        })
    }

    /// Creates an empty regular file.
    ///
    /// # Errors
    ///
    /// [`VfsError::AlreadyExists`] if the name is taken,
    /// [`VfsError::NotFound`] if the parent directory is missing.
    pub fn create(&mut self, path: &str) -> Result<()> {
        let p = VPath::new(path)?;
        let (pid, name) = self.resolve_parent(&p)?;
        if self.dir_children_mut(pid).contains_key(&name) {
            return Err(VfsError::AlreadyExists(p.to_string()));
        }
        let id = self.alloc_inode(Node::File {
            data: Vec::new(),
            nlink: 1,
            open: 0,
        });
        self.dir_children_mut(pid).insert(name, id);
        self.stats.mutations += 1;
        self.emit(OpEvent::Create { path: p });
        Ok(())
    }

    /// Creates a directory.
    ///
    /// # Errors
    ///
    /// [`VfsError::AlreadyExists`] if the name is taken,
    /// [`VfsError::NotFound`] if the parent directory is missing.
    pub fn mkdir(&mut self, path: &str) -> Result<()> {
        let p = VPath::new(path)?;
        let (pid, name) = self.resolve_parent(&p)?;
        if self.dir_children_mut(pid).contains_key(&name) {
            return Err(VfsError::AlreadyExists(p.to_string()));
        }
        let id = self.alloc_inode(Node::Dir {
            children: BTreeMap::new(),
        });
        self.dir_children_mut(pid).insert(name, id);
        self.stats.mutations += 1;
        self.emit(OpEvent::Mkdir { path: p });
        Ok(())
    }

    /// Creates `path` and all missing ancestors as directories.
    ///
    /// Existing directories along the way are left untouched.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotADirectory`] if a non-final component is a file.
    pub fn mkdir_all(&mut self, path: &str) -> Result<()> {
        let p = VPath::new(path)?;
        let mut cur = VPath::root();
        for comp in p.components() {
            cur = cur.join(comp)?;
            match self.resolve(&cur) {
                Ok(id) => match self.inodes.get(&id.0) {
                    Some(Node::Dir { .. }) => {}
                    _ => return Err(VfsError::NotADirectory(cur.to_string())),
                },
                Err(VfsError::NotFound(_)) => self.mkdir(cur.as_str())?,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Writes `data` at byte `offset`, extending (zero-filling) as needed.
    ///
    /// Emits an [`OpEvent::Write`] carrying both the written and the
    /// overwritten bytes.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotFound`] / [`VfsError::IsADirectory`] for bad targets,
    /// [`VfsError::NoSpace`] if the capacity limit would be exceeded.
    pub fn write(&mut self, path: &str, offset: u64, data: &[u8]) -> Result<()> {
        let p = VPath::new(path)?;
        let id = self.resolve(&p)?;
        let old_len = self.file_data(id, &p)?.len() as u64;
        let end = offset + data.len() as u64;
        let growth = end.saturating_sub(old_len);
        self.check_space(growth)?;
        let overwritten = {
            let file = match self.inodes.get_mut(&id.0) {
                Some(Node::File { data, .. }) => data,
                Some(Node::Dir { .. }) => return Err(VfsError::IsADirectory(p.to_string())),
                None => return Err(VfsError::NotFound(p.to_string())),
            };
            let ow_end = end.min(old_len);
            let overwritten = if offset < ow_end {
                Bytes::copy_from_slice(&file[offset as usize..ow_end as usize])
            } else {
                Bytes::new()
            };
            if end > old_len {
                file.resize(end as usize, 0);
            }
            file[offset as usize..end as usize].copy_from_slice(data);
            overwritten
        };
        self.used += growth;
        self.stats.writes += 1;
        self.stats.bytes_written += data.len() as u64;
        self.stats.mutations += 1;
        self.emit(OpEvent::Write {
            path: p,
            offset,
            data: Bytes::copy_from_slice(data),
            overwritten,
        });
        Ok(())
    }

    /// Reads up to `len` bytes starting at `offset` (clamped at EOF).
    ///
    /// # Errors
    ///
    /// [`VfsError::NotFound`] / [`VfsError::IsADirectory`] for bad targets.
    pub fn read(&mut self, path: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        let p = VPath::new(path)?;
        let id = self.resolve(&p)?;
        let data = self.file_data(id, &p)?;
        let start = (offset as usize).min(data.len());
        let end = (start + len).min(data.len());
        let out = data[start..end].to_vec();
        self.stats.reads += 1;
        self.stats.bytes_read += out.len() as u64;
        Ok(out)
    }

    /// Reads the whole file.
    ///
    /// # Errors
    ///
    /// Same as [`Vfs::read`].
    pub fn read_all(&mut self, path: &str) -> Result<Vec<u8>> {
        let size = self.metadata(path)?.size;
        self.read(path, 0, size as usize)
    }

    /// Reads the whole file without touching the IO counters.
    ///
    /// Sync engines use this for their own scans so that [`IoStats`]
    /// reflects only application IO plus engine IO counted explicitly.
    ///
    /// # Errors
    ///
    /// Same as [`Vfs::read`].
    pub fn peek_all(&self, path: &str) -> Result<Vec<u8>> {
        let p = VPath::new(path)?;
        let id = self.resolve(&p)?;
        Ok(self.file_data(id, &p)?.clone())
    }

    /// Reads up to `len` bytes at `offset` without touching the IO
    /// counters (clamped at EOF), for engine-internal scans.
    ///
    /// # Errors
    ///
    /// Same as [`Vfs::read`].
    pub fn peek_range(&self, path: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        let p = VPath::new(path)?;
        let id = self.resolve(&p)?;
        let data = self.file_data(id, &p)?;
        let start = (offset as usize).min(data.len());
        let end = (start + len).min(data.len());
        Ok(data[start..end].to_vec())
    }

    /// Truncates (or zero-extends) the file to `size` bytes.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotFound`] / [`VfsError::IsADirectory`] for bad targets,
    /// [`VfsError::NoSpace`] when growing past the capacity limit.
    pub fn truncate(&mut self, path: &str, size: u64) -> Result<()> {
        let p = VPath::new(path)?;
        let id = self.resolve(&p)?;
        let old_len = self.file_data(id, &p)?.len() as u64;
        let growth = size.saturating_sub(old_len);
        self.check_space(growth)?;
        let cut = {
            let file = match self.inodes.get_mut(&id.0) {
                Some(Node::File { data, .. }) => data,
                Some(Node::Dir { .. }) => return Err(VfsError::IsADirectory(p.to_string())),
                None => return Err(VfsError::NotFound(p.to_string())),
            };
            let cut = if size < old_len {
                Bytes::copy_from_slice(&file[size as usize..])
            } else {
                Bytes::new()
            };
            file.resize(size as usize, 0);
            cut
        };
        self.used = self.used + growth - cut.len() as u64;
        self.stats.mutations += 1;
        self.emit(OpEvent::Truncate { path: p, size, cut });
        Ok(())
    }

    /// Atomically renames `src` to `dst`, replacing an existing file at
    /// `dst` (POSIX semantics).
    ///
    /// # Errors
    ///
    /// [`VfsError::NotFound`] if `src` or `dst`'s parent is missing,
    /// [`VfsError::AlreadyExists`] if `dst` is a directory.
    pub fn rename(&mut self, src: &str, dst: &str) -> Result<()> {
        let sp = VPath::new(src)?;
        let dp = VPath::new(dst)?;
        if sp == dp {
            // POSIX: renaming a path onto itself succeeds, but only if it
            // exists.
            self.resolve(&sp)?;
            return Ok(());
        }
        if dp.starts_with(&sp) {
            return Err(VfsError::InvalidArgument(
                "cannot rename a directory into itself".into(),
            ));
        }
        let sid = self.resolve(&sp)?;
        let (spid, sname) = self.resolve_parent(&sp)?;
        let (dpid, dname) = self.resolve_parent(&dp)?;
        // POSIX forbids replacing a directory with a file and requires an
        // empty target directory; we only allow replacing regular files.
        let replaced = match self.dir_children_mut(dpid).get(&dname).copied() {
            Some(did) => {
                let shared = match self.inodes.get(&did.0) {
                    Some(Node::Dir { .. }) => return Err(VfsError::AlreadyExists(dp.to_string())),
                    Some(Node::File { nlink, .. }) => *nlink > 1,
                    None => return Err(VfsError::NotFound(dp.to_string())),
                };
                // If other hard links keep the inode alive (gedit's f~),
                // the old content must be copied for the event; otherwise
                // it is moved out of the dying inode for free.
                if shared {
                    let copy = match self.inodes.get(&did.0) {
                        Some(Node::File { data, .. }) => Bytes::copy_from_slice(data),
                        _ => Bytes::new(),
                    };
                    self.drop_link(did);
                    Some(copy)
                } else {
                    Some(Bytes::from(self.drop_link(did).unwrap_or_default()))
                }
            }
            None => None,
        };
        self.dir_children_mut(spid).remove(&sname);
        self.dir_children_mut(dpid).insert(dname, sid);
        self.stats.mutations += 1;
        self.emit(OpEvent::Rename {
            src: sp,
            dst: dp,
            replaced,
        });
        Ok(())
    }

    /// Creates a hard link `dst` pointing at the file `src`.
    ///
    /// # Errors
    ///
    /// [`VfsError::IsADirectory`] if `src` is a directory,
    /// [`VfsError::AlreadyExists`] if `dst` exists.
    pub fn link(&mut self, src: &str, dst: &str) -> Result<()> {
        let sp = VPath::new(src)?;
        let dp = VPath::new(dst)?;
        let sid = self.resolve(&sp)?;
        match self.inodes.get_mut(&sid.0) {
            Some(Node::File { nlink, .. }) => *nlink += 1,
            Some(Node::Dir { .. }) => return Err(VfsError::IsADirectory(sp.to_string())),
            None => return Err(VfsError::NotFound(sp.to_string())),
        }
        let (dpid, dname) = match self.resolve_parent(&dp) {
            Ok(v) => v,
            Err(e) => {
                self.dec_nlink(sid);
                return Err(e);
            }
        };
        if self.dir_children_mut(dpid).contains_key(&dname) {
            self.dec_nlink(sid);
            return Err(VfsError::AlreadyExists(dp.to_string()));
        }
        self.dir_children_mut(dpid).insert(dname, sid);
        self.stats.mutations += 1;
        self.emit(OpEvent::Link { src: sp, dst: dp });
        Ok(())
    }

    fn dec_nlink(&mut self, id: InodeId) {
        if let Some(Node::File { nlink, .. }) = self.inodes.get_mut(&id.0) {
            *nlink -= 1;
        }
    }

    /// Drops one link to `id`, freeing the inode when the count hits zero.
    /// Returns the dying inode's content if it was freed.
    fn drop_link(&mut self, id: InodeId) -> Option<Vec<u8>> {
        match self.inodes.get_mut(&id.0) {
            Some(Node::File { nlink, data, .. }) => {
                *nlink -= 1;
                if *nlink == 0 {
                    self.used -= data.len() as u64;
                    match self.inodes.remove(&id.0) {
                        Some(Node::File { data, .. }) => Some(data),
                        _ => unreachable!("inode changed kind"),
                    }
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Removes the link at `path`.
    ///
    /// # Errors
    ///
    /// [`VfsError::IsADirectory`] if `path` is a directory (use
    /// [`Vfs::rmdir`]), [`VfsError::NotFound`] if it does not exist.
    pub fn unlink(&mut self, path: &str) -> Result<()> {
        let p = VPath::new(path)?;
        let id = self.resolve(&p)?;
        if matches!(self.inodes.get(&id.0), Some(Node::Dir { .. })) {
            return Err(VfsError::IsADirectory(p.to_string()));
        }
        let (pid, name) = self.resolve_parent(&p)?;
        self.dir_children_mut(pid).remove(&name);
        let removed = self.drop_link(id).map(Bytes::from);
        self.stats.mutations += 1;
        self.emit(OpEvent::Unlink { path: p, removed });
        Ok(())
    }

    /// Removes an empty directory.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotEmpty`] if the directory has entries,
    /// [`VfsError::NotADirectory`] if `path` is a file.
    pub fn rmdir(&mut self, path: &str) -> Result<()> {
        let p = VPath::new(path)?;
        if p.is_root() {
            return Err(VfsError::InvalidArgument("cannot remove root".into()));
        }
        let id = self.resolve(&p)?;
        match self.inodes.get(&id.0) {
            Some(Node::Dir { children }) => {
                if !children.is_empty() {
                    return Err(VfsError::NotEmpty(p.to_string()));
                }
            }
            _ => return Err(VfsError::NotADirectory(p.to_string())),
        }
        let (pid, name) = self.resolve_parent(&p)?;
        self.dir_children_mut(pid).remove(&name);
        self.inodes.remove(&id.0);
        self.stats.mutations += 1;
        self.emit(OpEvent::Rmdir { path: p });
        Ok(())
    }

    /// Opens the file and returns a handle; the matching [`Vfs::close`]
    /// emits [`OpEvent::Close`] when it closes the last open handle.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotFound`] / [`VfsError::IsADirectory`] for bad targets.
    pub fn open(&mut self, path: &str) -> Result<Handle> {
        let p = VPath::new(path)?;
        let id = self.resolve(&p)?;
        match self.inodes.get_mut(&id.0) {
            Some(Node::File { open, .. }) => *open += 1,
            Some(Node::Dir { .. }) => return Err(VfsError::IsADirectory(p.to_string())),
            None => return Err(VfsError::NotFound(p.to_string())),
        }
        let h = self.next_handle;
        self.next_handle += 1;
        self.handles.insert(h, HandleState { inode: id, path: p });
        Ok(Handle(h))
    }

    /// Closes `handle`, emitting [`OpEvent::Close`] when this was the last
    /// open handle on the file.
    ///
    /// # Errors
    ///
    /// [`VfsError::BadHandle`] if the handle is unknown.
    pub fn close(&mut self, handle: Handle) -> Result<()> {
        let st = self
            .handles
            .remove(&handle.0)
            .ok_or(VfsError::BadHandle(handle.0))?;
        let emit = match self.inodes.get_mut(&st.inode.0) {
            Some(Node::File { open, .. }) => {
                *open = open.saturating_sub(1);
                *open == 0
            }
            _ => false,
        };
        if emit {
            self.emit(OpEvent::Close { path: st.path });
        }
        Ok(())
    }

    /// Emits a [`OpEvent::Close`] for `path` without handle bookkeeping.
    ///
    /// Trace replay uses this when the recorded trace contains explicit
    /// close operations.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotFound`] if the path does not exist.
    pub fn close_path(&mut self, path: &str) -> Result<()> {
        let p = VPath::new(path)?;
        self.resolve(&p)?;
        self.emit(OpEvent::Close { path: p });
        Ok(())
    }

    /// Emits a [`OpEvent::Fsync`] for `path` (data is always durable in an
    /// in-memory store; the event exists for engines that act on fsync).
    ///
    /// # Errors
    ///
    /// [`VfsError::NotFound`] if the path does not exist.
    pub fn fsync(&mut self, path: &str) -> Result<()> {
        let p = VPath::new(path)?;
        self.resolve(&p)?;
        self.emit(OpEvent::Fsync { path: p });
        Ok(())
    }

    /// Lists the entries of the directory at `path`, sorted by name.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotADirectory`] if `path` is a file.
    pub fn readdir(&self, path: &str) -> Result<Vec<DirEntry>> {
        let p = VPath::new(path)?;
        let id = self.resolve(&p)?;
        match self.inodes.get(&id.0) {
            Some(Node::Dir { children }) => Ok(children
                .iter()
                .map(|(name, cid)| DirEntry {
                    name: name.clone(),
                    kind: match self.inodes.get(&cid.0) {
                        Some(Node::Dir { .. }) => FileKind::Directory,
                        _ => FileKind::File,
                    },
                })
                .collect()),
            _ => Err(VfsError::NotADirectory(p.to_string())),
        }
    }

    /// Recursively lists all regular files under `path`, sorted.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotFound`] if `path` does not exist.
    pub fn walk_files(&self, path: &str) -> Result<Vec<VPath>> {
        let p = VPath::new(path)?;
        let id = self.resolve(&p)?;
        let mut out = Vec::new();
        self.walk_inner(id, &p, &mut out);
        Ok(out)
    }

    fn walk_inner(&self, id: InodeId, at: &VPath, out: &mut Vec<VPath>) {
        match self.inodes.get(&id.0) {
            Some(Node::Dir { children }) => {
                for (name, cid) in children {
                    let child = at.join(name).expect("names are valid components");
                    self.walk_inner(*cid, &child, out);
                }
            }
            Some(Node::File { .. }) => out.push(at.clone()),
            None => {}
        }
    }

    /// Flips one bit of the stored file content *without* emitting an event.
    ///
    /// This models silent disk corruption underneath the sync client, the
    /// fault the paper injects with `debugfs` in §IV-E.
    ///
    /// # Errors
    ///
    /// [`VfsError::InvalidArgument`] if `byte` is out of range.
    pub fn inject_bit_flip(&mut self, path: &str, byte: u64, bit: u8) -> Result<()> {
        let p = VPath::new(path)?;
        let id = self.resolve(&p)?;
        match self.inodes.get_mut(&id.0) {
            Some(Node::File { data, .. }) => {
                let idx = byte as usize;
                if idx >= data.len() {
                    return Err(VfsError::InvalidArgument(format!(
                        "byte {byte} out of range (len {})",
                        data.len()
                    )));
                }
                data[idx] ^= 1 << (bit % 8);
                Ok(())
            }
            _ => Err(VfsError::IsADirectory(p.to_string())),
        }
    }

    /// Overwrites file content *without* emitting an event, extending the
    /// file if needed.
    ///
    /// This models crash inconsistency under ordered journaling: data blocks
    /// changed while metadata (and the interception layer) never saw the
    /// write (§IV-E, footnote 6).
    ///
    /// # Errors
    ///
    /// [`VfsError::NotFound`] / [`VfsError::IsADirectory`] for bad targets.
    pub fn inject_torn_write(&mut self, path: &str, offset: u64, data: &[u8]) -> Result<()> {
        let p = VPath::new(path)?;
        let id = self.resolve(&p)?;
        match self.inodes.get_mut(&id.0) {
            Some(Node::File { data: file, .. }) => {
                let end = offset as usize + data.len();
                if end > file.len() {
                    self.used += (end - file.len()) as u64;
                    file.resize(end, 0);
                }
                file[offset as usize..end].copy_from_slice(data);
                Ok(())
            }
            _ => Err(VfsError::IsADirectory(p.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::RecordingObserver;

    fn fs_with_file(path: &str, content: &[u8]) -> Vfs {
        let mut fs = Vfs::new();
        fs.create(path).unwrap();
        fs.write(path, 0, content).unwrap();
        fs
    }

    #[test]
    fn create_write_read_roundtrip() {
        let mut fs = fs_with_file("/a", b"hello world");
        assert_eq!(fs.read("/a", 0, 5).unwrap(), b"hello");
        assert_eq!(fs.read("/a", 6, 100).unwrap(), b"world");
        assert_eq!(fs.read_all("/a").unwrap(), b"hello world");
        assert_eq!(fs.metadata("/a").unwrap().size, 11);
    }

    #[test]
    fn write_past_eof_zero_fills() {
        let mut fs = fs_with_file("/a", b"ab");
        fs.write("/a", 5, b"z").unwrap();
        assert_eq!(fs.read_all("/a").unwrap(), b"ab\0\0\0z");
    }

    #[test]
    fn write_reports_overwritten_bytes() {
        let mut fs = Vfs::new();
        fs.enable_event_log();
        fs.create("/a").unwrap();
        fs.write("/a", 0, b"abcdef").unwrap();
        fs.write("/a", 2, b"XYZW").unwrap();
        let events = fs.drain_events();
        match &events[2] {
            OpEvent::Write {
                overwritten, data, ..
            } => {
                assert_eq!(&overwritten[..], b"cdef");
                assert_eq!(&data[..], b"XYZW");
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn write_extension_overwritten_is_partial() {
        let mut fs = Vfs::new();
        fs.enable_event_log();
        fs.create("/a").unwrap();
        fs.write("/a", 0, b"abc").unwrap();
        fs.write("/a", 2, b"1234").unwrap();
        let events = fs.drain_events();
        match &events[2] {
            OpEvent::Write { overwritten, .. } => assert_eq!(&overwritten[..], b"c"),
            other => panic!("unexpected event {other:?}"),
        }
        assert_eq!(fs.read_all("/a").unwrap(), b"ab1234");
    }

    #[test]
    fn truncate_shrinks_and_reports_cut() {
        let mut fs = fs_with_file("/a", b"abcdef");
        fs.enable_event_log();
        fs.truncate("/a", 2).unwrap();
        assert_eq!(fs.read_all("/a").unwrap(), b"ab");
        match &fs.drain_events()[0] {
            OpEvent::Truncate { cut, size, .. } => {
                assert_eq!(&cut[..], b"cdef");
                assert_eq!(*size, 2);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn truncate_grows_with_zeros() {
        let mut fs = fs_with_file("/a", b"ab");
        fs.truncate("/a", 4).unwrap();
        assert_eq!(fs.read_all("/a").unwrap(), b"ab\0\0");
    }

    #[test]
    fn rename_moves_and_replaces() {
        let mut fs = fs_with_file("/a", b"new");
        fs.create("/b").unwrap();
        fs.write("/b", 0, b"old").unwrap();
        fs.enable_event_log();
        fs.rename("/a", "/b").unwrap();
        assert!(!fs.exists("/a"));
        assert_eq!(fs.read_all("/b").unwrap(), b"new");
        match &fs.drain_events()[0] {
            OpEvent::Rename { replaced, .. } => {
                assert_eq!(replaced.as_deref(), Some(&b"old"[..]))
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn rename_over_hard_linked_file_reports_old_content() {
        // gedit's pattern: f~ keeps the old inode alive, yet the rename
        // event still carries f's previous content for delta triggering.
        let mut fs = fs_with_file("/f", b"old-content");
        fs.link("/f", "/f~").unwrap();
        fs.create("/tmp0").unwrap();
        fs.write("/tmp0", 0, b"new-content").unwrap();
        fs.enable_event_log();
        fs.rename("/tmp0", "/f").unwrap();
        match &fs.drain_events()[0] {
            OpEvent::Rename { replaced, .. } => {
                assert_eq!(replaced.as_deref(), Some(&b"old-content"[..]))
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert_eq!(fs.read_all("/f~").unwrap(), b"old-content");
        assert_eq!(fs.read_all("/f").unwrap(), b"new-content");
    }

    #[test]
    fn rename_to_self_is_noop() {
        let mut fs = fs_with_file("/a", b"x");
        fs.enable_event_log();
        fs.rename("/a", "/a").unwrap();
        assert!(fs.drain_events().is_empty());
    }

    #[test]
    fn rename_missing_src_fails() {
        let mut fs = Vfs::new();
        assert!(matches!(
            fs.rename("/nope", "/x"),
            Err(VfsError::NotFound(_))
        ));
    }

    #[test]
    fn link_shares_content_and_unlink_keeps_other_name() {
        let mut fs = fs_with_file("/f", b"data");
        fs.link("/f", "/f~").unwrap();
        assert_eq!(fs.metadata("/f").unwrap().nlink, 2);
        fs.write("/f", 0, b"DATA").unwrap();
        assert_eq!(fs.read_all("/f~").unwrap(), b"DATA");
        fs.enable_event_log();
        fs.unlink("/f").unwrap();
        match &fs.drain_events()[0] {
            OpEvent::Unlink { removed, .. } => assert!(removed.is_none()),
            other => panic!("unexpected event {other:?}"),
        }
        assert_eq!(fs.read_all("/f~").unwrap(), b"DATA");
        fs.enable_event_log();
        fs.unlink("/f~").unwrap();
        match &fs.drain_events()[0] {
            OpEvent::Unlink { removed, .. } => {
                assert_eq!(removed.as_deref(), Some(&b"DATA"[..]))
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn directories_nest_and_rmdir_requires_empty() {
        let mut fs = Vfs::new();
        fs.mkdir_all("/a/b/c").unwrap();
        fs.create("/a/b/c/file").unwrap();
        assert!(matches!(fs.rmdir("/a/b/c"), Err(VfsError::NotEmpty(_))));
        fs.unlink("/a/b/c/file").unwrap();
        fs.rmdir("/a/b/c").unwrap();
        assert!(!fs.exists("/a/b/c"));
        assert!(fs.exists("/a/b"));
    }

    #[test]
    fn readdir_sorted_with_kinds() {
        let mut fs = Vfs::new();
        fs.mkdir("/d").unwrap();
        fs.create("/b").unwrap();
        fs.create("/a").unwrap();
        let names: Vec<_> = fs
            .readdir("/")
            .unwrap()
            .into_iter()
            .map(|e| (e.name, e.kind))
            .collect();
        assert_eq!(
            names,
            vec![
                ("a".to_string(), FileKind::File),
                ("b".to_string(), FileKind::File),
                ("d".to_string(), FileKind::Directory)
            ]
        );
    }

    #[test]
    fn walk_files_recurses() {
        let mut fs = Vfs::new();
        fs.mkdir_all("/x/y").unwrap();
        fs.create("/x/y/f1").unwrap();
        fs.create("/x/f2").unwrap();
        let files: Vec<String> = fs
            .walk_files("/")
            .unwrap()
            .into_iter()
            .map(|p| p.to_string())
            .collect();
        assert_eq!(files, vec!["/x/f2".to_string(), "/x/y/f1".to_string()]);
    }

    #[test]
    fn capacity_limit_enforced_and_released() {
        let mut fs = Vfs::with_capacity(10);
        fs.create("/a").unwrap();
        fs.write("/a", 0, b"0123456789").unwrap();
        assert!(matches!(fs.write("/a", 10, b"x"), Err(VfsError::NoSpace)));
        // Overwrites of existing bytes are fine.
        fs.write("/a", 0, b"abcdefghij").unwrap();
        fs.truncate("/a", 4).unwrap();
        fs.write("/a", 4, b"12345").unwrap();
        assert_eq!(fs.bytes_used(), 9);
        fs.unlink("/a").unwrap();
        assert_eq!(fs.bytes_used(), 0);
    }

    #[test]
    fn handles_emit_close_on_last_release() {
        let mut fs = fs_with_file("/a", b"x");
        fs.enable_event_log();
        let h1 = fs.open("/a").unwrap();
        let h2 = fs.open("/a").unwrap();
        fs.close(h1).unwrap();
        assert!(fs.drain_events().is_empty());
        fs.close(h2).unwrap();
        let events = fs.drain_events();
        assert!(matches!(events[0], OpEvent::Close { .. }));
        assert!(matches!(fs.close(h2), Err(VfsError::BadHandle(_))));
    }

    #[test]
    fn observer_sees_all_mutations() {
        let mut fs = Vfs::new();
        fs.set_observer(Box::new(RecordingObserver::new()));
        fs.create("/a").unwrap();
        fs.write("/a", 0, b"abc").unwrap();
        fs.rename("/a", "/b").unwrap();
        fs.unlink("/b").unwrap();
        let obs = fs.take_observer().unwrap();
        // Downcasting through Any is unavailable for plain trait objects, so
        // count through the event log path in a second run instead.
        drop(obs);
        let mut fs = Vfs::new();
        fs.enable_event_log();
        fs.create("/a").unwrap();
        fs.write("/a", 0, b"abc").unwrap();
        fs.rename("/a", "/b").unwrap();
        fs.unlink("/b").unwrap();
        let kinds: Vec<_> = fs.drain_events().iter().map(|e| e.kind()).collect();
        assert_eq!(kinds, vec!["create", "write", "rename", "unlink"]);
    }

    #[test]
    fn bit_flip_corrupts_silently() {
        let mut fs = fs_with_file("/a", b"\x00\x00");
        fs.enable_event_log();
        fs.inject_bit_flip("/a", 1, 0).unwrap();
        assert!(fs.drain_events().is_empty());
        assert_eq!(fs.read_all("/a").unwrap(), b"\x00\x01");
        assert!(fs.inject_bit_flip("/a", 9, 0).is_err());
    }

    #[test]
    fn torn_write_mutates_without_events() {
        let mut fs = fs_with_file("/a", b"aaaa");
        fs.enable_event_log();
        fs.inject_torn_write("/a", 2, b"ZZZZ").unwrap();
        assert!(fs.drain_events().is_empty());
        assert_eq!(fs.read_all("/a").unwrap(), b"aaZZZZ");
        assert_eq!(fs.bytes_used(), 6);
    }

    #[test]
    fn stats_track_bytes() {
        let mut fs = fs_with_file("/a", b"abcdef");
        fs.reset_stats();
        fs.read("/a", 0, 4).unwrap();
        fs.write("/a", 0, b"xy").unwrap();
        let s = fs.stats();
        assert_eq!(s.bytes_read, 4);
        assert_eq!(s.bytes_written, 2);
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
    }

    #[test]
    fn create_in_missing_dir_fails() {
        let mut fs = Vfs::new();
        assert!(matches!(
            fs.create("/no/such/file"),
            Err(VfsError::NotFound(_))
        ));
    }

    #[test]
    fn file_as_directory_component_fails() {
        let mut fs = fs_with_file("/a", b"x");
        assert!(matches!(fs.create("/a/b"), Err(VfsError::NotADirectory(_))));
    }

    #[test]
    fn unlink_directory_fails() {
        let mut fs = Vfs::new();
        fs.mkdir("/d").unwrap();
        assert!(matches!(fs.unlink("/d"), Err(VfsError::IsADirectory(_))));
    }

    #[test]
    fn rename_dir_into_itself_fails() {
        let mut fs = Vfs::new();
        fs.mkdir_all("/a/b").unwrap();
        assert!(fs.rename("/a", "/a/b/c").is_err());
    }
}
