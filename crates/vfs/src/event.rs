use bytes::Bytes;

use crate::VPath;

/// A file operation observed by the interception layer.
///
/// This is the information FUSE hands to LibFuse in the paper's
/// architecture (Fig. 4). Each mutating [`Vfs`](crate::Vfs) call emits
/// exactly one event *after* the operation has been validated and applied.
/// Events carry the written payloads (for NFS-like file RPC) and the
/// overwritten bytes (for physical undo logging), so observers never need
/// to re-read the file system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpEvent {
    /// A regular file was created (empty).
    Create {
        /// The created path.
        path: VPath,
    },
    /// `data` was written to `path` at byte `offset`.
    Write {
        /// The written file.
        path: VPath,
        /// Byte offset of the write.
        offset: u64,
        /// The written bytes.
        data: Bytes,
        /// Previous contents of the overwritten range (shorter than `data`
        /// when the write extends the file). This is the copy-out the
        /// paper's undo log performs before issuing the write (§III-A,
        /// in-place updates that modify a large portion of a file).
        overwritten: Bytes,
    },
    /// `path` was truncated to `size` bytes.
    Truncate {
        /// The truncated file.
        path: VPath,
        /// The new size.
        size: u64,
        /// The bytes that were removed, if the file shrank.
        cut: Bytes,
    },
    /// `src` was atomically renamed to `dst`.
    Rename {
        /// Old path.
        src: VPath,
        /// New path.
        dst: VPath,
        /// Previous content of `dst` when the rename overwrote an existing
        /// file — the "to-be-created file's name already exists" case that
        /// triggers delta encoding in the relation table (paper §III-A).
        /// Moved out of the dying inode, so carrying it is free.
        replaced: Option<Bytes>,
    },
    /// A hard link `dst` was created for the file at `src`.
    Link {
        /// Existing path.
        src: VPath,
        /// The new link.
        dst: VPath,
    },
    /// The link at `path` was removed.
    Unlink {
        /// The removed path.
        path: VPath,
        /// The file content when this removed the *final* link (`Some`
        /// plays the role of the paper's tmp/ preservation area: the
        /// DeltaCFS layer keeps the dying content around briefly so a
        /// delete-then-recreate update can still be delta-encoded).
        /// `None` means other hard links keep the inode alive.
        removed: Option<Bytes>,
    },
    /// A directory was created.
    Mkdir {
        /// The created directory.
        path: VPath,
    },
    /// An empty directory was removed.
    Rmdir {
        /// The removed directory.
        path: VPath,
    },
    /// The last open handle on `path` was closed.
    ///
    /// Sync engines pack the file's write node on this event (§III-B).
    Close {
        /// The closed file.
        path: VPath,
    },
    /// `path` was fsync'ed by the application.
    Fsync {
        /// The synced file.
        path: VPath,
    },
}

impl OpEvent {
    /// The primary path the event concerns (the destination for renames and
    /// links).
    pub fn primary_path(&self) -> &VPath {
        match self {
            OpEvent::Create { path }
            | OpEvent::Truncate { path, .. }
            | OpEvent::Write { path, .. }
            | OpEvent::Unlink { path, .. }
            | OpEvent::Mkdir { path }
            | OpEvent::Rmdir { path }
            | OpEvent::Close { path }
            | OpEvent::Fsync { path } => path,
            OpEvent::Rename { dst, .. } | OpEvent::Link { dst, .. } => dst,
        }
    }

    /// Number of payload bytes carried by the event (written data only).
    pub fn payload_len(&self) -> usize {
        match self {
            OpEvent::Write { data, .. } => data.len(),
            _ => 0,
        }
    }

    /// A short lowercase name for the operation kind, for logs and stats.
    pub fn kind(&self) -> &'static str {
        match self {
            OpEvent::Create { .. } => "create",
            OpEvent::Write { .. } => "write",
            OpEvent::Truncate { .. } => "truncate",
            OpEvent::Rename { .. } => "rename",
            OpEvent::Link { .. } => "link",
            OpEvent::Unlink { .. } => "unlink",
            OpEvent::Mkdir { .. } => "mkdir",
            OpEvent::Rmdir { .. } => "rmdir",
            OpEvent::Close { .. } => "close",
            OpEvent::Fsync { .. } => "fsync",
        }
    }
}

/// The interception hook: implementors receive every mutating operation.
///
/// This is the seam where DeltaCFS (and the baseline sync engines) attach
/// to the file system, mirroring LibFuse's callback table. Observers run
/// synchronously on the calling thread, so an observer that does heavy work
/// directly slows down file operations — exactly the effect Table III of
/// the paper measures.
pub trait OpObserver {
    /// Called once per mutating operation, after it has been applied.
    fn on_op(&mut self, event: &OpEvent);
}

impl<F: FnMut(&OpEvent)> OpObserver for F {
    fn on_op(&mut self, event: &OpEvent) {
        self(event)
    }
}

/// An [`OpObserver`] that stores every event; useful for trace collection
/// and in tests.
#[derive(Debug, Default)]
pub struct RecordingObserver {
    events: Vec<OpEvent>,
}

impl RecordingObserver {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The events observed so far, in order.
    pub fn events(&self) -> &[OpEvent] {
        &self.events
    }

    /// Consumes the recorder and returns the observed events.
    pub fn into_events(self) -> Vec<OpEvent> {
        self.events
    }
}

impl OpObserver for RecordingObserver {
    fn on_op(&mut self, event: &OpEvent) {
        self.events.push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> VPath {
        VPath::new(s).unwrap()
    }

    #[test]
    fn primary_path_points_at_destination() {
        let e = OpEvent::Rename {
            src: p("/a"),
            dst: p("/b"),
            replaced: None,
        };
        assert_eq!(e.primary_path().as_str(), "/b");
        let e = OpEvent::Create { path: p("/c") };
        assert_eq!(e.primary_path().as_str(), "/c");
    }

    #[test]
    fn payload_len_counts_written_bytes_only() {
        let e = OpEvent::Write {
            path: p("/a"),
            offset: 0,
            data: Bytes::from_static(b"xyz"),
            overwritten: Bytes::new(),
        };
        assert_eq!(e.payload_len(), 3);
        assert_eq!(OpEvent::Close { path: p("/a") }.payload_len(), 0);
    }

    #[test]
    fn closures_are_observers() {
        let mut count = 0usize;
        {
            let mut obs = |_: &OpEvent| count += 1;
            obs.on_op(&OpEvent::Create { path: p("/x") });
        }
        assert_eq!(count, 1);
    }

    #[test]
    fn recording_observer_keeps_order() {
        let mut rec = RecordingObserver::new();
        rec.on_op(&OpEvent::Create { path: p("/a") });
        rec.on_op(&OpEvent::Close { path: p("/a") });
        let kinds: Vec<_> = rec.events().iter().map(|e| e.kind()).collect();
        assert_eq!(kinds, vec!["create", "close"]);
    }
}
