//! The client↔cloud wire protocol: versioned incremental updates.
//!
//! DeltaCFS outsources version assignment to clients (paper §III-C): each
//! client stamps sync-queue nodes with `<CliID, VerCnt>` pairs from its own
//! monotonic counter, so no round-trip to the server is needed at enqueue
//! time. Partial order is sufficient in the cloud-sync setting; the cloud
//! only ever compares versions for *equality* against its current version
//! of a file (base-version check), falling back to first-write-wins
//! conflict handling on mismatch.

use std::fmt;

use bytes::Bytes;
use deltacfs_delta::Delta;

/// A cheap, shared, immutable payload buffer: `Arc`'d storage plus an
/// offset/len window, `Bytes`-style.
///
/// Every hop of the sync path used to copy payload bytes (queue node →
/// message → wire → server apply). `Payload` replaces those copies with
/// reference-count bumps: cloning and [`slice`](Payload::slice)-ing share
/// the underlying allocation, so a write's data is materialized exactly
/// once — when the VFS event is intercepted — and then travels by view.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Payload(Bytes);

impl Payload {
    /// An empty payload.
    pub fn new() -> Self {
        Payload(Bytes::new())
    }

    /// Copies `data` into a fresh buffer — the one intentional copy, at
    /// the point bytes enter the sync pipeline.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Payload(Bytes::copy_from_slice(data))
    }

    /// Wraps a static byte slice.
    pub fn from_static(data: &'static [u8]) -> Self {
        Payload(Bytes::from_static(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Zero-copy sub-window: shares storage, adjusts offset/len.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        Payload(self.0.slice(range))
    }

    /// The shared buffer itself (zero-copy view).
    pub fn as_bytes(&self) -> &Bytes {
        &self.0
    }

    /// Copies the contents out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl std::ops::Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Bytes> for Payload {
    fn from(b: Bytes) -> Self {
        Payload(b)
    }
}

impl From<Payload> for Bytes {
    fn from(p: Payload) -> Self {
        p.0
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Payload(Bytes::from(v))
    }
}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

/// Identifier of a sync client (device).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientId(pub u32);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A client-assigned file version: `<CliID, VerCnt>`.
///
/// Versions from different clients are distinct but not totally ordered in
/// any meaningful way — the protocol only compares them for equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Version {
    /// The client that assigned this version.
    pub client: ClientId,
    /// That client's monotonically increasing counter.
    pub counter: u64,
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{},{}>", self.client, self.counter)
    }
}

/// Identifier of one upload group: `<CliID, GroupSeq>`.
///
/// Like file versions, group sequence numbers are client-assigned from a
/// per-client monotonic counter — but they stamp the *group*, not the
/// file, so namespace-only groups (pure renames/mkdirs, which carry no
/// file version) are just as dedupable as content-bearing ones. The
/// server's replay index keys on this pair to recognize retransmitted
/// groups regardless of payload kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId {
    /// The client that uploaded the group.
    pub client: ClientId,
    /// That client's monotonically increasing group counter.
    pub seq: u64,
}

impl GroupId {
    /// The span-context key this group id defines: every chunk frame
    /// already carries the `<CliID, GroupSeq>` pair in its wire header
    /// (upload, forward, and recovery-download directions alike), so
    /// causal spans recorded on either side of a link join the same
    /// tree without any extra bytes on the wire.
    pub fn span_key(&self) -> deltacfs_obs::GroupKey {
        deltacfs_obs::GroupKey {
            client: self.client.0,
            seq: self.seq,
        }
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{},g{}>", self.client, self.seq)
    }
}

/// One intercepted file operation, as shipped by NFS-like file RPC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileOpItem {
    /// Write `data` at `offset`.
    Write {
        /// Byte offset of the write.
        offset: u64,
        /// The written bytes (shared buffer, not a copy).
        data: Payload,
    },
    /// Truncate (or zero-extend) the file to `size` bytes.
    Truncate {
        /// The new file size.
        size: u64,
    },
}

impl FileOpItem {
    /// Payload bytes this op carries on the wire (headers charged
    /// separately).
    pub fn payload_len(&self) -> u64 {
        match self {
            FileOpItem::Write { data, .. } => data.len() as u64,
            FileOpItem::Truncate { .. } => 0,
        }
    }

    /// Applies this op to a file image in memory.
    pub fn apply_to(&self, content: &mut Vec<u8>) {
        match self {
            FileOpItem::Write { offset, data } => {
                let end = *offset as usize + data.len();
                if end > content.len() {
                    content.resize(end, 0);
                }
                content[*offset as usize..end].copy_from_slice(data);
            }
            FileOpItem::Truncate { size } => {
                content.resize(*size as usize, 0);
            }
        }
    }
}

/// The body of an [`UpdateMsg`].
#[derive(Debug, Clone, PartialEq)]
pub enum UpdatePayload {
    /// Create an empty file.
    Create,
    /// Apply intercepted file operations (NFS-like file RPC).
    Ops(Vec<FileOpItem>),
    /// Apply a delta against the cloud's copy of `base_path` (which is the
    /// file itself for in-place updates, or the preserved old version —
    /// e.g. Word's `t0` — for transactional updates, Fig. 5b).
    Delta {
        /// The path whose cloud-side content is the delta base.
        base_path: String,
        /// The reconstruction recipe.
        delta: Delta,
    },
    /// Replace the file content wholesale (initial upload or fallback).
    Full(Payload),
    /// Rename this message's `path` to `to`.
    Rename {
        /// Destination path.
        to: String,
    },
    /// Duplicate this message's `path` as a copy named `to` (hard links
    /// materialize as copies on the cloud).
    Link {
        /// Destination path.
        to: String,
    },
    /// Remove the file.
    Unlink,
    /// Create a directory.
    Mkdir,
    /// Remove a directory.
    Rmdir,
}

/// Fixed per-message control overhead on the wire: path, versions, opcode,
/// framing. The paper notes DeltaCFS uploads slightly more than NFS
/// because of exactly this control information (§IV-C1).
pub const MSG_HEADER_BYTES: u64 = 64;

/// Per-file-op framing inside an [`UpdatePayload::Ops`] payload.
pub const OP_ITEM_HEADER_BYTES: u64 = 16;

/// Bytes one server acknowledgement occupies on the wire — the encoded
/// size of [`wire::WireAck`](crate::wire::WireAck) (magic, ack opcode +
/// padding, group id, outcome tallies). Every simulated ack download
/// charges this constant, so changing the ack header changes traffic
/// stats everywhere at once instead of silently skewing them; a wire
/// test pins the two together.
pub const ACK_WIRE_BYTES: u64 = 32;

/// One versioned incremental update for one file.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateMsg {
    /// The file this update concerns.
    pub path: String,
    /// Version the update was computed against (`None` when the file is
    /// new to the cloud).
    pub base: Option<Version>,
    /// The version this update produces.
    pub version: Option<Version>,
    /// What to do.
    pub payload: UpdatePayload,
    /// Transaction group; messages sharing a `txn` id must be applied
    /// atomically (backindex grouping, paper §III-E).
    pub txn: Option<u64>,
    /// The upload group this message travelled in (`<CliID, GroupSeq>`),
    /// shared by every member of the group. `None` only for synthetic
    /// messages that never cross the client→cloud upload path (full-sync
    /// pushes, anti-entropy repairs, persisted snapshot records).
    pub group: Option<GroupId>,
}

impl UpdateMsg {
    /// Total bytes this message occupies on the wire.
    pub fn wire_size(&self) -> u64 {
        MSG_HEADER_BYTES
            + match &self.payload {
                UpdatePayload::Create
                | UpdatePayload::Unlink
                | UpdatePayload::Mkdir
                | UpdatePayload::Rmdir => 0,
                UpdatePayload::Ops(ops) => ops
                    .iter()
                    .map(|op| OP_ITEM_HEADER_BYTES + op.payload_len())
                    .sum(),
                UpdatePayload::Delta { delta, base_path } => {
                    delta.wire_size() + base_path.len() as u64
                }
                UpdatePayload::Full(data) => data.len() as u64,
                UpdatePayload::Rename { to } | UpdatePayload::Link { to } => to.len() as u64,
            }
    }
}

/// The cloud's verdict on an applied update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// The base version matched; the update is now the latest version.
    Applied,
    /// The base version did not match ("first write wins"): the update was
    /// materialized as a conflict copy at the contained path instead.
    Conflict {
        /// Where the losing version was stored.
        stored_as: String,
    },
    /// The update could not be applied at all (unknown base content); the
    /// client must fall back to a full upload.
    Rejected {
        /// Human-readable reason, for diagnostics.
        reason: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_display_matches_paper_notation() {
        let v = Version {
            client: ClientId(3),
            counter: 17,
        };
        assert_eq!(v.to_string(), "<c3,17>");
    }

    #[test]
    fn group_id_display_names_client_and_sequence() {
        let g = GroupId {
            client: ClientId(2),
            seq: 5,
        };
        assert_eq!(g.to_string(), "<c2,g5>");
    }

    #[test]
    fn op_apply_write_extends_and_overwrites() {
        let mut content = b"abcdef".to_vec();
        FileOpItem::Write {
            offset: 4,
            data: Payload::from_static(b"XYZ"),
        }
        .apply_to(&mut content);
        assert_eq!(content, b"abcdXYZ");
        FileOpItem::Truncate { size: 2 }.apply_to(&mut content);
        assert_eq!(content, b"ab");
        FileOpItem::Truncate { size: 4 }.apply_to(&mut content);
        assert_eq!(content, b"ab\0\0");
    }

    #[test]
    fn wire_size_counts_payload_and_headers() {
        let msg = UpdateMsg {
            path: "/f".into(),
            base: None,
            version: None,
            payload: UpdatePayload::Ops(vec![
                FileOpItem::Write {
                    offset: 0,
                    data: Payload::from_static(b"12345"),
                },
                FileOpItem::Truncate { size: 0 },
            ]),
            txn: None,
            group: None,
        };
        assert_eq!(
            msg.wire_size(),
            MSG_HEADER_BYTES + 2 * OP_ITEM_HEADER_BYTES + 5
        );
        let full = UpdateMsg {
            payload: UpdatePayload::Full(Payload::from_static(b"123")),
            ..msg.clone()
        };
        assert_eq!(full.wire_size(), MSG_HEADER_BYTES + 3);
        let create = UpdateMsg {
            payload: UpdatePayload::Create,
            ..msg
        };
        assert_eq!(create.wire_size(), MSG_HEADER_BYTES);
    }
}
