//! Inline interception for the local-IO micro-benchmarks (paper Table III).
//!
//! Table III measures how much the interception layer slows down the
//! *application's* IO path: filebench throughput under native ext4, a
//! loopback FUSE mount, DeltaCFS, and DeltaCFS with checksums. The work an
//! engine does inside the operation path is what costs throughput, so this
//! observer performs that work for real:
//!
//! * [`InlineMode::FusePassthrough`] — one extra copy of every written
//!   buffer (the user-space bounce a loopback FUSE pays);
//! * [`InlineMode::DeltaCfs`] — the copy plus sync-queue enqueue; when the
//!   bounded queue fills (the paper: "Sync Queue becomes full very
//!   quickly" for Fileserver/Varmail), draining work happens inline,
//!   stalling the writer;
//! * [`InlineMode::DeltaCfsChecksum`] — additionally maintains 4 KB block
//!   checksums in a key-value store on every write.

use std::collections::VecDeque;

use bytes::Bytes;
use deltacfs_delta::{Cost, RollingChecksum};
use deltacfs_kvstore::{KeyValue, MemStore};
use deltacfs_vfs::{OpEvent, OpObserver};

/// Which layer of Table III to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InlineMode {
    /// Loopback FUSE: interception copy only.
    FusePassthrough,
    /// DeltaCFS without checksums: copy + bounded sync queue.
    DeltaCfs,
    /// DeltaCFS with the checksum store enabled.
    DeltaCfsChecksum,
}

/// Default sync-queue capacity before the writer stalls on draining.
const DEFAULT_QUEUE_CAP_BYTES: usize = 32 * 1024 * 1024;

/// An [`OpObserver`] that performs interception work synchronously inside
/// every file operation.
#[derive(Debug)]
pub struct InlineInterceptor {
    mode: InlineMode,
    queue: VecDeque<Bytes>,
    queued_bytes: usize,
    cap_bytes: usize,
    checksums: MemStore,
    block_size: usize,
    cost: Cost,
    drained_bytes: u64,
}

impl InlineInterceptor {
    /// Creates an interceptor in the given mode with default capacity.
    pub fn new(mode: InlineMode) -> Self {
        Self::with_capacity(mode, DEFAULT_QUEUE_CAP_BYTES)
    }

    /// Creates an interceptor with an explicit sync-queue byte capacity.
    pub fn with_capacity(mode: InlineMode, cap_bytes: usize) -> Self {
        InlineInterceptor {
            mode,
            queue: VecDeque::new(),
            queued_bytes: 0,
            cap_bytes,
            checksums: MemStore::new(),
            block_size: 4096,
            cost: Cost::new(),
            drained_bytes: 0,
        }
    }

    /// Work counters accumulated so far.
    pub fn cost(&self) -> Cost {
        self.cost
    }

    /// Bytes drained out of the bounded queue (the simulated uploader's
    /// consumption; the Table III setup drops dequeued data instead of
    /// sending it, matching the paper's methodology).
    pub fn drained_bytes(&self) -> u64 {
        self.drained_bytes
    }

    fn enqueue(&mut self, data: Bytes) {
        self.queued_bytes += data.len();
        self.queue.push_back(data);
        while self.queued_bytes > self.cap_bytes {
            // The queue is full: the writer stalls while the uploader
            // serializes and drops the oldest entries (real memcpy work).
            let entry = self.queue.pop_front().expect("non-empty when over cap");
            self.queued_bytes -= entry.len();
            let serialized = entry.to_vec();
            self.drained_bytes += serialized.len() as u64;
            self.cost.bytes_copied += serialized.len() as u64;
            std::hint::black_box(&serialized);
        }
    }

    fn checksum_blocks(&mut self, path: &str, offset: u64, data: &[u8]) {
        let bs = self.block_size as u64;
        let mut pos = 0usize;
        while pos < data.len() {
            let block_idx = (offset + pos as u64) / bs;
            let block_end = ((block_idx + 1) * bs - offset) as usize;
            let chunk = &data[pos..block_end.min(data.len())];
            let sum = RollingChecksum::new(chunk).digest();
            self.cost.bytes_rolled += chunk.len() as u64;
            let mut key = Vec::with_capacity(path.len() + 9);
            key.extend_from_slice(path.as_bytes());
            key.push(0);
            key.extend_from_slice(&block_idx.to_be_bytes());
            self.checksums.put(&key, &sum.to_le_bytes()).ok();
            pos = block_end.min(data.len());
        }
    }
}

impl OpObserver for InlineInterceptor {
    fn on_op(&mut self, event: &OpEvent) {
        if let OpEvent::Write {
            path, offset, data, ..
        } = event
        {
            // Every mode pays the interception copy.
            let copy = Bytes::copy_from_slice(data);
            self.cost.bytes_copied += copy.len() as u64;
            match self.mode {
                InlineMode::FusePassthrough => {
                    std::hint::black_box(&copy);
                }
                InlineMode::DeltaCfs => {
                    self.enqueue(copy);
                }
                InlineMode::DeltaCfsChecksum => {
                    self.checksum_blocks(path.as_str(), *offset, data);
                    self.enqueue(copy);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deltacfs_vfs::Vfs;

    /// Drives `writes` 1 KB writes through an interceptor (event-log
    /// path, so the concrete interceptor stays inspectable).
    fn run(mode: InlineMode, cap: usize, writes: usize) -> InlineInterceptor {
        let mut it = InlineInterceptor::with_capacity(mode, cap);
        let mut fs = Vfs::new();
        fs.enable_event_log();
        fs.create("/f").unwrap();
        for i in 0..writes {
            fs.write("/f", (i * 1000) as u64, &vec![i as u8; 1000])
                .unwrap();
        }
        for e in fs.drain_events() {
            it.on_op(&e);
        }
        it
    }

    #[test]
    fn fuse_mode_copies_every_write() {
        let it = run(InlineMode::FusePassthrough, 10_000, 5);
        assert_eq!(it.cost().bytes_copied, 5000);
        assert_eq!(it.drained_bytes(), 0);
    }

    #[test]
    fn bounded_queue_drains_when_full() {
        let it = run(InlineMode::DeltaCfs, 2500, 5);
        // 5 KB written through a 2.5 KB queue: at least 2.5 KB drained.
        assert!(it.drained_bytes() >= 2500, "drained {}", it.drained_bytes());
    }

    #[test]
    fn checksum_mode_rolls_blocks() {
        let it = run(InlineMode::DeltaCfsChecksum, 1 << 20, 5);
        assert_eq!(it.cost().bytes_rolled, 5000);
    }

    #[test]
    fn checksum_mode_does_strictly_more_work() {
        let fuse = run(InlineMode::FusePassthrough, 1 << 20, 10);
        let dcfs = run(InlineMode::DeltaCfs, 1 << 20, 10);
        let dcfsc = run(InlineMode::DeltaCfsChecksum, 1 << 20, 10);
        let total = |c: Cost| c.bytes_copied + c.bytes_rolled;
        assert!(total(dcfsc.cost()) > total(dcfs.cost()));
        assert!(total(dcfs.cost()) >= total(fuse.cost()));
    }
}
