//! Binary wire encoding for [`UpdateMsg`]: what actually crosses the
//! client↔cloud link.
//!
//! The evaluation accounts traffic with [`UpdateMsg::wire_size`]; this
//! module provides the real serialization so the accounting is honest
//! (tests assert the encoded size matches the accounted size to within
//! the per-message padding) and so updates can be persisted or shipped
//! over a real transport.
//!
//! Format (little-endian):
//!
//! ```text
//! msg      = magic "DCFS" | u8 opcode | path | opt_version base |
//!            opt_version new | u64 txn_or_0 | opt_group | body
//! path     = u16 len | bytes
//! version  = u8 present | [u32 client | u64 counter]
//! group    = u8 present | [u32 client | u64 seq]
//! body     = per opcode (see below)
//! ```

use bytes::Bytes;
use deltacfs_delta::{Delta, DeltaOp};

use crate::protocol::{ClientId, FileOpItem, GroupId, UpdateMsg, UpdatePayload, Version};

const MAGIC: &[u8; 4] = b"DCFS";

/// Errors produced when decoding a wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended prematurely or framing lengths are inconsistent.
    Truncated,
    /// The magic number or an opcode/tag byte was invalid.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated wire message"),
            WireError::Malformed(what) => write!(f, "malformed wire message: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer {
            buf: Vec::with_capacity(128),
        }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn bytes_short(&mut self, v: &[u8]) {
        debug_assert!(v.len() <= u16::MAX as usize);
        self.u16(v.len() as u16);
        self.buf.extend_from_slice(v);
    }

    fn bytes_long(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    fn version_opt(&mut self, v: Option<Version>) {
        match v {
            Some(v) => {
                self.u8(1);
                self.u32(v.client.0);
                self.u64(v.counter);
            }
            None => self.u8(0),
        }
    }

    fn group_opt(&mut self, g: Option<GroupId>) {
        match g {
            Some(g) => {
                self.u8(1);
                self.u32(g.client.0);
                self.u64(g.seq);
            }
            None => self.u8(0),
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn bytes_short(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u16()? as usize;
        self.take(len)
    }

    fn bytes_long(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u64()? as usize;
        self.take(len)
    }

    fn version_opt(&mut self) -> Result<Option<Version>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(Version {
                client: ClientId(self.u32()?),
                counter: self.u64()?,
            })),
            _ => Err(WireError::Malformed("version tag")),
        }
    }

    fn group_opt(&mut self) -> Result<Option<GroupId>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(GroupId {
                client: ClientId(self.u32()?),
                seq: self.u64()?,
            })),
            _ => Err(WireError::Malformed("group tag")),
        }
    }
}

fn opcode(payload: &UpdatePayload) -> u8 {
    match payload {
        UpdatePayload::Create => 0,
        UpdatePayload::Ops(_) => 1,
        UpdatePayload::Delta { .. } => 2,
        UpdatePayload::Full(_) => 3,
        UpdatePayload::Rename { .. } => 4,
        UpdatePayload::Link { .. } => 5,
        UpdatePayload::Unlink => 6,
        UpdatePayload::Mkdir => 7,
        UpdatePayload::Rmdir => 8,
    }
}

/// Serializes one [`UpdateMsg`] to bytes.
///
/// # Example
///
/// ```
/// use deltacfs_core::{wire, UpdateMsg, UpdatePayload};
///
/// let msg = UpdateMsg {
///     path: "/f".into(),
///     base: None,
///     version: None,
///     payload: UpdatePayload::Mkdir,
///     txn: None,
///     group: None,
/// };
/// let bytes = wire::encode(&msg);
/// assert_eq!(wire::decode(&bytes).unwrap(), msg);
/// ```
pub fn encode(msg: &UpdateMsg) -> Vec<u8> {
    let mut w = Writer::new();
    w.buf.extend_from_slice(MAGIC);
    w.u8(opcode(&msg.payload));
    w.bytes_short(msg.path.as_bytes());
    w.version_opt(msg.base);
    w.version_opt(msg.version);
    w.u64(msg.txn.unwrap_or(0));
    w.group_opt(msg.group);
    match &msg.payload {
        UpdatePayload::Create
        | UpdatePayload::Unlink
        | UpdatePayload::Mkdir
        | UpdatePayload::Rmdir => {}
        UpdatePayload::Ops(ops) => {
            w.u32(ops.len() as u32);
            for op in ops {
                match op {
                    FileOpItem::Write { offset, data } => {
                        w.u8(0);
                        w.u64(*offset);
                        w.bytes_long(data);
                    }
                    FileOpItem::Truncate { size } => {
                        w.u8(1);
                        w.u64(*size);
                    }
                }
            }
        }
        UpdatePayload::Delta { base_path, delta } => {
            w.bytes_short(base_path.as_bytes());
            w.u32(delta.ops().len() as u32);
            for op in delta.ops() {
                match op {
                    DeltaOp::Copy { offset, len } => {
                        w.u8(0);
                        w.u64(*offset);
                        w.u64(*len);
                    }
                    DeltaOp::Literal(b) => {
                        w.u8(1);
                        w.bytes_long(b);
                    }
                }
            }
        }
        UpdatePayload::Full(data) => w.bytes_long(data),
        UpdatePayload::Rename { to } | UpdatePayload::Link { to } => w.bytes_short(to.as_bytes()),
    }
    w.buf
}

/// Deserializes one [`UpdateMsg`] from bytes.
///
/// # Errors
///
/// [`WireError::Truncated`] or [`WireError::Malformed`] on any framing
/// violation; decoding never panics on untrusted input.
pub fn decode(buf: &[u8]) -> Result<UpdateMsg, WireError> {
    let mut r = Reader { buf, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(WireError::Malformed("magic"));
    }
    let opcode = r.u8()?;
    let path = String::from_utf8(r.bytes_short()?.to_vec())
        .map_err(|_| WireError::Malformed("path utf-8"))?;
    let base = r.version_opt()?;
    let version = r.version_opt()?;
    let txn = match r.u64()? {
        0 => None,
        t => Some(t),
    };
    let group = r.group_opt()?;
    let payload = match opcode {
        0 => UpdatePayload::Create,
        1 => {
            let count = r.u32()? as usize;
            let mut ops = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                match r.u8()? {
                    0 => {
                        let offset = r.u64()?;
                        let data = Bytes::copy_from_slice(r.bytes_long()?);
                        ops.push(FileOpItem::Write { offset, data });
                    }
                    1 => ops.push(FileOpItem::Truncate { size: r.u64()? }),
                    _ => return Err(WireError::Malformed("op tag")),
                }
            }
            UpdatePayload::Ops(ops)
        }
        2 => {
            let base_path = String::from_utf8(r.bytes_short()?.to_vec())
                .map_err(|_| WireError::Malformed("base path utf-8"))?;
            let count = r.u32()? as usize;
            let mut ops = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                match r.u8()? {
                    0 => ops.push(DeltaOp::Copy {
                        offset: r.u64()?,
                        len: r.u64()?,
                    }),
                    1 => ops.push(DeltaOp::Literal(Bytes::copy_from_slice(r.bytes_long()?))),
                    _ => return Err(WireError::Malformed("delta op tag")),
                }
            }
            UpdatePayload::Delta {
                base_path,
                delta: Delta::from_ops(ops),
            }
        }
        3 => UpdatePayload::Full(Bytes::copy_from_slice(r.bytes_long()?)),
        4 => UpdatePayload::Rename {
            to: String::from_utf8(r.bytes_short()?.to_vec())
                .map_err(|_| WireError::Malformed("rename target utf-8"))?,
        },
        5 => UpdatePayload::Link {
            to: String::from_utf8(r.bytes_short()?.to_vec())
                .map_err(|_| WireError::Malformed("link target utf-8"))?,
        },
        6 => UpdatePayload::Unlink,
        7 => UpdatePayload::Mkdir,
        8 => UpdatePayload::Rmdir,
        _ => return Err(WireError::Malformed("opcode")),
    };
    if r.pos != buf.len() {
        return Err(WireError::Malformed("trailing bytes"));
    }
    Ok(UpdateMsg {
        path,
        base,
        version,
        payload,
        txn,
        group,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(c: u32, n: u64) -> Version {
        Version {
            client: ClientId(c),
            counter: n,
        }
    }

    fn g(c: u32, n: u64) -> GroupId {
        GroupId {
            client: ClientId(c),
            seq: n,
        }
    }

    fn sample_msgs() -> Vec<UpdateMsg> {
        vec![
            UpdateMsg {
                path: "/a".into(),
                base: None,
                version: Some(v(1, 1)),
                payload: UpdatePayload::Create,
                group: Some(g(1, 1)),
                txn: None,
            },
            UpdateMsg {
                path: "/b/c".into(),
                base: Some(v(1, 1)),
                version: Some(v(1, 2)),
                payload: UpdatePayload::Ops(vec![
                    FileOpItem::Write {
                        offset: 42,
                        data: Bytes::from_static(b"payload"),
                    },
                    FileOpItem::Truncate { size: 10 },
                ]),
                group: Some(g(1, 2)),
                txn: Some(7),
            },
            UpdateMsg {
                path: "/f".into(),
                base: Some(v(2, 9)),
                version: Some(v(1, 3)),
                payload: UpdatePayload::Delta {
                    base_path: "/t0".into(),
                    delta: Delta::from_ops(vec![
                        DeltaOp::Copy { offset: 0, len: 99 },
                        DeltaOp::Literal(Bytes::from_static(b"tail")),
                    ]),
                },
                group: None,
                txn: None,
            },
            UpdateMsg {
                path: "/full".into(),
                base: None,
                version: Some(v(1, 4)),
                payload: UpdatePayload::Full(Bytes::from_static(b"whole file")),
                group: Some(g(1, 3)),
                txn: None,
            },
            UpdateMsg {
                path: "/old".into(),
                base: None,
                version: None,
                payload: UpdatePayload::Rename { to: "/new".into() },
                group: Some(g(2, 7)),
                txn: None,
            },
            UpdateMsg {
                path: "/src".into(),
                base: None,
                version: None,
                payload: UpdatePayload::Link { to: "/dst".into() },
                group: None,
                txn: None,
            },
            UpdateMsg {
                path: "/gone".into(),
                base: Some(v(3, 3)),
                version: None,
                payload: UpdatePayload::Unlink,
                group: Some(g(3, 1)),
                txn: Some(2),
            },
            UpdateMsg {
                path: "/dir".into(),
                base: None,
                version: None,
                payload: UpdatePayload::Mkdir,
                group: None,
                txn: None,
            },
            UpdateMsg {
                path: "/dir".into(),
                base: None,
                version: None,
                payload: UpdatePayload::Rmdir,
                group: Some(g(1, 4)),
                txn: None,
            },
        ]
    }

    #[test]
    fn every_payload_kind_roundtrips() {
        for msg in sample_msgs() {
            let encoded = encode(&msg);
            let decoded = decode(&encoded).expect("decode");
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn encoded_size_tracks_accounted_size() {
        // The accounting model (wire_size) must stay within the real
        // encoded size plus the fixed header allowance.
        for msg in sample_msgs() {
            let encoded_len = encode(&msg).len() as u64;
            let accounted = msg.wire_size();
            assert!(
                encoded_len <= accounted + 64,
                "{msg:?}: encoded {encoded_len} vs accounted {accounted}"
            );
        }
    }

    #[test]
    fn truncated_inputs_error_cleanly() {
        let full = encode(&sample_msgs()[2]);
        for cut in 0..full.len() {
            assert!(
                decode(&full[..cut]).is_err(),
                "decode of {cut}-byte prefix should fail"
            );
        }
    }

    #[test]
    fn corrupted_tags_are_rejected() {
        let mut buf = encode(&sample_msgs()[0]);
        buf[4] = 0xFF; // opcode
        assert!(matches!(decode(&buf), Err(WireError::Malformed(_))));
        let buf = b"XXXX".to_vec();
        assert!(decode(&buf).is_err());
    }

    #[test]
    fn corrupted_group_tag_is_rejected() {
        // Header layout for sample 0: magic(4) opcode(1) path(2+2)
        // base(1) version(13) txn(8) — the group tag sits at offset 31.
        let mut buf = encode(&sample_msgs()[0]);
        buf[31] = 0xFF;
        assert_eq!(decode(&buf), Err(WireError::Malformed("group tag")));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut buf = encode(&sample_msgs()[0]);
        buf.push(0);
        assert_eq!(decode(&buf), Err(WireError::Malformed("trailing bytes")));
    }
}
