//! Binary wire encoding for [`UpdateMsg`]: what actually crosses the
//! client↔cloud link.
//!
//! The evaluation accounts traffic with [`UpdateMsg::wire_size`]; this
//! module provides the real serialization so the accounting is honest
//! (tests assert the encoded size matches the accounted size to within
//! the per-message padding) and so updates can be persisted or shipped
//! over a real transport.
//!
//! Three encode/decode shapes share one format:
//!
//! * [`encode_into`] serializes into a caller-owned scratch buffer so a
//!   sender looping over messages reuses one allocation; [`encode`] is
//!   the convenience wrapper that allocates.
//! * [`decode_shared`] decodes from a shared [`Bytes`] buffer and
//!   recovers every payload (`Full` bodies, `Write` data, delta
//!   literals) as a zero-copy view into it via `slice_ref`; [`decode`]
//!   wraps it for plain slices (one copy into a fresh buffer).
//! * [`encode_vectored`] performs scatter-gather framing: control bytes
//!   land in the scratch buffer while payloads stay as shared
//!   [`Payload`] segments, so large bodies are never memcpy'd into the
//!   frame at all. Concatenating the segments reproduces [`encode`]'s
//!   output byte for byte.
//!
//! Format (little-endian):
//!
//! ```text
//! msg      = magic "DCFS" | u8 opcode | path | opt_version base |
//!            opt_version new | u64 txn_or_0 | opt_group | body
//! path     = u16 len | bytes
//! version  = u8 present | [u32 client | u64 counter]
//! group    = u8 present | [u32 client | u64 seq]
//! body     = per opcode; op lists (Ops, Delta) are streams of tagged
//!            ops closed by an 0xFF end marker, so a streaming sender
//!            can emit the header before it knows the op count
//! ```

use bytes::Bytes;
use deltacfs_delta::{Delta, DeltaOp};

use crate::protocol::{ClientId, FileOpItem, GroupId, Payload, UpdateMsg, UpdatePayload, Version};

const MAGIC: &[u8; 4] = b"DCFS";

/// Terminator tag closing an op stream (`Ops` and `Delta` bodies).
pub(crate) const OPS_END: u8 = 0xFF;

/// Errors produced when decoding a wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended prematurely or framing lengths are inconsistent.
    Truncated,
    /// The magic number or an opcode/tag byte was invalid.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated wire message"),
            WireError::Malformed(what) => write!(f, "malformed wire message: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

struct Writer<'a> {
    buf: &'a mut Vec<u8>,
}

impl Writer<'_> {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn bytes_short(&mut self, v: &[u8]) {
        debug_assert!(v.len() <= u16::MAX as usize);
        self.u16(v.len() as u16);
        self.buf.extend_from_slice(v);
    }

    fn bytes_long(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    fn version_opt(&mut self, v: Option<Version>) {
        match v {
            Some(v) => {
                self.u8(1);
                self.u32(v.client.0);
                self.u64(v.counter);
            }
            None => self.u8(0),
        }
    }

    /// The `<CliID, GroupSeq>` group header. Besides keying the
    /// server's replay index and chunk staging, this doubles as the
    /// *span context* of the causal profiler: every side that handles
    /// the frame — codec, link, server stage/apply, forward fan-out —
    /// derives its [`GroupKey`](deltacfs_obs::GroupKey) from this
    /// header via [`GroupId::span_key`], so spans recorded on both
    /// sides of the wire join one per-group trace tree with zero extra
    /// bytes on the wire.
    fn group_opt(&mut self, g: Option<GroupId>) {
        match g {
            Some(g) => {
                self.u8(1);
                self.u32(g.client.0);
                self.u64(g.seq);
            }
            None => self.u8(0),
        }
    }

    /// Everything up to (not including) the opcode-specific body.
    fn header(&mut self, msg: &UpdateMsg) {
        self.buf.extend_from_slice(MAGIC);
        self.u8(opcode(&msg.payload));
        self.bytes_short(msg.path.as_bytes());
        self.version_opt(msg.base);
        self.version_opt(msg.version);
        self.u64(msg.txn.unwrap_or(0));
        self.group_opt(msg.group);
    }

    fn delta_op(&mut self, op: &DeltaOp) {
        match op {
            DeltaOp::Copy { offset, len } => {
                self.u8(0);
                self.u64(*offset);
                self.u64(*len);
            }
            DeltaOp::Literal(b) => {
                self.u8(1);
                self.bytes_long(b);
            }
        }
    }

    fn file_op(&mut self, op: &FileOpItem) {
        match op {
            FileOpItem::Write { offset, data } => {
                self.u8(0);
                self.u64(*offset);
                self.bytes_long(data);
            }
            FileOpItem::Truncate { size } => {
                self.u8(1);
                self.u64(*size);
            }
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn bytes_short(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u16()? as usize;
        self.take(len)
    }

    fn bytes_long(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u64()? as usize;
        self.take(len)
    }

    fn version_opt(&mut self) -> Result<Option<Version>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(Version {
                client: ClientId(self.u32()?),
                counter: self.u64()?,
            })),
            _ => Err(WireError::Malformed("version tag")),
        }
    }

    fn group_opt(&mut self) -> Result<Option<GroupId>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(GroupId {
                client: ClientId(self.u32()?),
                seq: self.u64()?,
            })),
            _ => Err(WireError::Malformed("group tag")),
        }
    }
}

fn opcode(payload: &UpdatePayload) -> u8 {
    match payload {
        UpdatePayload::Create => 0,
        UpdatePayload::Ops(_) => 1,
        UpdatePayload::Delta { .. } => 2,
        UpdatePayload::Full(_) => 3,
        UpdatePayload::Rename { .. } => 4,
        UpdatePayload::Link { .. } => 5,
        UpdatePayload::Unlink => 6,
        UpdatePayload::Mkdir => 7,
        UpdatePayload::Rmdir => 8,
    }
}

/// Serializes one [`UpdateMsg`] to bytes.
///
/// # Example
///
/// ```
/// use deltacfs_core::{wire, UpdateMsg, UpdatePayload};
///
/// let msg = UpdateMsg {
///     path: "/f".into(),
///     base: None,
///     version: None,
///     payload: UpdatePayload::Mkdir,
///     txn: None,
///     group: None,
/// };
/// let bytes = wire::encode(&msg);
/// assert_eq!(wire::decode(&bytes).unwrap(), msg);
/// ```
pub fn encode(msg: &UpdateMsg) -> Vec<u8> {
    let mut buf = Vec::with_capacity(128);
    encode_into(&mut buf, msg);
    buf
}

/// Serializes one [`UpdateMsg`] into `buf`, clearing it first.
///
/// The buffer's allocation is reused across calls, so a sender encoding
/// a stream of messages touches the allocator only when a message
/// outgrows every previous one.
pub fn encode_into(buf: &mut Vec<u8>, msg: &UpdateMsg) {
    buf.clear();
    let mut w = Writer { buf };
    w.header(msg);
    match &msg.payload {
        UpdatePayload::Create
        | UpdatePayload::Unlink
        | UpdatePayload::Mkdir
        | UpdatePayload::Rmdir => {}
        UpdatePayload::Ops(ops) => {
            for op in ops {
                w.file_op(op);
            }
            w.u8(OPS_END);
        }
        UpdatePayload::Delta { base_path, delta } => {
            w.bytes_short(base_path.as_bytes());
            for op in delta.ops() {
                w.delta_op(op);
            }
            w.u8(OPS_END);
        }
        UpdatePayload::Full(data) => w.bytes_long(data),
        UpdatePayload::Rename { to } | UpdatePayload::Link { to } => w.bytes_short(to.as_bytes()),
    }
}

/// One segment of a scatter-gather [`WireFrame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameSeg {
    /// A range of control bytes inside the caller's scratch buffer.
    Scratch(std::ops::Range<usize>),
    /// A shared payload transmitted as-is — no copy into the frame.
    Shared(Payload),
}

/// A scatter-gather encoded message: interleaved scratch-buffer ranges
/// and shared payload views whose concatenation equals [`encode`]'s
/// output for the same message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFrame {
    /// The segments, in wire order.
    pub segs: Vec<FrameSeg>,
}

impl WireFrame {
    /// Total bytes the frame occupies on the wire.
    pub fn wire_len(&self, scratch: &[u8]) -> usize {
        self.segs
            .iter()
            .map(|seg| match seg {
                FrameSeg::Scratch(r) => {
                    debug_assert!(r.end <= scratch.len());
                    r.len()
                }
                FrameSeg::Shared(p) => p.len(),
            })
            .sum()
    }

    /// Materializes the frame into contiguous bytes (the receiver-side
    /// "NIC landing" copy; senders never need this).
    pub fn assemble(&self, scratch: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len(scratch));
        for seg in &self.segs {
            match seg {
                FrameSeg::Scratch(r) => out.extend_from_slice(&scratch[r.clone()]),
                FrameSeg::Shared(p) => out.extend_from_slice(p),
            }
        }
        out
    }
}

/// Tracks the boundary between control bytes (appended to scratch) and
/// shared payload segments while building a [`WireFrame`].
struct SegWriter<'a> {
    scratch: &'a mut Vec<u8>,
    segs: Vec<FrameSeg>,
    cut: usize,
}

impl SegWriter<'_> {
    fn shared(&mut self, payload: Payload) {
        let here = self.scratch.len();
        if here > self.cut {
            self.segs.push(FrameSeg::Scratch(self.cut..here));
        }
        self.segs.push(FrameSeg::Shared(payload));
        self.cut = here;
    }

    fn finish(mut self) -> WireFrame {
        let here = self.scratch.len();
        if here > self.cut {
            self.segs.push(FrameSeg::Scratch(self.cut..here));
        }
        WireFrame { segs: self.segs }
    }
}

/// Scatter-gather serialization: control bytes are appended to
/// `scratch` (which is cleared first), payload bodies stay as shared
/// [`Payload`] segments.
///
/// Concatenating the returned segments (see [`WireFrame::assemble`])
/// yields exactly [`encode`]`(msg)`, but the sender never copies payload
/// bytes — a `Full` body or a `Write`'s data travels as an `Arc` bump.
pub fn encode_vectored(msg: &UpdateMsg, scratch: &mut Vec<u8>) -> WireFrame {
    scratch.clear();
    let mut sw = SegWriter {
        scratch,
        segs: Vec::new(),
        cut: 0,
    };
    {
        let mut w = Writer { buf: sw.scratch };
        w.header(msg);
    }
    match &msg.payload {
        UpdatePayload::Create
        | UpdatePayload::Unlink
        | UpdatePayload::Mkdir
        | UpdatePayload::Rmdir => {}
        UpdatePayload::Ops(ops) => {
            for op in ops {
                let mut w = Writer { buf: sw.scratch };
                match op {
                    FileOpItem::Write { offset, data } => {
                        w.u8(0);
                        w.u64(*offset);
                        w.u64(data.len() as u64);
                        sw.shared(data.clone());
                    }
                    FileOpItem::Truncate { size } => {
                        w.u8(1);
                        w.u64(*size);
                    }
                }
            }
            Writer { buf: sw.scratch }.u8(OPS_END);
        }
        UpdatePayload::Delta { base_path, delta } => {
            Writer { buf: sw.scratch }.bytes_short(base_path.as_bytes());
            for op in delta.ops() {
                let mut w = Writer { buf: sw.scratch };
                match op {
                    DeltaOp::Copy { offset, len } => {
                        w.u8(0);
                        w.u64(*offset);
                        w.u64(*len);
                    }
                    DeltaOp::Literal(b) => {
                        w.u8(1);
                        w.u64(b.len() as u64);
                        sw.shared(Payload::from(b.clone()));
                    }
                }
            }
            Writer { buf: sw.scratch }.u8(OPS_END);
        }
        UpdatePayload::Full(data) => {
            Writer { buf: sw.scratch }.u64(data.len() as u64);
            sw.shared(data.clone());
        }
        UpdatePayload::Rename { to } | UpdatePayload::Link { to } => {
            Writer { buf: sw.scratch }.bytes_short(to.as_bytes());
        }
    }
    sw.finish()
}

/// Deserializes one [`UpdateMsg`] from bytes (copies payloads).
///
/// # Errors
///
/// [`WireError::Truncated`] or [`WireError::Malformed`] on any framing
/// violation; decoding never panics on untrusted input.
pub fn decode(buf: &[u8]) -> Result<UpdateMsg, WireError> {
    decode_shared(&Bytes::copy_from_slice(buf))
}

/// Deserializes one [`UpdateMsg`] from a shared buffer, recovering every
/// payload (`Full` bodies, `Write` data, delta literals) as a zero-copy
/// view into `buf` — the receiver holds exactly one allocation per
/// message no matter how many payload-bearing ops it carries.
///
/// # Errors
///
/// Same failure modes as [`decode`].
pub fn decode_shared(buf: &Bytes) -> Result<UpdateMsg, WireError> {
    let mut r = Reader { buf, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(WireError::Malformed("magic"));
    }
    let opcode = r.u8()?;
    let path = String::from_utf8(r.bytes_short()?.to_vec())
        .map_err(|_| WireError::Malformed("path utf-8"))?;
    let base = r.version_opt()?;
    let version = r.version_opt()?;
    let txn = match r.u64()? {
        0 => None,
        t => Some(t),
    };
    let group = r.group_opt()?;
    let payload = match opcode {
        0 => UpdatePayload::Create,
        1 => {
            let mut ops = Vec::new();
            loop {
                match r.u8()? {
                    0 => {
                        let offset = r.u64()?;
                        let data = Payload::from(buf.slice_ref(r.bytes_long()?));
                        ops.push(FileOpItem::Write { offset, data });
                    }
                    1 => ops.push(FileOpItem::Truncate { size: r.u64()? }),
                    OPS_END => break,
                    _ => return Err(WireError::Malformed("op tag")),
                }
            }
            UpdatePayload::Ops(ops)
        }
        2 => {
            let base_path = String::from_utf8(r.bytes_short()?.to_vec())
                .map_err(|_| WireError::Malformed("base path utf-8"))?;
            let mut ops = Vec::new();
            loop {
                match r.u8()? {
                    0 => ops.push(DeltaOp::Copy {
                        offset: r.u64()?,
                        len: r.u64()?,
                    }),
                    1 => ops.push(DeltaOp::Literal(buf.slice_ref(r.bytes_long()?))),
                    OPS_END => break,
                    _ => return Err(WireError::Malformed("delta op tag")),
                }
            }
            UpdatePayload::Delta {
                base_path,
                delta: Delta::from_ops(ops),
            }
        }
        3 => UpdatePayload::Full(Payload::from(buf.slice_ref(r.bytes_long()?))),
        4 => UpdatePayload::Rename {
            to: String::from_utf8(r.bytes_short()?.to_vec())
                .map_err(|_| WireError::Malformed("rename target utf-8"))?,
        },
        5 => UpdatePayload::Link {
            to: String::from_utf8(r.bytes_short()?.to_vec())
                .map_err(|_| WireError::Malformed("link target utf-8"))?,
        },
        6 => UpdatePayload::Unlink,
        7 => UpdatePayload::Mkdir,
        8 => UpdatePayload::Rmdir,
        _ => return Err(WireError::Malformed("opcode")),
    };
    if r.pos != buf.len() {
        return Err(WireError::Malformed("trailing bytes"));
    }
    Ok(UpdateMsg {
        path,
        base,
        version,
        payload,
        txn,
        group,
    })
}

/// Per-frame codec tag: how a chunk frame's bytes are encoded on the
/// wire.
///
/// Raw frames carry **no** tag — they are byte-identical to the
/// pre-codec wire format, so a stream that never compresses is
/// indistinguishable from one produced before the codec existed, and
/// incompressible traffic pays zero overhead. Only compressed frames
/// wrap their bytes in a [`encode_codec_envelope`] envelope; the tag
/// travels out-of-band on the frame header
/// (`ChunkFrame::codec`), the same way `last_in_msg`/`last_in_group`
/// do.
///
/// [`ChunkFrame::codec`]: crate::pipeline::ChunkFrame
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Codec {
    /// Untagged frame: pieces are the message bytes themselves.
    #[default]
    Raw,
    /// LZ77-compressed envelope (`tag | varint raw_len | compressed`).
    Lz77 {
        /// Decompressed length — doubles as the receiver's hard
        /// decompression cap, so a corrupt envelope cannot balloon
        /// memory.
        raw_len: u64,
    },
}

/// Envelope tag byte for an LZ77-compressed chunk frame.
pub const CODEC_LZ77: u8 = 0x01;

fn put_uvarint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

fn get_uvarint(buf: &[u8]) -> Option<(u64, usize)> {
    let mut v = 0u64;
    let mut shift = 0u32;
    for (i, &b) in buf.iter().enumerate() {
        if shift == 63 && b & 0x7e != 0 {
            return None; // bits past the 64th
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some((v, i + 1));
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
    None
}

/// Builds the compressed-frame envelope:
/// `CODEC_LZ77 | varint raw_len | compressed bytes`.
///
/// The envelope is what crosses the wire for a compressed frame; the
/// sender only ships it when it is strictly smaller than the raw frame,
/// so raw traffic is never inflated by the tag.
pub fn encode_codec_envelope(raw_len: u64, compressed: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(compressed.len() + 11);
    buf.push(CODEC_LZ77);
    put_uvarint(&mut buf, raw_len);
    buf.extend_from_slice(compressed);
    buf
}

/// Splits a compressed-frame envelope into its declared raw length and
/// the compressed body.
///
/// # Errors
///
/// [`WireError::Malformed`] on a wrong tag or an unterminated /
/// overlong length varint; never panics on untrusted input.
pub fn decode_codec_envelope(buf: &[u8]) -> Result<(u64, &[u8]), WireError> {
    if buf.first() != Some(&CODEC_LZ77) {
        return Err(WireError::Malformed("codec envelope tag"));
    }
    let rest = &buf[1..];
    let (raw_len, used) =
        get_uvarint(rest).ok_or(WireError::Malformed("codec envelope length"))?;
    Ok((raw_len, &rest[used..]))
}

/// Opcode tag distinguishing an acknowledgement frame from update
/// messages (which use the low opcode range).
const ACK_OPCODE: u8 = 0x40;

/// The server's per-group acknowledgement: which group it settles and
/// the outcome tallies the client uses for conflict surfacing.
///
/// Every simulated ack download charges
/// [`ACK_WIRE_BYTES`](crate::protocol::ACK_WIRE_BYTES) — the encoded
/// size of this frame — so the traffic accounting tracks the real
/// header, not a magic number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireAck {
    /// The upload group being acknowledged.
    pub group: GroupId,
    /// Messages applied cleanly.
    pub applied: u32,
    /// Messages that produced a conflict copy.
    pub conflicts: u32,
    /// Messages rejected outright.
    pub rejected: u32,
}

/// Serializes one acknowledgement frame.
///
/// ```text
/// ack = magic "DCFS" | u8 ACK_OPCODE | u8[3] reserved |
///       u32 client | u64 group_seq |
///       u32 applied | u32 conflicts | u32 rejected
/// ```
pub fn encode_ack(ack: &WireAck) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32);
    let mut w = Writer { buf: &mut buf };
    w.buf.extend_from_slice(MAGIC);
    w.u8(ACK_OPCODE);
    w.buf.extend_from_slice(&[0u8; 3]);
    w.u32(ack.group.client.0);
    w.u64(ack.group.seq);
    w.u32(ack.applied);
    w.u32(ack.conflicts);
    w.u32(ack.rejected);
    buf
}

/// Deserializes one acknowledgement frame.
///
/// # Errors
///
/// [`WireError::Truncated`] or [`WireError::Malformed`] on any framing
/// violation.
pub fn decode_ack(buf: &[u8]) -> Result<WireAck, WireError> {
    let shared = Bytes::copy_from_slice(buf);
    let mut r = Reader {
        buf: &shared,
        pos: 0,
    };
    if r.take(4)? != MAGIC {
        return Err(WireError::Malformed("magic"));
    }
    if r.u8()? != ACK_OPCODE {
        return Err(WireError::Malformed("ack opcode"));
    }
    if r.take(3)? != [0u8; 3] {
        return Err(WireError::Malformed("ack reserved"));
    }
    let client = ClientId(r.u32()?);
    let seq = r.u64()?;
    let ack = WireAck {
        group: GroupId { client, seq },
        applied: r.u32()?,
        conflicts: r.u32()?,
        rejected: r.u32()?,
    };
    if r.pos != buf.len() {
        return Err(WireError::Malformed("trailing bytes"));
    }
    Ok(ack)
}

/// Appends the streaming prefix of a Delta-payload message to `buf`:
/// the full header plus the body's `base_path`, i.e. everything before
/// the op stream. Append tagged ops with [`append_delta_ops`] and close
/// with [`finish_op_stream`]; the concatenation decodes like a
/// materialized Delta message (the receiver's `Delta::from_ops`
/// re-merges ops split at chunk boundaries).
pub(crate) fn begin_delta_stream(buf: &mut Vec<u8>, msg: &UpdateMsg, base_path: &str) {
    let mut w = Writer { buf };
    w.header(msg);
    w.bytes_short(base_path.as_bytes());
}

/// Appends tagged delta ops (no terminator) to a streamed message body.
pub(crate) fn append_delta_ops(buf: &mut Vec<u8>, ops: &[DeltaOp]) {
    let mut w = Writer { buf };
    for op in ops {
        w.delta_op(op);
    }
}

/// Closes a streamed op stream with the end marker.
pub(crate) fn finish_op_stream(buf: &mut Vec<u8>) {
    buf.push(OPS_END);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A frame that is garbage at every framing layer: wrong magic for the
    /// message decoder, wrong codec tag for the envelope decoder, and too
    /// short for either header. Shared by the frame- and envelope-rejection
    /// tests so they provably exercise the same hostile input.
    const MALFORMED_FRAME: &[u8] = &[0xDE, 0xAD, 0xBE, 0xEF];

    fn v(c: u32, n: u64) -> Version {
        Version {
            client: ClientId(c),
            counter: n,
        }
    }

    fn g(c: u32, n: u64) -> GroupId {
        GroupId {
            client: ClientId(c),
            seq: n,
        }
    }

    #[test]
    fn ack_frame_roundtrips_and_matches_accounted_size() {
        let ack = WireAck {
            group: g(7, 123_456),
            applied: 3,
            conflicts: 1,
            rejected: 0,
        };
        let buf = encode_ack(&ack);
        assert_eq!(
            buf.len() as u64,
            crate::protocol::ACK_WIRE_BYTES,
            "ACK_WIRE_BYTES must track the real ack header"
        );
        assert_eq!(decode_ack(&buf), Ok(ack));
        // Framing violations are rejected, not misread.
        assert!(decode_ack(&buf[..buf.len() - 1]).is_err());
        let mut wrong = buf.clone();
        wrong[4] = 0x41;
        assert!(decode_ack(&wrong).is_err());
    }

    fn sample_msgs() -> Vec<UpdateMsg> {
        vec![
            UpdateMsg {
                path: "/a".into(),
                base: None,
                version: Some(v(1, 1)),
                payload: UpdatePayload::Create,
                group: Some(g(1, 1)),
                txn: None,
            },
            UpdateMsg {
                path: "/b/c".into(),
                base: Some(v(1, 1)),
                version: Some(v(1, 2)),
                payload: UpdatePayload::Ops(vec![
                    FileOpItem::Write {
                        offset: 42,
                        data: Payload::from_static(b"payload"),
                    },
                    FileOpItem::Truncate { size: 10 },
                ]),
                group: Some(g(1, 2)),
                txn: Some(7),
            },
            UpdateMsg {
                path: "/f".into(),
                base: Some(v(2, 9)),
                version: Some(v(1, 3)),
                payload: UpdatePayload::Delta {
                    base_path: "/t0".into(),
                    delta: Delta::from_ops(vec![
                        DeltaOp::Copy { offset: 0, len: 99 },
                        DeltaOp::Literal(Bytes::from_static(b"tail")),
                    ]),
                },
                group: None,
                txn: None,
            },
            UpdateMsg {
                path: "/full".into(),
                base: None,
                version: Some(v(1, 4)),
                payload: UpdatePayload::Full(Payload::from_static(b"whole file")),
                group: Some(g(1, 3)),
                txn: None,
            },
            UpdateMsg {
                path: "/old".into(),
                base: None,
                version: None,
                payload: UpdatePayload::Rename { to: "/new".into() },
                group: Some(g(2, 7)),
                txn: None,
            },
            UpdateMsg {
                path: "/src".into(),
                base: None,
                version: None,
                payload: UpdatePayload::Link { to: "/dst".into() },
                group: None,
                txn: None,
            },
            UpdateMsg {
                path: "/gone".into(),
                base: Some(v(3, 3)),
                version: None,
                payload: UpdatePayload::Unlink,
                group: Some(g(3, 1)),
                txn: Some(2),
            },
            UpdateMsg {
                path: "/dir".into(),
                base: None,
                version: None,
                payload: UpdatePayload::Mkdir,
                group: None,
                txn: None,
            },
            UpdateMsg {
                path: "/dir".into(),
                base: None,
                version: None,
                payload: UpdatePayload::Rmdir,
                group: Some(g(1, 4)),
                txn: None,
            },
        ]
    }

    #[test]
    fn every_payload_kind_roundtrips() {
        for msg in sample_msgs() {
            let encoded = encode(&msg);
            let decoded = decode(&encoded).expect("decode");
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn group_header_carries_the_span_context_across_the_wire() {
        // The receiving side must derive the exact same profiler group
        // key the sender stamped — the span context rides the existing
        // `<CliID, GroupSeq>` header, no extra bytes.
        for msg in sample_msgs() {
            let decoded = decode(&encode(&msg)).expect("decode");
            assert_eq!(
                decoded.group.map(|g| g.span_key()),
                msg.group.map(|g| g.span_key()),
            );
        }
        let key = g(2, 7).span_key();
        assert_eq!(key.client, 2);
        assert_eq!(key.seq, 7);
        assert_eq!(key.to_string(), "<c2,g7>");
    }

    #[test]
    fn encode_into_reuses_the_buffer_and_matches_encode() {
        let mut buf = Vec::new();
        for msg in sample_msgs() {
            encode_into(&mut buf, &msg);
            assert_eq!(buf, encode(&msg));
        }
        // After the largest message has been seen, re-encoding smaller
        // ones must not grow the allocation.
        let cap = buf.capacity();
        for msg in sample_msgs() {
            encode_into(&mut buf, &msg);
        }
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn vectored_segments_concatenate_to_the_flat_encoding() {
        let mut scratch = Vec::new();
        for msg in sample_msgs() {
            let frame = encode_vectored(&msg, &mut scratch);
            let flat = encode(&msg);
            assert_eq!(frame.wire_len(&scratch), flat.len());
            assert_eq!(frame.assemble(&scratch), flat, "{msg:?}");
        }
    }

    #[test]
    fn vectored_payloads_share_storage_with_the_message() {
        let data = Payload::from(vec![7u8; 1024]);
        let msg = UpdateMsg {
            path: "/big".into(),
            base: None,
            version: Some(v(1, 1)),
            payload: UpdatePayload::Full(data.clone()),
            group: None,
            txn: None,
        };
        let mut scratch = Vec::new();
        let frame = encode_vectored(&msg, &mut scratch);
        let shared: Vec<_> = frame
            .segs
            .iter()
            .filter_map(|s| match s {
                FrameSeg::Shared(p) => Some(p),
                FrameSeg::Scratch(_) => None,
            })
            .collect();
        assert_eq!(shared.len(), 1);
        // Pointer equality: the segment is a view of the payload's
        // buffer, not a copy.
        assert!(std::ptr::eq(shared[0].as_ref(), data.as_ref()));
    }

    #[test]
    fn decode_shared_recovers_payload_views_without_copying() {
        let msg = &sample_msgs()[3]; // Full(b"whole file")
        let encoded = Bytes::from(encode(msg));
        let decoded = decode_shared(&encoded).expect("decode");
        let UpdatePayload::Full(data) = &decoded.payload else {
            panic!("expected Full payload");
        };
        // The recovered payload points into the encoded buffer itself.
        let base = encoded.as_ref().as_ptr() as usize;
        let view = data.as_ref().as_ptr() as usize;
        assert!(view >= base && view < base + encoded.len());
        assert_eq!(&data[..], b"whole file");
    }

    #[test]
    fn streamed_delta_prefix_plus_ops_decodes_to_the_merged_delta() {
        let msg = sample_msgs()[2].clone();
        let UpdatePayload::Delta { base_path, delta } = &msg.payload else {
            unreachable!()
        };
        // Stream the ops one at a time, with the trailing literal split
        // in two as a chunk boundary would split it.
        let mut buf = Vec::new();
        begin_delta_stream(&mut buf, &msg, base_path);
        append_delta_ops(&mut buf, &[delta.ops()[0].clone()]);
        append_delta_ops(&mut buf, &[DeltaOp::Literal(Bytes::from_static(b"ta"))]);
        append_delta_ops(&mut buf, &[DeltaOp::Literal(Bytes::from_static(b"il"))]);
        finish_op_stream(&mut buf);
        assert_eq!(decode(&buf).expect("decode"), msg);
    }

    #[test]
    fn encoded_size_tracks_accounted_size() {
        // The accounting model (wire_size) must stay within the real
        // encoded size plus the fixed header allowance.
        for msg in sample_msgs() {
            let encoded_len = encode(&msg).len() as u64;
            let accounted = msg.wire_size();
            assert!(
                encoded_len <= accounted + 64,
                "{msg:?}: encoded {encoded_len} vs accounted {accounted}"
            );
        }
    }

    #[test]
    fn truncated_inputs_error_cleanly() {
        let full = encode(&sample_msgs()[2]);
        for cut in 0..full.len() {
            assert!(
                decode(&full[..cut]).is_err(),
                "decode of {cut}-byte prefix should fail"
            );
        }
    }

    #[test]
    fn corrupted_tags_are_rejected() {
        let mut buf = encode(&sample_msgs()[0]);
        buf[4] = 0xFE; // opcode
        assert!(matches!(decode(&buf), Err(WireError::Malformed(_))));
        assert!(decode(MALFORMED_FRAME).is_err());
    }

    #[test]
    fn corrupted_group_tag_is_rejected() {
        // Header layout for sample 0: magic(4) opcode(1) path(2+2)
        // base(1) version(13) txn(8) — the group tag sits at offset 31.
        let mut buf = encode(&sample_msgs()[0]);
        buf[31..35].copy_from_slice(MALFORMED_FRAME);
        assert_eq!(decode(&buf), Err(WireError::Malformed("group tag")));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut buf = encode(&sample_msgs()[0]);
        buf.push(0);
        assert_eq!(decode(&buf), Err(WireError::Malformed("trailing bytes")));
    }

    #[test]
    fn codec_envelope_roundtrips() {
        for raw_len in [0u64, 1, 127, 128, 300_000, u64::MAX] {
            let body = b"compressed-bytes";
            let env = encode_codec_envelope(raw_len, body);
            assert_eq!(env[0], CODEC_LZ77);
            assert_eq!(decode_codec_envelope(&env), Ok((raw_len, &body[..])));
        }
        // Empty body is legal at the framing layer.
        let env = encode_codec_envelope(5, b"");
        assert_eq!(decode_codec_envelope(&env), Ok((5, &b""[..])));
    }

    #[test]
    fn malformed_codec_envelopes_are_rejected() {
        // Empty buffer, wrong tag, unterminated varint, overlong varint.
        assert!(decode_codec_envelope(&[]).is_err());
        assert!(decode_codec_envelope(&[0x02, 0x00]).is_err());
        assert!(decode_codec_envelope(MALFORMED_FRAME).is_err());
        assert!(decode_codec_envelope(&[CODEC_LZ77, 0x80]).is_err());
        let mut overlong = vec![CODEC_LZ77];
        overlong.extend_from_slice(&[0xff; 10]);
        assert!(decode_codec_envelope(&overlong).is_err());
        // 10-byte varint whose top byte spills past bit 63.
        let mut edge = vec![CODEC_LZ77];
        edge.extend_from_slice(&[0x80; 9]);
        edge.push(0x02);
        assert!(decode_codec_envelope(&edge).is_err());
    }
}
