//! Physical undo logging for in-place updates (paper §III-A).
//!
//! NFS-like file RPC is usually the right mechanism for in-place updates,
//! but when an update rewrites a large portion of a file (more than ~50 %)
//! local delta encoding could compress the change set further. Delta
//! encoding requires the file's *old* version — so, before each write
//! lands, the overwritten bytes are copied out (they are already in the
//! page cache, so this costs a memcpy, not IO). Replaying the records in
//! reverse against the current content reconstructs the old version
//! exactly.

use bytes::Bytes;

/// One undo record: enough to reverse a single write or truncate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UndoRecord {
    /// File length immediately *before* the operation.
    pub old_len: u64,
    /// Offset where old bytes must be restored.
    pub offset: u64,
    /// The bytes the operation destroyed (overwritten range, or the tail
    /// cut off by a truncate).
    pub old_bytes: Bytes,
}

/// The per-file undo log accumulated between uploads.
///
/// # Example
///
/// ```
/// use bytes::Bytes;
/// use deltacfs_core::UndoLog;
///
/// let mut content = b"hello world".to_vec();
/// let mut log = UndoLog::new();
/// // Overwrite "world" with "WORLD", preserving the destroyed bytes.
/// log.record_write(11, 6, Bytes::from_static(b"world"), 5);
/// content[6..11].copy_from_slice(b"WORLD");
/// assert_eq!(log.reconstruct(&content), b"hello world");
/// ```
#[derive(Debug, Clone, Default)]
pub struct UndoLog {
    records: Vec<UndoRecord>,
    changed_bytes: u64,
}

impl UndoLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a write of `written_len` bytes at `offset` that destroyed
    /// `overwritten` (shorter than `written_len` when the write extended
    /// the file), on a file that was `old_len` bytes long.
    pub fn record_write(
        &mut self,
        old_len: u64,
        offset: u64,
        overwritten: Bytes,
        written_len: u64,
    ) {
        self.changed_bytes += written_len;
        self.records.push(UndoRecord {
            old_len,
            offset,
            old_bytes: overwritten,
        });
    }

    /// Records a truncate that cut `cut` bytes off a file that was
    /// `old_len` bytes long (empty `cut` for extensions).
    pub fn record_truncate(&mut self, old_len: u64, new_size: u64, cut: Bytes) {
        self.changed_bytes += cut.len() as u64;
        self.records.push(UndoRecord {
            old_len,
            offset: new_size,
            old_bytes: cut,
        });
    }

    /// Total bytes written/cut since the log was last cleared — the
    /// numerator of the changed-fraction heuristic.
    pub fn changed_bytes(&self) -> u64 {
        self.changed_bytes
    }

    /// The file's length before the first recorded operation (0 when
    /// nothing is recorded). A zero initial length means there is no old
    /// version to delta against.
    pub fn initial_len(&self) -> u64 {
        self.records.first().map(|r| r.old_len).unwrap_or(0)
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no operations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Memory held by preserved old bytes.
    pub fn preserved_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.old_bytes.len() as u64).sum()
    }

    /// Fraction of the (current) file the logged operations modified.
    pub fn changed_fraction(&self, current_len: u64) -> f64 {
        if current_len == 0 {
            if self.changed_bytes == 0 {
                0.0
            } else {
                1.0
            }
        } else {
            self.changed_bytes as f64 / current_len as f64
        }
    }

    /// Reconstructs the file content as it was before the first recorded
    /// operation, given the `current` content.
    pub fn reconstruct(&self, current: &[u8]) -> Vec<u8> {
        let mut content = current.to_vec();
        for rec in self.records.iter().rev() {
            content.resize(rec.old_len as usize, 0);
            let start = (rec.offset as usize).min(content.len());
            let end = (start + rec.old_bytes.len()).min(content.len());
            content[start..end].copy_from_slice(&rec.old_bytes[..end - start]);
        }
        content
    }

    /// Clears the log (after the corresponding node uploaded).
    pub fn clear(&mut self) {
        self.records.clear();
        self.changed_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Applies a write the way the VFS does, returning the overwritten
    /// range.
    fn apply_write(content: &mut Vec<u8>, offset: usize, data: &[u8]) -> Bytes {
        let old_len = content.len();
        let end = offset + data.len();
        let overwritten = Bytes::copy_from_slice(&content[offset.min(old_len)..end.min(old_len)]);
        if end > old_len {
            content.resize(end, 0);
        }
        content[offset..end].copy_from_slice(data);
        overwritten
    }

    #[test]
    fn single_overwrite_roundtrip() {
        let original = b"hello world".to_vec();
        let mut content = original.clone();
        let mut log = UndoLog::new();
        let old_len = content.len() as u64;
        let ow = apply_write(&mut content, 6, b"WORLD");
        log.record_write(old_len, 6, ow, 5);
        assert_eq!(log.reconstruct(&content), original);
        assert_eq!(log.changed_bytes(), 5);
    }

    #[test]
    fn extension_roundtrip() {
        let original = b"ab".to_vec();
        let mut content = original.clone();
        let mut log = UndoLog::new();
        let ow = apply_write(&mut content, 1, b"XYZ");
        log.record_write(2, 1, ow, 3);
        assert_eq!(content, b"aXYZ");
        assert_eq!(log.reconstruct(&content), original);
    }

    #[test]
    fn truncate_roundtrip() {
        let original = b"abcdef".to_vec();
        let mut content = original.clone();
        let mut log = UndoLog::new();
        let cut = Bytes::copy_from_slice(&content[2..]);
        content.truncate(2);
        log.record_truncate(6, 2, cut);
        assert_eq!(log.reconstruct(&content), original);
    }

    #[test]
    fn sequence_of_mixed_ops_roundtrips() {
        let original: Vec<u8> = (0..200u8).collect();
        let mut content = original.clone();
        let mut log = UndoLog::new();

        let ow = apply_write(&mut content, 50, &[1u8; 30]);
        log.record_write(200, 50, ow, 30);

        let cut = Bytes::copy_from_slice(&content[150..]);
        content.truncate(150);
        log.record_truncate(200, 150, cut);

        let ow = apply_write(&mut content, 140, &[2u8; 40]); // extends to 180
        log.record_write(150, 140, ow, 40);

        let old_len = content.len() as u64;
        let ow = apply_write(&mut content, 0, &[3u8; 10]);
        log.record_write(old_len, 0, ow, 10);

        assert_eq!(log.reconstruct(&content), original);
        assert_eq!(log.len(), 4);
    }

    #[test]
    fn changed_fraction_and_clear() {
        let mut log = UndoLog::new();
        log.record_write(100, 0, Bytes::from_static(b"x"), 60);
        assert!((log.changed_fraction(100) - 0.6).abs() < 1e-9);
        assert_eq!(log.changed_fraction(0), 1.0);
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.changed_fraction(0), 0.0);
    }

    #[test]
    fn truncate_extension_roundtrips() {
        // Truncate that *grows* the file cuts nothing.
        let original = b"ab".to_vec();
        let mut content = original.clone();
        let mut log = UndoLog::new();
        content.resize(5, 0);
        log.record_truncate(2, 5, Bytes::new());
        assert_eq!(log.reconstruct(&content), original);
    }
}
