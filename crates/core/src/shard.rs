//! The sharded server dispatch layer (DESIGN.md §13).
//!
//! The paper leaves the server side as "wimpy storage servers that simply
//! apply incremental data"; scaling that to heavy multi-tenant traffic
//! means partitioning the hub. [`ShardedServer`] stripes the cloud state
//! over N independent [`CloudServer`] shards, each behind its own lock
//! and (in the hub) backed by its own snapshot store and caches — a shard
//! never touches another shard's persistence.
//!
//! Routing is by *namespace*: the first component of a path (the tenant
//! folder) hashes to a shard, so every path of one tenant — conflict
//! copies included — lives on one shard and single-tenant groups take
//! exactly one lock. Groups whose members span namespaces that hash to
//! different shards (legacy root-folder renames, for instance) go through
//! the cross-shard dispatcher: the referenced entries are checked out of
//! their owner shards, applied on a scratch server with the ordinary
//! whole-group validation, and checked back in by path — and the group's
//! outcome record is replicated onto *every* involved shard, so a
//! retransmission recognizes the replay no matter which shard it reaches
//! first (the cross-shard analogue of the PR 2 version-less dedup fix).
//!
//! The shard-invariance property suite (`tests/properties.rs`) pins the
//! contract this module must keep: for any shard count, final state,
//! traffic, and causal apply order are identical to the 1-shard hub.

use std::sync::{Mutex, MutexGuard};

use deltacfs_delta::Cost;
use deltacfs_kvstore::KeyValue;

use crate::persist::{self, PersistError};
use crate::protocol::{ApplyOutcome, GroupId, UpdateMsg, UpdatePayload, Version};
use crate::server::CloudServer;

/// Deterministic namespace→shard routing.
///
/// The routing key is the first path component with any
/// `.conflict-c<n>` suffix stripped, so a conflict copy of a root-level
/// file (`/f.conflict-c3`) lands on the same shard as the file it
/// shadows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// A router over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "a hub needs at least one shard");
        ShardRouter { shards }
    }

    /// Number of shards routed over.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The namespace (routing key) of `path`: its first component, with
    /// a trailing conflict-copy suffix stripped.
    pub fn namespace_of(path: &str) -> &str {
        let trimmed = path.strip_prefix('/').unwrap_or(path);
        let first = trimmed.split('/').next().unwrap_or("");
        strip_conflict_suffix(first)
    }

    /// The shard a namespace hashes to (FNV-1a, stable across runs).
    pub fn shard_of_namespace(&self, ns: &str) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in ns.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % self.shards as u64) as usize
    }

    /// The shard owning `path`.
    pub fn shard_of_path(&self, path: &str) -> usize {
        self.shard_of_namespace(Self::namespace_of(path))
    }

    /// Every shard a group touches, ascending and deduplicated: the
    /// shards of each member's path plus rename/link targets and delta
    /// base paths.
    pub fn shards_of_group(&self, msgs: &[UpdateMsg]) -> Vec<usize> {
        let mut out: Vec<usize> = Vec::with_capacity(2);
        let mut push = |s: usize| {
            if !out.contains(&s) {
                out.push(s);
            }
        };
        for msg in msgs {
            push(self.shard_of_path(&msg.path));
            match &msg.payload {
                UpdatePayload::Rename { to } | UpdatePayload::Link { to } => {
                    push(self.shard_of_path(to));
                }
                UpdatePayload::Delta { base_path, .. } => {
                    push(self.shard_of_path(base_path));
                }
                _ => {}
            }
        }
        out.sort_unstable();
        out
    }
}

/// Strips a `.conflict-c<digits>` tail from a path component.
fn strip_conflict_suffix(component: &str) -> &str {
    if let Some(pos) = component.rfind(".conflict-c") {
        let digits = &component[pos + ".conflict-c".len()..];
        if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
            return &component[..pos];
        }
    }
    component
}

/// The global causal-order log: per-shard cursors let the dispatcher
/// splice each shard's `apply_order` appends into one sequence that, for
/// a sequentially pumped hub, is identical to a single server's log.
#[derive(Debug)]
struct OrderLog {
    global: Vec<String>,
    cursors: Vec<usize>,
}

/// Dispatcher-level accounting for cross-shard groups (work done on the
/// scratch server belongs to no single shard).
#[derive(Debug, Default)]
struct CrossState {
    cost: Cost,
    duplicates: u64,
    groups: u64,
}

/// A cloud server partitioned into independently locked shards.
///
/// All mutation entry points take `&self`: shard locks are striped, so
/// single-shard groups on different shards apply concurrently. The read
/// facade mirrors [`CloudServer`]'s API with owned return values (the
/// data crosses a lock).
///
/// # Example
///
/// ```
/// use deltacfs_core::{ClientId, Payload, ShardedServer, UpdateMsg, UpdatePayload, Version};
///
/// let server = ShardedServer::new(4);
/// let v1 = Version { client: ClientId(1), counter: 1 };
/// server.apply_txn(&[UpdateMsg {
///     path: "/tenant-a/f".into(),
///     base: None,
///     version: Some(v1),
///     payload: UpdatePayload::Full(Payload::from_static(b"v1")),
///     txn: None,
///     group: None,
/// }]);
/// assert_eq!(server.file("/tenant-a/f").as_deref(), Some(&b"v1"[..]));
/// ```
#[derive(Debug)]
pub struct ShardedServer {
    router: ShardRouter,
    shards: Vec<Mutex<CloudServer>>,
    order: Mutex<OrderLog>,
    cross: Mutex<CrossState>,
}

impl ShardedServer {
    /// A sharded server with `shards` empty shards.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero.
    pub fn new(shards: usize) -> Self {
        ShardedServer {
            router: ShardRouter::new(shards),
            shards: (0..shards).map(|_| Mutex::new(CloudServer::new())).collect(),
            order: Mutex::new(OrderLog {
                global: Vec::new(),
                cursors: vec![0; shards],
            }),
            cross: Mutex::new(CrossState::default()),
        }
    }

    /// The routing table.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.router.shard_count()
    }

    /// The shard owning `path`.
    pub fn shard_of_path(&self, path: &str) -> usize {
        self.router.shard_of_path(path)
    }

    fn lock(&self, shard: usize) -> MutexGuard<'_, CloudServer> {
        self.shards[shard].lock().expect("shard lock poisoned")
    }

    /// Splices shard `s`'s new `apply_order` entries into the global log.
    /// Must run while `shard`'s lock is still held, so no other group's
    /// appends interleave with the cursor update.
    fn drain_order(&self, s: usize, shard: &CloudServer) {
        let mut log = self.order.lock().expect("order lock poisoned");
        let order = shard.apply_order();
        let cur = log.cursors[s].min(order.len());
        log.global.extend(order[cur..].iter().cloned());
        log.cursors[s] = order.len();
    }

    /// Applies a transaction group atomically (the sharded counterpart of
    /// [`CloudServer::apply_txn`]): one lock for a single-shard group,
    /// the checkout/check-in dispatcher for a cross-shard one.
    pub fn apply_txn(&self, msgs: &[UpdateMsg]) -> Vec<ApplyOutcome> {
        let involved = self.router.shards_of_group(msgs);
        if let [s] = involved[..] {
            let mut shard = self.lock(s);
            let outcomes = shard.apply_txn(msgs);
            self.drain_order(s, &shard);
            outcomes
        } else {
            self.apply_cross(msgs)
        }
    }

    /// Applies a group with replay deduplication (the sharded counterpart
    /// of [`CloudServer::apply_txn_idempotent`]). For a cross-shard group
    /// the outcome record is written to *every* involved shard, so a
    /// whole-group resend is recognized no matter which of its shards
    /// already committed; the duplicate check likewise consults each
    /// involved shard's replay index.
    pub fn apply_txn_idempotent(&self, msgs: &[UpdateMsg]) -> (Vec<ApplyOutcome>, bool) {
        let involved = self.router.shards_of_group(msgs);
        if let [s] = involved[..] {
            let mut shard = self.lock(s);
            let result = shard.apply_txn_idempotent(msgs);
            self.drain_order(s, &shard);
            return result;
        }
        let gid = msgs.iter().find_map(|m| m.group);
        if let Some(gid) = gid {
            for &s in &involved {
                if let Some(recorded) = self.lock(s).group_record(gid) {
                    self.cross.lock().expect("cross lock").duplicates += 1;
                    return (recorded, true);
                }
            }
        }
        let version_hit = msgs.iter().any(|m| {
            m.version
                .is_some_and(|v| involved.iter().any(|&s| self.lock(s).has_seen(v)))
        });
        if version_hit {
            self.cross.lock().expect("cross lock").duplicates += 1;
            let outcomes = msgs
                .iter()
                .map(|m| {
                    m.version
                        .and_then(|v| involved.iter().find_map(|&s| self.lock(s).seen_outcome(v)))
                        .unwrap_or(ApplyOutcome::Applied)
                })
                .collect();
            return (outcomes, true);
        }
        let outcomes = self.apply_cross(msgs);
        for (msg, outcome) in msgs.iter().zip(&outcomes) {
            if let Some(v) = msg.version {
                self.lock(self.router.shard_of_path(&msg.path))
                    .record_seen(v, outcome.clone());
            }
        }
        if let Some(gid) = gid {
            // Replicated, not split: the whole outcome vector lands on
            // each involved shard in one insert apiece, so the record is
            // present wherever the resend routes first.
            for &s in &involved {
                self.lock(s).restore_group_record(gid, outcomes.clone());
            }
        }
        (outcomes, false)
    }

    /// The cross-shard path: check referenced entries out of their owner
    /// shards, apply on a scratch server (whole-group validation and
    /// conflict materialization run unchanged), then check the surviving
    /// entries back in by path. The `cross` mutex serializes cross-shard
    /// groups against each other; per-shard locks are taken one at a
    /// time, so single-shard traffic on uninvolved shards never waits.
    fn apply_cross(&self, msgs: &[UpdateMsg]) -> Vec<ApplyOutcome> {
        let mut state = self.cross.lock().expect("cross lock poisoned");
        let involved = self.router.shards_of_group(msgs);
        let mut temp = CloudServer::new();
        // Check out everything the group's validation can observe: the
        // referenced files and the involved shards' directory sets
        // (a path's parent directories share its first component, so
        // they live on an involved shard by construction). The scratch
        // apply then validates and conflicts exactly like the 1-shard
        // server would — including rejecting the whole group, in which
        // case the diff below is empty and no shard changes.
        let mut initial_dirs: Vec<String> = Vec::new();
        for &s in &involved {
            for dir in self.lock(s).dirs() {
                temp.insert_dir(&dir);
                initial_dirs.push(dir);
            }
        }
        for path in referenced_paths(msgs) {
            let s = self.router.shard_of_path(&path);
            if let Some(file) = self.lock(s).take_file(&path) {
                temp.put_file(path, file);
            }
        }
        let outcomes = temp.apply_txn(msgs);
        state.cost.merge(&temp.cost());
        state.groups += 1;
        {
            let mut log = self.order.lock().expect("order lock poisoned");
            log.global.extend(temp.apply_order().iter().cloned());
        }
        let final_dirs = temp.dirs();
        for dir in &final_dirs {
            if !initial_dirs.contains(dir) {
                self.lock(self.router.shard_of_path(dir)).insert_dir(dir);
            }
        }
        for dir in &initial_dirs {
            if !final_dirs.contains(dir) {
                self.lock(self.router.shard_of_path(dir)).remove_dir(dir);
            }
        }
        for (path, file) in temp.drain_files() {
            let s = self.router.shard_of_path(&path);
            self.lock(s).put_file(path, file);
        }
        outcomes
    }

    /// Current content of `path`, if present.
    pub fn file(&self, path: &str) -> Option<Vec<u8>> {
        self.lock(self.router.shard_of_path(path))
            .file(path)
            .map(<[u8]>::to_vec)
    }

    /// Current version of `path`, if present.
    pub fn version(&self, path: &str) -> Option<Version> {
        self.lock(self.router.shard_of_path(path)).version(path)
    }

    /// Whether the directory `path` exists.
    pub fn has_dir(&self, path: &str) -> bool {
        self.lock(self.router.shard_of_path(path)).has_dir(path)
    }

    /// All stored directory paths, sorted.
    pub fn dirs(&self) -> Vec<String> {
        let mut out = Vec::new();
        for s in 0..self.shard_count() {
            out.extend(self.lock(s).dirs());
        }
        out.sort();
        out
    }

    /// All stored file paths, sorted.
    pub fn paths(&self) -> Vec<String> {
        let mut out = Vec::new();
        for s in 0..self.shard_count() {
            out.extend(self.lock(s).paths());
        }
        out.sort();
        out
    }

    /// The stored file paths visible in `namespace` (every path when the
    /// namespace is the root `""`), sorted. A namespaced listing reads
    /// only the owner shard — the multi-tenant fast path.
    pub fn paths_in_namespace(&self, namespace: &str) -> Vec<String> {
        if namespace.is_empty() {
            return self.paths();
        }
        let s = self.router.shard_of_namespace(namespace);
        let prefix = format!("/{namespace}/");
        let mut out: Vec<String> = self
            .lock(s)
            .paths()
            .into_iter()
            .filter(|p| p.starts_with(&prefix) || p.as_str() == &prefix[..prefix.len() - 1])
            .collect();
        out.sort();
        out
    }

    /// Number of files stored on shard `s`.
    pub fn shard_file_count(&self, s: usize) -> usize {
        self.lock(s).paths().len()
    }

    /// Total bytes stored (current versions only).
    pub fn stored_bytes(&self) -> u64 {
        (0..self.shard_count()).map(|s| self.lock(s).stored_bytes()).sum()
    }

    /// The retained versions of `path`, oldest first.
    pub fn version_history(&self, path: &str) -> Vec<Version> {
        self.lock(self.router.shard_of_path(path)).version_history(path)
    }

    /// Content of `path` at a specific retained version.
    pub fn file_at(&self, path: &str, version: Version) -> Option<Vec<u8>> {
        self.lock(self.router.shard_of_path(path))
            .file_at(path, version)
            .map(<[u8]>::to_vec)
    }

    /// The global causal apply order, spliced from every shard's log in
    /// commit order. For a sequentially pumped hub this is identical to
    /// the 1-shard server's `apply_order` — the invariant the property
    /// suite pins.
    pub fn apply_order(&self) -> Vec<String> {
        self.order.lock().expect("order lock poisoned").global.clone()
    }

    /// Work the server has performed so far, summed over shards plus the
    /// cross-shard dispatcher.
    pub fn cost(&self) -> Cost {
        let mut total = self.cross.lock().expect("cross lock").cost;
        for s in 0..self.shard_count() {
            total.merge(&self.lock(s).cost());
        }
        total
    }

    /// Duplicate (retransmitted) groups absorbed without re-applying,
    /// summed over shards plus cross-shard duplicates.
    pub fn duplicates_ignored(&self) -> u64 {
        let cross = self.cross.lock().expect("cross lock").duplicates;
        cross
            + (0..self.shard_count())
                .map(|s| self.lock(s).duplicates_ignored())
                .sum::<u64>()
    }

    /// Cross-shard groups dispatched through the scratch server.
    pub fn cross_shard_groups(&self) -> u64 {
        self.cross.lock().expect("cross lock").groups
    }

    /// Whether a `<CliID, VerCnt>` version has been applied on any shard.
    pub fn has_seen(&self, version: Version) -> bool {
        (0..self.shard_count()).any(|s| self.lock(s).has_seen(version))
    }

    /// Whether a `<CliID, GroupSeq>` group is recorded on any shard.
    pub fn has_seen_group(&self, group: GroupId) -> bool {
        (0..self.shard_count()).any(|s| self.lock(s).has_seen_group(group))
    }

    /// Runs `f` against one shard's [`CloudServer`] under its lock.
    pub fn with_shard<R>(&self, s: usize, f: impl FnOnce(&CloudServer) -> R) -> R {
        f(&self.lock(s))
    }

    /// Snapshots every shard into its own store: shard `i` into
    /// `stores[i]`. A shard never writes another shard's store.
    ///
    /// # Errors
    ///
    /// Propagates backing-store failures.
    ///
    /// # Panics
    ///
    /// Panics unless `stores` has one store per shard.
    pub fn save_all<K: KeyValue>(&self, stores: &mut [K]) -> Result<(), PersistError> {
        assert_eq!(stores.len(), self.shard_count(), "one store per shard");
        for (s, store) in stores.iter_mut().enumerate() {
            persist::save(&self.lock(s), store)?;
        }
        Ok(())
    }

    /// Snapshots only the shards a delivered group touched, in ascending
    /// shard order. Combined with the replicated group record this is the
    /// commit protocol DESIGN.md §13 documents: each involved shard's
    /// snapshot is self-contained (its file effects plus the whole-group
    /// record), so a crash reload from per-shard stores never resurrects
    /// a half-deduplicated group.
    ///
    /// # Errors
    ///
    /// Propagates backing-store failures.
    pub fn save_group<K: KeyValue>(
        &self,
        msgs: &[UpdateMsg],
        stores: &mut [K],
    ) -> Result<(), PersistError> {
        assert_eq!(stores.len(), self.shard_count(), "one store per shard");
        for s in self.router.shards_of_group(msgs) {
            persist::save(&self.lock(s), &mut stores[s])?;
        }
        Ok(())
    }

    /// Reloads every shard from its snapshot store after a simulated
    /// server crash. Volatile dispatcher state (cross-shard cost and
    /// duplicate counters) dies with the process, exactly as a single
    /// server's in-memory counters do; the global order log keeps its
    /// pre-crash prefix and the per-shard cursors re-anchor on the
    /// reloaded logs.
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupt`] if a record fails to decode.
    pub fn reload_all<K: KeyValue>(&self, stores: &mut [K]) -> Result<(), PersistError> {
        assert_eq!(stores.len(), self.shard_count(), "one store per shard");
        for (s, store) in stores.iter_mut().enumerate() {
            let mut shard = self.lock(s);
            persist::load_into(store, &mut shard)?;
            let len = shard.apply_order().len();
            self.order.lock().expect("order lock poisoned").cursors[s] = len;
        }
        let mut state = self.cross.lock().expect("cross lock poisoned");
        state.cost = Cost::new();
        state.duplicates = 0;
        Ok(())
    }
}

/// Every path a group reads or writes: member paths, rename/link
/// targets, and delta base paths, deduplicated in first-reference order.
fn referenced_paths(msgs: &[UpdateMsg]) -> Vec<String> {
    let mut out: Vec<String> = Vec::with_capacity(msgs.len());
    let mut push = |p: &str| {
        if !out.iter().any(|q| q == p) {
            out.push(p.to_string());
        }
    };
    for msg in msgs {
        push(&msg.path);
        match &msg.payload {
            UpdatePayload::Rename { to } | UpdatePayload::Link { to } => push(to),
            UpdatePayload::Delta { base_path, .. } => push(base_path),
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{ClientId, Payload};

    fn v(c: u32, n: u64) -> Version {
        Version {
            client: ClientId(c),
            counter: n,
        }
    }

    fn gid(c: u32, n: u64) -> GroupId {
        GroupId {
            client: ClientId(c),
            seq: n,
        }
    }

    fn full(path: &str, base: Option<Version>, ver: Version, data: &[u8]) -> UpdateMsg {
        UpdateMsg {
            path: path.into(),
            base,
            version: Some(ver),
            payload: UpdatePayload::Full(Payload::copy_from_slice(data)),
            txn: None,
            group: None,
        }
    }

    fn rename(from: &str, to: &str, group: Option<GroupId>) -> UpdateMsg {
        UpdateMsg {
            path: from.into(),
            base: None,
            version: None,
            payload: UpdatePayload::Rename { to: to.into() },
            txn: None,
            group,
        }
    }

    /// Two root-level names guaranteed to hash to different shards.
    fn cross_shard_pair(router: ShardRouter) -> (String, String) {
        let a = "/src-file".to_string();
        for i in 0..1024 {
            let b = format!("/dst-file-{i}");
            if router.shard_of_path(&b) != router.shard_of_path(&a) {
                return (a, b);
            }
        }
        panic!("no cross-shard name found in 1024 candidates");
    }

    #[test]
    fn routing_is_by_first_component() {
        let r = ShardRouter::new(8);
        assert_eq!(r.shard_of_path("/t3/a"), r.shard_of_path("/t3/b/c"));
        assert_eq!(ShardRouter::namespace_of("/t3/a/b"), "t3");
        assert_eq!(ShardRouter::namespace_of("/f"), "f");
    }

    #[test]
    fn conflict_copies_route_with_their_file() {
        let r = ShardRouter::new(8);
        assert_eq!(r.shard_of_path("/f"), r.shard_of_path("/f.conflict-c3"));
        assert_eq!(
            r.shard_of_path("/t1/doc"),
            r.shard_of_path("/t1/doc.conflict-c12")
        );
        // A name that merely resembles the suffix is not rewritten.
        assert_eq!(ShardRouter::namespace_of("/x.conflict-cat"), "x.conflict-cat");
    }

    #[test]
    fn single_shard_groups_apply_in_place() {
        let server = ShardedServer::new(4);
        let outcomes = server.apply_txn(&[full("/t1/f", None, v(1, 1), b"hello")]);
        assert_eq!(outcomes, vec![ApplyOutcome::Applied]);
        assert_eq!(server.file("/t1/f").as_deref(), Some(&b"hello"[..]));
        assert_eq!(server.apply_order(), vec!["/t1/f".to_string()]);
        assert_eq!(server.cross_shard_groups(), 0);
    }

    #[test]
    fn cross_shard_rename_moves_content_between_shards() {
        let server = ShardedServer::new(4);
        let (src, dst) = cross_shard_pair(server.router());
        server.apply_txn(&[full(&src, None, v(1, 1), b"payload")]);
        let outcomes = server.apply_txn(&[rename(&src, &dst, None)]);
        assert_eq!(outcomes, vec![ApplyOutcome::Applied]);
        assert!(server.file(&src).is_none());
        assert_eq!(server.file(&dst).as_deref(), Some(&b"payload"[..]));
        assert_eq!(server.cross_shard_groups(), 1);
        // The causal log interleaves both shards' entries in commit order.
        assert_eq!(server.apply_order(), vec![src, dst]);
    }

    #[test]
    fn cross_shard_group_record_lands_on_every_involved_shard() {
        let server = ShardedServer::new(4);
        let (src, dst) = cross_shard_pair(server.router());
        server.apply_txn_idempotent(&[full(&src, None, v(1, 1), b"x")]);
        let g = gid(1, 2);
        let (first, dup) = server.apply_txn_idempotent(&[rename(&src, &dst, Some(g))]);
        assert!(!dup);
        let src_shard = server.shard_of_path(&src);
        let dst_shard = server.shard_of_path(&dst);
        assert!(server.with_shard(src_shard, |s| s.has_seen_group(g)));
        assert!(server.with_shard(dst_shard, |s| s.has_seen_group(g)));
        let (replayed, dup) = server.apply_txn_idempotent(&[rename(&src, &dst, Some(g))]);
        assert!(dup, "whole-group resend must be recognized");
        assert_eq!(replayed, first);
        assert_eq!(server.duplicates_ignored(), 1);
    }

    #[test]
    fn one_shard_matches_cloud_server_semantics() {
        // With a single shard every group is "single-shard": the
        // dispatcher degenerates to a plain CloudServer.
        let sharded = ShardedServer::new(1);
        let mut plain = CloudServer::new();
        let groups: Vec<Vec<UpdateMsg>> = vec![
            vec![full("/a", None, v(1, 1), b"a1")],
            vec![rename("/a", "/b", Some(gid(1, 2)))],
            vec![full("/a", None, v(1, 3), b"fresh")],
            vec![rename("/a", "/b", Some(gid(1, 2)))], // late replay
        ];
        for g in &groups {
            let lhs = sharded.apply_txn_idempotent(g);
            let rhs = plain.apply_txn_idempotent(g);
            assert_eq!(lhs, rhs);
        }
        assert_eq!(sharded.paths(), plain.paths());
        assert_eq!(sharded.apply_order(), plain.apply_order());
        assert_eq!(sharded.duplicates_ignored(), plain.duplicates_ignored());
    }

    #[test]
    fn namespace_listing_reads_only_the_owner_shard() {
        let server = ShardedServer::new(4);
        server.apply_txn(&[full("/t1/a", None, v(1, 1), b"x")]);
        server.apply_txn(&[full("/t2/b", None, v(1, 2), b"y")]);
        assert_eq!(server.paths_in_namespace("t1"), vec!["/t1/a".to_string()]);
        assert_eq!(server.paths_in_namespace("t2"), vec!["/t2/b".to_string()]);
        assert_eq!(server.paths_in_namespace("").len(), 2);
    }
}
