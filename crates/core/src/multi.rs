//! Multi-client sharing (paper §III-D).
//!
//! When a client uploads incremental data for a shared file, the cloud —
//! "besides storing the data" — forwards the *same* incremental data to
//! the other clients sharing it, with no additional computation: to the
//! uploader, a peer client is virtually equivalent to the cloud.
//! Conflicts on receiving clients reconcile exactly like on the cloud
//! (first write wins; the local edit survives as a conflict copy).

use deltacfs_net::{Link, LinkSpec, SimClock};
use deltacfs_vfs::Vfs;

use crate::client::{DeltaCfsClient, RemoteConflict};
use crate::config::DeltaCfsConfig;
use crate::protocol::{ApplyOutcome, ClientId, UpdateMsg, UpdatePayload};
use crate::server::CloudServer;

struct Slot {
    client: DeltaCfsClient,
    fs: Vfs,
    link: Link,
}

/// A cloud server with any number of attached DeltaCFS clients, all
/// sharing one folder.
///
/// # Example
///
/// ```
/// use deltacfs_core::{DeltaCfsConfig, SyncHub};
/// use deltacfs_net::{LinkSpec, SimClock};
///
/// let clock = SimClock::new();
/// let mut hub = SyncHub::new(clock.clone());
/// let a = hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
/// let b = hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
/// hub.fs_mut(a).create("/shared")?;
/// hub.fs_mut(a).write("/shared", 0, b"hi")?;
/// hub.pump();
/// clock.advance(4_000);
/// hub.pump();
/// assert_eq!(hub.fs(b).peek_all("/shared")?, b"hi");
/// # Ok::<(), deltacfs_vfs::VfsError>(())
/// ```
pub struct SyncHub {
    server: CloudServer,
    slots: Vec<Slot>,
    clock: SimClock,
    conflicts: Vec<(usize, RemoteConflict)>,
    server_outcomes: Vec<ApplyOutcome>,
}

impl std::fmt::Debug for SyncHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyncHub")
            .field("clients", &self.slots.len())
            .finish_non_exhaustive()
    }
}

impl SyncHub {
    /// Creates a hub with no clients.
    pub fn new(clock: SimClock) -> Self {
        SyncHub {
            server: CloudServer::new(),
            slots: Vec::new(),
            clock,
            conflicts: Vec::new(),
            server_outcomes: Vec::new(),
        }
    }

    /// Attaches a new client and returns its index.
    pub fn add_client(&mut self, cfg: DeltaCfsConfig, link_spec: LinkSpec) -> usize {
        let idx = self.slots.len();
        let client = DeltaCfsClient::new(ClientId(idx as u32 + 1), cfg, self.clock.clone());
        let mut fs = Vfs::new();
        fs.enable_event_log();
        self.slots.push(Slot {
            client,
            fs,
            link: Link::new(link_spec),
        });
        idx
    }

    /// Number of attached clients.
    pub fn client_count(&self) -> usize {
        self.slots.len()
    }

    /// The file system of client `idx` — the application performs its
    /// operations here.
    pub fn fs_mut(&mut self, idx: usize) -> &mut Vfs {
        &mut self.slots[idx].fs
    }

    /// Read access to client `idx`'s file system.
    pub fn fs(&self, idx: usize) -> &Vfs {
        &self.slots[idx].fs
    }

    /// The engine of client `idx`.
    pub fn client(&self, idx: usize) -> &DeltaCfsClient {
        &self.slots[idx].client
    }

    /// The shared cloud server.
    pub fn server(&self) -> &CloudServer {
        &self.server
    }

    /// Conflicts observed on clients: `(client index, conflict)`.
    pub fn conflicts(&self) -> &[(usize, RemoteConflict)] {
        &self.conflicts
    }

    /// Outcomes of server-side applications (to observe cloud conflicts).
    pub fn server_outcomes(&self) -> &[ApplyOutcome] {
        &self.server_outcomes
    }

    /// Pushes the cloud's entire current state to client `idx` — the
    /// initial sync a device performs when it joins an already-populated
    /// shared folder.
    pub fn full_sync(&mut self, idx: usize) {
        let now = self.clock.now();
        let mut msgs: Vec<UpdateMsg> = Vec::new();
        for dir in self.server.dirs() {
            msgs.push(UpdateMsg {
                path: dir,
                base: None,
                version: None,
                payload: UpdatePayload::Mkdir,
                txn: None,
            });
        }
        for path in self.server.paths() {
            let content = self.server.file(&path).expect("listed path exists");
            msgs.push(UpdateMsg {
                path: path.clone(),
                base: None,
                version: self.server.version(&path),
                payload: UpdatePayload::Full(bytes::Bytes::copy_from_slice(content)),
                txn: None,
            });
        }
        for msg in msgs {
            let wire = msg.wire_size();
            self.slots[idx].link.download(wire, now);
            let slot = &mut self.slots[idx];
            slot.client.apply_remote(&msg, &mut slot.fs);
        }
    }

    /// Drains client events, uploads ready nodes, applies them on the
    /// cloud, and forwards applied updates to the other clients.
    pub fn pump(&mut self) {
        self.pump_inner(false);
    }

    /// Flushes everything regardless of upload delays.
    pub fn flush(&mut self) {
        self.pump_inner(true);
        // A second round delivers updates that forwarding produced.
        self.pump_inner(true);
    }

    fn pump_inner(&mut self, flush: bool) {
        let now = self.clock.now();
        for idx in 0..self.slots.len() {
            // 1. Feed pending fs events into the engine.
            let events = self.slots[idx].fs.drain_events();
            for e in &events {
                let slot = &mut self.slots[idx];
                slot.client.handle_event(e, &slot.fs);
            }
            // 2. Upload ready groups.
            let slot = &mut self.slots[idx];
            let groups = if flush {
                slot.client.flush(&slot.fs)
            } else {
                slot.client.tick(&slot.fs)
            };
            for group in groups {
                let wire: u64 = group.iter().map(UpdateMsg::wire_size).sum();
                self.slots[idx].link.upload(wire, now);
                let outcomes = self.server.apply_txn(&group);
                let all_applied = outcomes.iter().all(|o| *o == ApplyOutcome::Applied);
                self.server_outcomes.extend(outcomes);
                self.slots[idx].link.download(32, now);
                if all_applied {
                    self.forward(idx, &group, now);
                }
            }
        }
    }

    /// Sends `group` to every client except `from` — the same incremental
    /// data, no recomputation (paper §III-D).
    fn forward(&mut self, from: usize, group: &[UpdateMsg], now: deltacfs_net::SimTime) {
        for idx in 0..self.slots.len() {
            if idx == from {
                continue;
            }
            for msg in group {
                // The paper's key multi-client property (§III-D): "the
                // same incremental data can be directly sent to client B
                // without additional computation". A delta is forwarded
                // verbatim when the peer's base matches (it applies it to
                // its own copy of the base path); only a diverged peer —
                // e.g. one holding unsynced local edits, which is about to
                // conflict anyway — receives the materialized content.
                let peer_diverged = match &msg.payload {
                    UpdatePayload::Delta { base_path, .. } => {
                        let slot = &self.slots[idx];
                        let local_version = slot.client.version_of(base_path);
                        local_version != msg.base
                    }
                    _ => false,
                };
                let forwarded = if peer_diverged {
                    let content = self
                        .server
                        .file(&msg.path)
                        .map(bytes::Bytes::copy_from_slice)
                        .unwrap_or_default();
                    UpdateMsg {
                        payload: UpdatePayload::Full(content),
                        ..msg.clone()
                    }
                } else {
                    msg.clone()
                };
                let wire = forwarded.wire_size();
                self.slots[idx].link.download(wire, now);
                let slot = &mut self.slots[idx];
                if let Some(conflict) = slot.client.apply_remote(&forwarded, &mut slot.fs) {
                    self.conflicts.push((idx, conflict));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hub_with_two_clients() -> (SyncHub, SimClock) {
        let clock = SimClock::new();
        let mut hub = SyncHub::new(clock.clone());
        hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
        hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
        (hub, clock)
    }

    #[test]
    fn update_propagates_to_peer() {
        let (mut hub, clock) = hub_with_two_clients();
        hub.fs_mut(0).create("/shared.txt").unwrap();
        hub.fs_mut(0)
            .write("/shared.txt", 0, b"from client 0")
            .unwrap();
        hub.pump(); // ingest events
        clock.advance(4000);
        hub.pump(); // upload aged nodes
        assert_eq!(
            hub.server().file("/shared.txt"),
            Some(&b"from client 0"[..])
        );
        assert_eq!(hub.fs(1).peek_all("/shared.txt").unwrap(), b"from client 0");
        assert!(hub.conflicts().is_empty());
    }

    #[test]
    fn incremental_edit_propagates() {
        let (mut hub, clock) = hub_with_two_clients();
        hub.fs_mut(0).create("/f").unwrap();
        hub.fs_mut(0).write("/f", 0, b"0123456789").unwrap();
        hub.pump(); // ingest events
        clock.advance(4000);
        hub.pump(); // upload aged nodes
        hub.fs_mut(0).write("/f", 2, b"XY").unwrap();
        hub.pump(); // ingest events
        clock.advance(4000);
        hub.pump(); // upload aged nodes
        assert_eq!(hub.fs(1).peek_all("/f").unwrap(), b"01XY456789");
    }

    #[test]
    fn concurrent_edit_conflicts_first_write_wins() {
        let (mut hub, clock) = hub_with_two_clients();
        hub.fs_mut(0).create("/doc").unwrap();
        hub.fs_mut(0).write("/doc", 0, b"base").unwrap();
        hub.pump(); // ingest events
        clock.advance(4000);
        hub.pump(); // upload aged nodes
                    // Both clients edit concurrently.
        hub.fs_mut(0).write("/doc", 0, b"AAAA").unwrap();
        hub.fs_mut(1).write("/doc", 0, b"BBBB").unwrap();
        hub.pump(); // ingest events
        clock.advance(4000);
        hub.pump(); // upload aged nodes
        hub.flush();
        // Client 0 pumped first: its version is the cloud's latest.
        assert_eq!(hub.server().file("/doc"), Some(&b"AAAA"[..]));
        // Client 1's edit survived somewhere (conflict copy on cloud or
        // local conflict file).
        let cloud_conflict = hub.server().paths().iter().any(|p| p.contains(".conflict"));
        let local_conflict = !hub.conflicts().is_empty();
        assert!(cloud_conflict || local_conflict);
    }

    #[test]
    fn three_clients_all_converge() {
        let clock = SimClock::new();
        let mut hub = SyncHub::new(clock.clone());
        for _ in 0..3 {
            hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
        }
        hub.fs_mut(2).create("/from2").unwrap();
        hub.fs_mut(2).write("/from2", 0, b"hello all").unwrap();
        hub.pump(); // ingest events
        clock.advance(4000);
        hub.pump(); // upload aged nodes
        for idx in 0..3 {
            assert_eq!(
                hub.fs(idx).peek_all("/from2").unwrap(),
                b"hello all",
                "client {idx}"
            );
        }
    }

    #[test]
    fn deltas_forward_as_deltas_not_full_content() {
        // §III-D: the peer receives the same incremental data the cloud
        // did — a transactional save of a 100 KB file must not push
        // 100 KB to the peer.
        let (mut hub, clock) = hub_with_two_clients();
        hub.fs_mut(0).create("/doc").unwrap();
        hub.fs_mut(0).write("/doc", 0, &vec![4u8; 100_000]).unwrap();
        hub.pump();
        clock.advance(4000);
        hub.pump();
        let peer_down_before = {
            // Reach through the slot's link stats via the report of a
            // fresh pump: measure through fs state instead.
            hub.slots[1].link.stats().bytes_down
        };
        // Word-style save on client 0, one byte changed.
        let mut doc = hub.fs(0).peek_all("/doc").unwrap();
        doc[50_000] = 5;
        hub.fs_mut(0).rename("/doc", "/doc.bak").unwrap();
        hub.pump();
        hub.fs_mut(0).create("/doc.tmp").unwrap();
        hub.pump();
        hub.fs_mut(0).write("/doc.tmp", 0, &doc).unwrap();
        hub.pump();
        hub.fs_mut(0).close_path("/doc.tmp").unwrap();
        hub.pump();
        hub.fs_mut(0).rename("/doc.tmp", "/doc").unwrap();
        hub.pump();
        hub.fs_mut(0).unlink("/doc.bak").unwrap();
        hub.pump();
        clock.advance(4000);
        hub.pump();
        hub.flush();
        // The peer converged...
        assert_eq!(hub.fs(1).peek_all("/doc").unwrap(), doc);
        // ...from an incremental download, not a re-materialized file.
        let peer_down = hub.slots[1].link.stats().bytes_down - peer_down_before;
        assert!(
            peer_down < 20_000,
            "peer downloaded {peer_down} bytes for a 1-byte edit"
        );
    }

    #[test]
    fn late_joining_device_catches_up_via_full_sync() {
        let clock = SimClock::new();
        let mut hub = SyncHub::new(clock.clone());
        let first = hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
        hub.fs_mut(first).mkdir_all("/photos").unwrap();
        hub.fs_mut(first).create("/photos/cat.jpg").unwrap();
        hub.fs_mut(first)
            .write("/photos/cat.jpg", 0, &vec![9u8; 10_000])
            .unwrap();
        hub.pump();
        clock.advance(4_000);
        hub.pump();

        // A new phone joins later and performs the initial sync.
        let phone = hub.add_client(DeltaCfsConfig::new(), LinkSpec::mobile());
        hub.full_sync(phone);
        assert_eq!(
            hub.fs(phone).peek_all("/photos/cat.jpg").unwrap(),
            vec![9u8; 10_000]
        );
        // And from then on participates in incremental sync.
        hub.fs_mut(first)
            .write("/photos/cat.jpg", 0, b"update")
            .unwrap();
        hub.pump();
        clock.advance(4_000);
        hub.pump();
        assert_eq!(
            &hub.fs(phone).peek_all("/photos/cat.jpg").unwrap()[..6],
            b"update"
        );
    }

    #[test]
    fn rename_propagates() {
        let (mut hub, clock) = hub_with_two_clients();
        hub.fs_mut(0).create("/old").unwrap();
        hub.fs_mut(0).write("/old", 0, b"x").unwrap();
        hub.pump(); // ingest events
        clock.advance(4000);
        hub.pump(); // upload aged nodes
        hub.fs_mut(0).rename("/old", "/new").unwrap();
        hub.pump(); // ingest events
        clock.advance(4000);
        hub.pump(); // upload aged nodes
        assert!(hub.fs(1).exists("/new"));
        assert!(!hub.fs(1).exists("/old"));
    }
}
