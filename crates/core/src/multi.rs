//! Multi-client sharing (paper §III-D) over a sharded, multi-tenant hub.
//!
//! When a client uploads incremental data for a shared file, the cloud —
//! "besides storing the data" — forwards the *same* incremental data to
//! the other clients sharing it, with no additional computation: to the
//! uploader, a peer client is virtually equivalent to the cloud.
//! Conflicts on receiving clients reconcile exactly like on the cloud
//! (first write wins; the local edit survives as a conflict copy).
//!
//! The hub side is sharded (DESIGN.md §13): server state lives in a
//! [`ShardedServer`], each shard with its own snapshot store, and clients
//! attach to a *namespace* (their shared folder, the first path
//! component). Fan-out is batched per peer through the namespace
//! subscriber index instead of scanning every client per message, and
//! [`SyncHub::pump_parallel`] pumps one lane per home shard. A 1-shard
//! hub with root clients reproduces the original single-instance hub
//! byte for byte — the shard-invariance property suite pins this.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use deltacfs_kvstore::MemStore;
use deltacfs_net::{
    FaultPlan, FaultSpec, FaultStats, FaultTopology, Link, LinkSpec, PlatformProfile, SimClock,
    SimTime, UploadVerdict,
};
use deltacfs_obs::{Histogram, Obs, Profiler, Snapshot};
use deltacfs_vfs::Vfs;

use crate::client::{DeltaCfsClient, RemoteConflict};
use crate::codec::{CodecPolicy, WireCodec};
use crate::config::{DeltaCfsConfig, HubConfig};
use crate::pipeline::{frame_group, ChunkStager};
use crate::protocol::{
    ApplyOutcome, ClientId, GroupId, Payload, UpdateMsg, UpdatePayload, Version, ACK_WIRE_BYTES,
};
use crate::retry::{Courier, RetryPolicy, BACKOFF_BUCKETS_MS};
use crate::shard::ShardedServer;

struct Slot {
    client: DeltaCfsClient,
    fs: Vfs,
    link: Link,
    courier: Courier,
    /// The shared folder this client is attached to (first path
    /// component); `""` is the legacy root client that sees everything.
    namespace: String,
    /// The server shard the namespace hashes to — the client's pump lane
    /// and queue-depth gauge bucket.
    home_shard: usize,
    /// Client-side staging for chunk-streamed forwards and recovery
    /// downloads — the mirror of the server's upload stage. A group
    /// whose stream was cut sits here, uncommitted, until a resend
    /// resets it or a client crash drops it.
    forward: ChunkStager,
    /// Stream group ids this client already committed — the idempotent
    /// commit record symmetric to the server's `<CliID, GroupSeq>`
    /// replay index.
    forward_seen: HashSet<GroupId>,
    /// Chunk frames streamed to this client (forward/download
    /// direction).
    forward_chunks: u64,
    /// Chunk-streamed groups fully delivered to this client.
    forward_groups: u64,
    /// Largest single frame seen on this client's downlink — with an
    /// inline (unbuffered) forward loop this is also the peak in-flight
    /// byte count of the direction.
    forward_max_frame_bytes: u64,
    /// Adaptive wire codec for the forward/download direction: frames
    /// fanned out to this client are compressed when the downlink's
    /// byte savings beat the hub's compression CPU. Policy follows the
    /// client's `wire_compression` knob.
    forward_codec: WireCodec,
}

/// A cloud server with any number of attached DeltaCFS clients, all
/// sharing one folder.
///
/// # Example
///
/// ```
/// use deltacfs_core::{DeltaCfsConfig, SyncHub};
/// use deltacfs_net::{LinkSpec, SimClock};
///
/// let clock = SimClock::new();
/// let mut hub = SyncHub::new(clock.clone());
/// let a = hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
/// let b = hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
/// hub.fs_mut(a).create("/shared")?;
/// hub.fs_mut(a).write("/shared", 0, b"hi")?;
/// hub.pump();
/// clock.advance(4_000);
/// hub.pump();
/// assert_eq!(hub.fs(b).peek_all("/shared")?, b"hi");
/// # Ok::<(), deltacfs_vfs::VfsError>(())
/// ```
pub struct SyncHub {
    server: ShardedServer,
    slots: Vec<Slot>,
    clock: SimClock,
    cfg: HubConfig,
    conflicts: Vec<(usize, RemoteConflict)>,
    server_outcomes: Vec<ApplyOutcome>,
    /// Namespace → indexes of the clients subscribed to it. Fan-out for
    /// a namespaced uploader touches only this list plus
    /// `root_subscribers` — O(sharing degree), not O(clients).
    subscribers: HashMap<String, Vec<usize>>,
    /// Clients attached to the root namespace (they see every path).
    root_subscribers: Vec<usize>,
    /// `Some` once [`SyncHub::enable_faults`] (one shared schedule) or
    /// [`SyncHub::enable_fault_topology`] (independent per-writer
    /// schedules) arms fault injection; the pump then runs through the
    /// reliability layer (couriers + server idempotency + crash/restart
    /// from the snapshot store).
    fault: Option<FaultTopology>,
    /// One durable snapshot store per shard, refreshed for the involved
    /// shards after every applied group; a simulated server crash
    /// reloads every shard from here. A shard never writes another
    /// shard's store.
    stores: Vec<MemStore>,
    /// Duplicated group copies held back for out-of-order redelivery.
    deferred: Vec<Vec<UpdateMsg>>,
    /// Every `(client, path, version)` the server acknowledged as
    /// applied — the commit record fault tests check against.
    acked: Vec<(usize, String, Version)>,
    /// Counter stamping synthetic download streams (full sync,
    /// anti-entropy) with unique `<ClientId(0), seq>` group ids —
    /// client ids are 1-based, so these can never collide with a real
    /// upload group.
    synthetic_groups: u64,
    /// Observability bundle shared with every client. Default-disabled
    /// tracer; [`SyncHub::enable_observability`] installs a live one.
    obs: Obs,
}

impl std::fmt::Debug for SyncHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyncHub")
            .field("clients", &self.slots.len())
            .field("shards", &self.server.shard_count())
            .finish_non_exhaustive()
    }
}

impl SyncHub {
    /// Creates a single-shard hub with no clients (the legacy
    /// configuration; see [`SyncHub::with_config`] for sharding).
    pub fn new(clock: SimClock) -> Self {
        Self::with_config(clock, HubConfig::new())
    }

    /// Creates a hub with `shards` server shards and no clients.
    pub fn with_shards(clock: SimClock, shards: usize) -> Self {
        Self::with_config(clock, HubConfig::new().with_shards(shards))
    }

    /// Creates a hub from a full [`HubConfig`].
    pub fn with_config(clock: SimClock, cfg: HubConfig) -> Self {
        SyncHub {
            server: ShardedServer::new(cfg.shards),
            slots: Vec::new(),
            clock,
            cfg,
            conflicts: Vec::new(),
            server_outcomes: Vec::new(),
            subscribers: HashMap::new(),
            root_subscribers: Vec::new(),
            fault: None,
            stores: (0..cfg.shards).map(|_| MemStore::new()).collect(),
            deferred: Vec::new(),
            acked: Vec::new(),
            synthetic_groups: 0,
            obs: Obs::new(),
        }
    }

    /// Installs a shared observability bundle: every attached client's
    /// trace events flow into `obs.tracer` (as do the hub's own wire,
    /// retry, and server events under actor names `client-<n>` and
    /// `server`), and courier backoff delays are recorded into the
    /// `retry_backoff_ms` histogram of `obs.registry`. Clients attached
    /// later inherit it.
    pub fn enable_observability(&mut self, obs: Obs) {
        self.obs = obs;
        if self.cfg.profiling {
            self.obs.spans.set_enabled(true);
        }
        let hist = self
            .obs
            .registry
            .histogram("retry_backoff_ms", BACKOFF_HELP, &BACKOFF_BUCKETS_MS);
        for slot in &mut self.slots {
            slot.client.set_obs(self.obs.clone());
            slot.courier.set_backoff_histogram(hist.clone());
            slot.forward_codec.attach_obs(&self.obs);
        }
    }

    /// The hub's observability bundle (shared handles — cloning is cheap).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Attaches a new client to the root namespace and returns its index.
    /// Root clients see every path — the legacy single-folder behavior.
    pub fn add_client(&mut self, cfg: DeltaCfsConfig, link_spec: LinkSpec) -> usize {
        self.add_client_in("", cfg, link_spec)
    }

    /// Attaches a new client to `namespace` (a single path component;
    /// `""` is the root). The client is expected to operate under
    /// `/<namespace>/…`; forwarded updates, full sync, and anti-entropy
    /// are filtered to that subtree, and the namespace pins the client's
    /// home shard.
    ///
    /// # Panics
    ///
    /// Panics if `namespace` contains `/`.
    pub fn add_client_in(
        &mut self,
        namespace: &str,
        cfg: DeltaCfsConfig,
        link_spec: LinkSpec,
    ) -> usize {
        assert!(
            !namespace.contains('/'),
            "namespace is a single path component"
        );
        let idx = self.slots.len();
        let mut client = DeltaCfsClient::new(ClientId(idx as u32 + 1), cfg, self.clock.clone());
        client.set_obs(self.obs.clone());
        let mut fs = Vfs::new();
        fs.enable_event_log();
        let mut courier = Courier::new(RetryPolicy::default(), courier_seed(0, idx));
        courier.set_backoff_histogram(self.obs.registry.histogram(
            "retry_backoff_ms",
            BACKOFF_HELP,
            &BACKOFF_BUCKETS_MS,
        ));
        if namespace.is_empty() {
            self.root_subscribers.push(idx);
        } else {
            self.subscribers
                .entry(namespace.to_string())
                .or_default()
                .push(idx);
        }
        let home_shard = self.server.router().shard_of_namespace(namespace);
        let policy = if cfg.wire_compression {
            CodecPolicy::Adaptive
        } else {
            CodecPolicy::Never
        };
        let mut forward_codec = WireCodec::for_forward(policy, link_spec);
        forward_codec.attach_obs(&self.obs);
        let mut link = Link::new(link_spec);
        if cfg.wire_compression {
            // The hub compresses forwards, so its (pc-class) CPU rate is
            // what the downlink timing charges.
            link.set_compute(PlatformProfile::pc());
        }
        self.slots.push(Slot {
            client,
            fs,
            link,
            courier,
            namespace: namespace.to_string(),
            home_shard,
            forward: ChunkStager::new(),
            forward_seen: HashSet::new(),
            forward_chunks: 0,
            forward_groups: 0,
            forward_max_frame_bytes: 0,
            forward_codec,
        });
        idx
    }

    /// Arms a fault schedule: from now on every upload runs through the
    /// reliability layer — stop-and-wait couriers with seeded backoff,
    /// server-side `<CliID, VerCnt>` deduplication, and crash/restart
    /// from the persisted snapshot.
    ///
    /// Each courier's jitter stream is re-seeded from `spec.seed`, so
    /// one seed reproduces the entire run.
    pub fn enable_faults(&mut self, spec: FaultSpec) {
        let seed = spec.seed;
        let hist = self
            .obs
            .registry
            .histogram("retry_backoff_ms", BACKOFF_HELP, &BACKOFF_BUCKETS_MS);
        for (idx, slot) in self.slots.iter_mut().enumerate() {
            slot.courier = Courier::new(RetryPolicy::default(), courier_seed(seed, idx));
            slot.courier.set_backoff_histogram(hist.clone());
        }
        self.fault = Some(FaultTopology::shared(spec));
        self.server
            .save_all(&mut self.stores)
            .expect("MemStore save cannot fail");
    }

    /// Arms one *independent* fault schedule per client: `specs[i]`
    /// drives client `i` with its own seed, RNG, drop/dup/reorder rates,
    /// crash points (keyed on that client's upload attempts), and
    /// disconnect windows. This is the multi-writer topology: two or
    /// more concurrent faulty writers whose decision streams never
    /// perturb each other.
    ///
    /// Each courier keeps the per-client seeding rule of
    /// [`SyncHub::enable_faults`] — client `i`'s jitter stream is
    /// re-seeded from *its own* `specs[i].seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `specs` has exactly one spec per attached client.
    pub fn enable_fault_topology(&mut self, specs: Vec<FaultSpec>) {
        assert_eq!(
            specs.len(),
            self.slots.len(),
            "one FaultSpec per attached client"
        );
        let hist = self
            .obs
            .registry
            .histogram("retry_backoff_ms", BACKOFF_HELP, &BACKOFF_BUCKETS_MS);
        for (idx, slot) in self.slots.iter_mut().enumerate() {
            slot.courier = Courier::new(RetryPolicy::default(), courier_seed(specs[idx].seed, idx));
            slot.courier.set_backoff_histogram(hist.clone());
        }
        self.fault = Some(FaultTopology::per_client(specs));
        self.server
            .save_all(&mut self.stores)
            .expect("MemStore save cannot fail");
    }

    /// What the fault schedules have injected so far, summed over every
    /// plan (`None` until fault injection is armed).
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.fault.as_ref().map(FaultTopology::stats)
    }

    /// The seed reproducing the current fault schedule (the first
    /// plan's seed under a per-client topology — see
    /// [`SyncHub::fault_seeds`] for all of them).
    pub fn fault_seed(&self) -> Option<u64> {
        self.fault.as_ref().map(|t| t.seeds()[0])
    }

    /// Every plan's seed, in client order (one entry when shared).
    pub fn fault_seeds(&self) -> Option<Vec<u64>> {
        self.fault.as_ref().map(FaultTopology::seeds)
    }

    /// Duplicated group copies currently held back for late redelivery.
    /// Always zero after a [`SyncHub::pump`] returns — the pump drains
    /// the defer queue at the end of every round.
    pub fn deferred_len(&self) -> usize {
        self.deferred.len()
    }

    /// Every `(client, path, version)` the server acknowledged.
    pub fn acked(&self) -> &[(usize, String, Version)] {
        &self.acked
    }

    /// Retransmissions client `idx`'s courier performed.
    pub fn retries(&self, idx: usize) -> u64 {
        self.slots[idx].courier.retries()
    }

    /// Groups client `idx` abandoned after exhausting its retry budget.
    pub fn given_up(&self, idx: usize) -> usize {
        self.slots[idx].courier.given_up().len()
    }

    /// Traffic counters of client `idx`'s link.
    pub fn traffic(&self, idx: usize) -> deltacfs_net::TrafficStats {
        self.slots[idx].link.stats()
    }

    /// Number of attached clients.
    pub fn client_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of server shards.
    pub fn shard_count(&self) -> usize {
        self.server.shard_count()
    }

    /// The namespace client `idx` is attached to (`""` for root).
    pub fn namespace(&self, idx: usize) -> &str {
        &self.slots[idx].namespace
    }

    /// The server shard client `idx`'s namespace hashes to.
    pub fn home_shard(&self, idx: usize) -> usize {
        self.slots[idx].home_shard
    }

    /// The file system of client `idx` — the application performs its
    /// operations here.
    pub fn fs_mut(&mut self, idx: usize) -> &mut Vfs {
        &mut self.slots[idx].fs
    }

    /// Read access to client `idx`'s file system.
    pub fn fs(&self, idx: usize) -> &Vfs {
        &self.slots[idx].fs
    }

    /// The engine of client `idx`.
    pub fn client(&self, idx: usize) -> &DeltaCfsClient {
        &self.slots[idx].client
    }

    /// The shared (sharded) cloud server.
    pub fn server(&self) -> &ShardedServer {
        &self.server
    }

    /// Conflicts observed on clients: `(client index, conflict)`.
    pub fn conflicts(&self) -> &[(usize, RemoteConflict)] {
        &self.conflicts
    }

    /// Outcomes of server-side applications (to observe cloud conflicts).
    pub fn server_outcomes(&self) -> &[ApplyOutcome] {
        &self.server_outcomes
    }

    /// Pushes the cloud's current state — filtered to the client's
    /// namespace — to client `idx`: the initial sync a device performs
    /// when it joins an already-populated shared folder. The whole
    /// recovery download streams as one synthetic chunked group, so a
    /// multi-gigabyte folder arrives in bounded frames and commits
    /// atomically on the client.
    pub fn full_sync(&mut self, idx: usize) {
        let now = self.clock.now();
        let ns = self.slots[idx].namespace.clone();
        let mut msgs: Vec<UpdateMsg> = Vec::new();
        for dir in self.server.dirs() {
            if !ns.is_empty() && !path_in_namespace(&ns, &dir) {
                continue;
            }
            msgs.push(UpdateMsg {
                path: dir,
                base: None,
                version: None,
                payload: UpdatePayload::Mkdir,
                txn: None,
                group: None,
            });
        }
        let paths = if ns.is_empty() {
            self.server.paths()
        } else {
            self.server.paths_in_namespace(&ns)
        };
        for path in paths {
            let content = self.server.file(&path).expect("listed path exists");
            msgs.push(UpdateMsg {
                path: path.clone(),
                base: None,
                version: self.server.version(&path),
                payload: UpdatePayload::Full(Payload::from(content)),
                txn: None,
                group: None,
            });
        }
        let gid = self.next_synthetic_group();
        deliver_group_streaming(
            &self.obs,
            now,
            idx,
            &mut self.slots[idx],
            gid,
            &msgs,
            None,
            &mut self.conflicts,
        );
    }

    /// Stamps the next synthetic download-stream group id (full sync,
    /// anti-entropy). `ClientId(0)` is reserved: attached clients are
    /// 1-based, so synthetic streams never collide with upload groups.
    fn next_synthetic_group(&mut self) -> GroupId {
        self.synthetic_groups += 1;
        GroupId {
            client: ClientId(0),
            seq: self.synthetic_groups,
        }
    }

    /// Drains client events, uploads ready nodes, applies them on the
    /// cloud, and forwards applied updates to the subscribed clients.
    pub fn pump(&mut self) {
        self.pump_inner(false);
    }

    /// Flushes everything regardless of upload delays.
    pub fn flush(&mut self) {
        self.pump_inner(true);
        // A second round delivers updates that forwarding produced.
        self.pump_inner(true);
    }

    /// Like [`SyncHub::pump`], but pumps one lane per home shard, with
    /// lanes running concurrently when the host has cores to spare
    /// (capped at `min(shards, available cores)`; a single-core host
    /// runs the lanes inline with zero thread overhead). Requires every
    /// client to be namespaced — a root client shares files across
    /// lanes — and faults to be off; otherwise this falls back to the
    /// sequential pump. Conflicts and outcomes merge in lane order, so
    /// the result is deterministic for a fixed topology.
    pub fn pump_parallel(&mut self) {
        self.pump_parallel_inner(false);
    }

    /// [`SyncHub::flush`] over the parallel lanes.
    pub fn flush_parallel(&mut self) {
        self.pump_parallel_inner(true);
        self.pump_parallel_inner(true);
    }

    fn pump_parallel_inner(&mut self, flush: bool) {
        if self.fault.is_some()
            || self.server.shard_count() <= 1
            || self.slots.iter().any(|s| s.namespace.is_empty())
        {
            return self.pump_inner(flush);
        }
        let now = self.clock.now();
        let shard_count = self.server.shard_count();
        // Move the slots into per-home-shard lanes (index order is
        // preserved within a lane). A namespace's clients all share one
        // home shard, so forwarding never crosses a lane.
        let taken = std::mem::take(&mut self.slots);
        let mut lanes: Vec<Vec<(usize, Slot)>> = (0..shard_count).map(|_| Vec::new()).collect();
        for (idx, slot) in taken.into_iter().enumerate() {
            lanes[slot.home_shard].push((idx, slot));
        }
        let hist = self.cfg.latency_histogram.then(|| self.latency_histogram());
        let threads = std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .min(shard_count);
        let server = &self.server;
        let obs = &self.obs;
        let mut outputs: Vec<LaneOutput> = (0..lanes.len()).map(|_| LaneOutput::default()).collect();
        if threads <= 1 {
            for (lane, out) in lanes.iter_mut().zip(outputs.iter_mut()) {
                *out = run_lane(server, obs, now, lane, flush, hist.as_ref());
            }
        } else {
            let chunk = lanes.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for (lane_chunk, out_chunk) in
                    lanes.chunks_mut(chunk).zip(outputs.chunks_mut(chunk))
                {
                    let hist = hist.clone();
                    scope.spawn(move || {
                        for (lane, out) in lane_chunk.iter_mut().zip(out_chunk.iter_mut()) {
                            *out = run_lane(server, obs, now, lane, flush, hist.as_ref());
                        }
                    });
                }
            });
        }
        // Reassemble the slot vector in original index order.
        let total: usize = lanes.iter().map(Vec::len).sum();
        let mut rebuilt: Vec<Option<Slot>> = (0..total).map(|_| None).collect();
        for lane in lanes {
            for (idx, slot) in lane {
                rebuilt[idx] = Some(slot);
            }
        }
        self.slots = rebuilt
            .into_iter()
            .map(|s| s.expect("every lane returns its slots"))
            .collect();
        // Merge lane outputs deterministically, by lane order.
        for out in outputs {
            self.server_outcomes.extend(out.outcomes);
            self.conflicts.extend(out.conflicts);
        }
    }

    /// Feeds client `idx`'s pending file-system events into its engine
    /// without pumping any uploads.
    ///
    /// The interception layer verifies block checksums and records undo
    /// bytes against the *live* file content, so it assumes each event
    /// is handled before the file changes again. The pump drains events
    /// too, but only at pump time — a driver that batches several
    /// operations against [`SyncHub::fs_mut`] between pumps must call
    /// this after each operation (or each single-file burst), exactly
    /// as `deltacfs_workloads::replay` feeds its engine per op.
    /// Otherwise two writes landing in one checksum block between pumps
    /// are indistinguishable from out-of-band corruption and quarantine
    /// the file.
    pub fn ingest(&mut self, idx: usize) {
        let events = self.slots[idx].fs.drain_events();
        for e in &events {
            let slot = &mut self.slots[idx];
            slot.client.handle_event(e, &slot.fs);
        }
    }

    fn pump_inner(&mut self, flush: bool) {
        let now = self.clock.now();
        for idx in 0..self.slots.len() {
            // 1. Feed pending fs events into the engine.
            self.ingest(idx);
            // 2. Upload ready groups.
            let slot = &mut self.slots[idx];
            let groups = if flush {
                slot.client.flush(&slot.fs)
            } else {
                slot.client.tick(&slot.fs)
            };
            if self.fault.is_some() {
                for group in groups {
                    self.slots[idx].courier.enqueue(group);
                }
                self.drive_courier(idx, now);
            } else {
                for group in groups {
                    let wire: u64 = group.iter().map(UpdateMsg::wire_size).sum();
                    self.obs
                        .tracer
                        .event(now.as_millis(), &actor_name(idx), "wire.upload", || {
                            format!("group of {} msgs, {wire} wire bytes", group.len())
                        });
                    let busy_before = self.slots[idx].link.upload_busy_until();
                    let arrival = self.slots[idx].link.upload(wire, now);
                    let gkey = group
                        .iter()
                        .find_map(|m| m.group)
                        .filter(|_| self.obs.spans.enabled())
                        .map(|g| g.span_key());
                    if let Some(key) = gkey {
                        self.obs.spans.record(
                            key,
                            "link",
                            "wire.upload",
                            now.max(busy_before).as_millis(),
                            arrival.as_millis(),
                            None,
                            || format!("group of {} msgs, {wire} wire bytes", group.len()),
                        );
                    }
                    let outcomes = self.timed_apply(&group);
                    let all_applied = outcomes.iter().all(|o| *o == ApplyOutcome::Applied);
                    self.obs
                        .tracer
                        .event(now.as_millis(), "server", "server.apply", || {
                            format!(
                                "group from {}: {} msgs, all_applied={all_applied}",
                                actor_name(idx),
                                group.len()
                            )
                        });
                    if let Some(key) = gkey {
                        // Zero-width on the simulated clock: apply CPU is
                        // accounted in cost counters, not link time.
                        let at = arrival.as_millis();
                        self.obs.spans.record(key, "server", "server.apply", at, at, None, || {
                            format!("{} outcome(s), all_applied={all_applied}", outcomes.len())
                        });
                    }
                    self.server_outcomes.extend(outcomes);
                    self.slots[idx].link.download(ACK_WIRE_BYTES, now);
                    if all_applied {
                        self.forward(idx, &group, now, &mut None);
                    }
                }
            }
        }
        // Late (reordered) duplicate copies arrive now, after *every*
        // courier ran this round — a deterministic, FIFO redelivery
        // window that can straddle writers. The `<CliID, GroupSeq>`
        // replay index must absorb each copy, versioned or not.
        for group in std::mem::take(&mut self.deferred) {
            self.obs
                .tracer
                .event(now.as_millis(), "server", "server.dedup", || {
                    format!(
                        "late duplicate redelivered: {} msgs on {}",
                        group.len(),
                        group.first().map(|m| m.path.as_str()).unwrap_or("?")
                    )
                });
            self.server.apply_txn_idempotent(&group);
        }
    }

    /// The opt-in wall-clock apply-latency histogram (µs).
    fn latency_histogram(&self) -> Histogram {
        self.obs.registry.histogram(
            "hub_apply_latency_us",
            APPLY_LATENCY_HELP,
            &APPLY_LATENCY_BUCKETS_US,
        )
    }

    /// Applies a group, recording wall-clock latency when the
    /// [`HubConfig::latency_histogram`] knob is on.
    fn timed_apply(&self, group: &[UpdateMsg]) -> Vec<ApplyOutcome> {
        if self.cfg.latency_histogram {
            let hist = self.latency_histogram();
            let t0 = Instant::now();
            let outcomes = self.server.apply_txn(group);
            hist.observe(t0.elapsed().as_micros() as u64);
            outcomes
        } else {
            self.server.apply_txn(group)
        }
    }

    /// Runs client `idx`'s courier until its queue drains or backoff /
    /// disconnection parks it: each attempt goes through the client's
    /// fault plan, and only a surviving acknowledgement advances the
    /// queue.
    fn drive_courier(&mut self, idx: usize, now: SimTime) {
        let mut topo = self.fault.take().expect("fault mode is armed");
        while self.slots[idx].courier.ready(now) {
            let Some(flight) = self.slots[idx].courier.take_attempt(now) else {
                break;
            };
            let attempt = flight.attempts;
            let group = flight.group.clone();
            let wire: u64 = group.iter().map(UpdateMsg::wire_size).sum();
            let actor = actor_name(idx);
            let now_ms = now.as_millis();
            self.obs.tracer.event(now_ms, &actor, "wire.upload", || {
                format!(
                    "group of {} msgs, {wire} wire bytes, attempt {attempt}",
                    group.len()
                )
            });
            let gkey = group
                .iter()
                .find_map(|m| m.group)
                .filter(|_| self.obs.spans.enabled())
                .map(|g| g.span_key());
            let busy_before = self.slots[idx].link.upload_busy_until();
            let (done, verdict) =
                self.slots[idx]
                    .link
                    .upload_faulty(wire, now, idx, topo.plan_for(idx));
            // One span per attempt. An attempt the fault plan kills
            // (dropped on the wire, or a disconnected client) leaves its
            // span open on purpose: the profile shows in-flight work
            // that never completed.
            let attempt_span = gkey.map(|key| {
                self.obs.spans.start(
                    key,
                    "link",
                    "wire.upload",
                    now.max(busy_before).as_millis(),
                    None,
                )
            });
            let done_ms = done.map(|d| d.as_millis()).unwrap_or(now_ms);
            match verdict {
                UploadVerdict::Disconnected => {
                    // The reconnection time is known: park until then.
                    let until = topo
                        .plan_for(idx)
                        .disconnect_until(idx, now)
                        .unwrap_or(now.plus_millis(1));
                    self.obs.tracer.event(now_ms, &actor, "fault.inject", || {
                        format!("disconnected; courier parked until {}ms", until.as_millis())
                    });
                    self.slots[idx].courier.defer_until(until);
                    break;
                }
                UploadVerdict::Dropped => {
                    self.obs.tracer.event(now_ms, &actor, "fault.inject", || {
                        "upload dropped on the wire".to_string()
                    });
                    let delay = self.slots[idx].courier.on_failure(now);
                    self.trace_backoff(idx, now_ms, delay);
                }
                UploadVerdict::CrashBeforeApply => {
                    // The group dies with the server's volatile state; the
                    // restarted server comes back from the per-shard
                    // snapshots and the client retries into it.
                    self.obs.tracer.event(now_ms, "server", "fault.inject", || {
                        "server crash before apply; restored from snapshot".to_string()
                    });
                    if let Some(span) = attempt_span {
                        // The bytes did arrive — the wire span closes; the
                        // missing server.apply is what marks the loss.
                        self.obs.spans.end_detail(span, done_ms, || {
                            format!("attempt {attempt} arrived; server crashed before apply")
                        });
                    }
                    self.server
                        .reload_all(&mut self.stores)
                        .expect("snapshot loads");
                    let delay = self.slots[idx].courier.on_failure(now);
                    self.trace_backoff(idx, now_ms, delay);
                }
                UploadVerdict::Delivered {
                    duplicate,
                    crash_after_apply,
                } => {
                    let (outcomes, was_dup) = self.server.apply_txn_idempotent(&group);
                    let stage = if was_dup { "server.dedup" } else { "server.apply" };
                    self.obs.tracer.event(now_ms, "server", stage, || {
                        if was_dup {
                            format!("replay of group from {actor} absorbed ({} msgs)", group.len())
                        } else {
                            format!("group from {actor} applied ({} msgs)", group.len())
                        }
                    });
                    if let Some(span) = attempt_span {
                        self.obs.spans.end_detail(span, done_ms, || {
                            format!("attempt {attempt}: {wire} wire bytes delivered")
                        });
                    }
                    if !was_dup {
                        if let Some(key) = gkey {
                            // Zero-width: apply CPU lives in cost counters.
                            self.obs.spans.record(
                                key,
                                "server",
                                "server.apply",
                                done_ms,
                                done_ms,
                                None,
                                || format!("{} outcome(s) after {attempt} attempt(s)", outcomes.len()),
                            );
                        }
                    }
                    self.server
                        .save_group(&group, &mut self.stores)
                        .expect("MemStore save");
                    if duplicate {
                        // Every duplicated copy — versioned or namespace-
                        // only — may be held back and redelivered after
                        // newer groups: the `<CliID, GroupSeq>` replay
                        // index recognizes it whenever it shows up.
                        let deferred = topo.plan_for(idx).defer_duplicate();
                        self.obs.tracer.event(now_ms, &actor, "fault.inject", || {
                            if deferred {
                                "upload duplicated; copy held for late redelivery".to_string()
                            } else {
                                "upload duplicated; copy redelivered immediately".to_string()
                            }
                        });
                        if deferred {
                            self.deferred.push(group.clone());
                        } else {
                            self.server.apply_txn_idempotent(&group);
                        }
                    }
                    if crash_after_apply {
                        // Applied and persisted, but the ack died with the
                        // server: the retry must hit the rebuilt
                        // idempotency index of the restarted server.
                        self.obs.tracer.event(now_ms, "server", "fault.inject", || {
                            "server crash after apply; ack lost with it".to_string()
                        });
                        self.server
                            .reload_all(&mut self.stores)
                            .expect("snapshot loads");
                        let delay = self.slots[idx].courier.on_failure(now);
                        self.trace_backoff(idx, now_ms, delay);
                    } else if self.slots[idx]
                        .link
                        .download_faulty(ACK_WIRE_BYTES, now, idx, topo.plan_for(idx))
                        .is_some()
                    {
                        self.obs.tracer.event(now_ms, &actor, "wire.ack", || {
                            format!("group acknowledged after {} attempt(s)", attempt)
                        });
                        self.slots[idx].courier.on_ack();
                        if !was_dup {
                            let all_applied =
                                outcomes.iter().all(|o| *o == ApplyOutcome::Applied);
                            for (msg, out) in group.iter().zip(&outcomes) {
                                if *out == ApplyOutcome::Applied {
                                    if let Some(v) = msg.version {
                                        self.acked.push((idx, msg.path.clone(), v));
                                    }
                                }
                            }
                            self.server_outcomes.extend(outcomes);
                            if all_applied {
                                self.forward(idx, &group, now, &mut Some(&mut topo));
                            }
                        }
                    } else {
                        // Ack lost: the client cannot tell this from a
                        // dropped upload and retransmits.
                        self.obs.tracer.event(now_ms, &actor, "fault.inject", || {
                            "ack lost on the downlink".to_string()
                        });
                        let delay = self.slots[idx].courier.on_failure(now);
                        self.trace_backoff(idx, now_ms, delay);
                    }
                }
            }
        }
        self.fault = Some(topo);
    }

    /// Records the courier's retransmission decision in the trace.
    fn trace_backoff(&self, idx: usize, now_ms: u64, delay: Option<u64>) {
        self.obs
            .tracer
            .event(now_ms, &actor_name(idx), "retry.backoff", || match delay {
                Some(d) => format!("retransmission armed in {d}ms"),
                None => "retry budget exhausted: group parked".to_string(),
            });
    }

    /// The clients a group from `from` fans out to, ascending: the
    /// uploader's namespace subscribers plus every root client. A root
    /// uploader fans out to everyone (per-message visibility still
    /// filters what a namespaced peer receives).
    fn receivers_for(&self, from: usize) -> Vec<usize> {
        let ns = &self.slots[from].namespace;
        if ns.is_empty() {
            return (0..self.slots.len()).filter(|&i| i != from).collect();
        }
        let mut out: Vec<usize> = self
            .root_subscribers
            .iter()
            .chain(self.subscribers.get(ns).into_iter().flatten())
            .copied()
            .filter(|&i| i != from)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Sends `group` to every subscribed client except `from` — the same
    /// incremental data, no recomputation (paper §III-D), one batch per
    /// peer. In fault mode each forwarded message can be lost on the
    /// *receiving peer's* downlink, as decided by that peer's own fault
    /// plan.
    fn forward(
        &mut self,
        from: usize,
        group: &[UpdateMsg],
        now: SimTime,
        fault: &mut Option<&mut FaultTopology>,
    ) {
        for idx in self.receivers_for(from) {
            forward_group_to_peer(
                &self.server,
                &self.obs,
                now,
                from,
                idx,
                &mut self.slots[idx],
                group,
                fault,
                &mut self.conflicts,
            );
        }
    }

    /// Pumps and advances the clock until every courier drains (or
    /// `max_ms` of simulated time passes), then runs one anti-entropy
    /// pass that reconciles every client with the server — healing gaps
    /// left by forwarded updates that were lost on peer downlinks.
    ///
    /// Returns `true` when all couriers drained without giving up.
    pub fn settle(&mut self, max_ms: u64) -> bool {
        let start = self.clock.now();
        loop {
            self.pump_inner(true);
            let idle = self.slots.iter().all(|s| s.courier.is_idle());
            if idle || self.clock.now().since(start) > max_ms {
                break;
            }
            self.clock.advance(250);
        }
        let drained = self.slots.iter().all(|s| s.courier.is_idle())
            && self.slots.iter().all(|s| s.courier.given_up().is_empty());

        // Anti-entropy: the server's state is authoritative; push every
        // divergence down as full content (local conflict copies are
        // per-client artifacts and stay put). A namespaced client only
        // reconciles its own subtree.
        let now = self.clock.now();
        for idx in 0..self.slots.len() {
            let ns = self.slots[idx].namespace.clone();
            // Directories first: a dropped Mkdir forward would otherwise
            // leave every file reconciliation under it failing for want
            // of a parent.
            for dir in self.server.dirs() {
                if !ns.is_empty() && !path_in_namespace(&ns, &dir) {
                    continue;
                }
                if self.slots[idx].fs.exists(&dir) {
                    continue;
                }
                let msg = UpdateMsg {
                    path: dir,
                    base: None,
                    version: None,
                    payload: UpdatePayload::Mkdir,
                    txn: None,
                    group: None,
                };
                let slot = &mut self.slots[idx];
                slot.client.apply_remote(&msg, &mut slot.fs);
            }
            let paths = if ns.is_empty() {
                self.server.paths()
            } else {
                self.server.paths_in_namespace(&ns)
            };
            let mut repairs: Vec<UpdateMsg> = Vec::new();
            for path in paths {
                let server_content = self.server.file(&path).expect("listed path exists");
                let local = self.slots[idx].fs.peek_all(&path).ok();
                if local.as_deref() == Some(&server_content[..]) {
                    continue;
                }
                repairs.push(UpdateMsg {
                    path: path.clone(),
                    base: None,
                    version: self.server.version(&path),
                    payload: UpdatePayload::Full(Payload::from(server_content)),
                    txn: None,
                    group: None,
                });
            }
            if !repairs.is_empty() {
                // One synthetic chunked stream per client: the same
                // bounded download framing the forward path uses, so
                // anti-entropy of a large folder never materializes as
                // one whole-group link shot.
                let gid = self.next_synthetic_group();
                deliver_group_streaming(
                    &self.obs,
                    now,
                    idx,
                    &mut self.slots[idx],
                    gid,
                    &repairs,
                    None,
                    &mut self.conflicts,
                );
            }
            // Files the server does not have (e.g. an unlink whose
            // forward was lost) disappear locally too.
            let local_paths = self.slots[idx].fs.walk_files("/").unwrap_or_default();
            for path in local_paths {
                let path = path.to_string();
                if self.server.file(&path).is_none() && !path.contains(".conflict-") {
                    let msg = UpdateMsg {
                        path,
                        base: None,
                        version: None,
                        payload: UpdatePayload::Unlink,
                        txn: None,
                        group: None,
                    };
                    let slot = &mut self.slots[idx];
                    slot.client.apply_remote(&msg, &mut slot.fs);
                }
            }
        }
        drained
    }

    /// Absorbs every component's counters into the registry and returns
    /// a frozen, name-sorted snapshot (export via
    /// [`Snapshot::to_json`] / [`Snapshot::to_prometheus`]):
    ///
    /// * per-client link traffic (`traffic_*`), VFS IO (`io_*`), and
    ///   delta-engine cost (`delta_cost_*`), each labeled
    ///   `client="<n>"`, plus courier retry counters;
    /// * server-side apply cost (`server_cost_*`), the idempotency
    ///   index's `server_duplicates_ignored`, and
    ///   `server_cross_shard_groups`;
    /// * per-shard `shard_queue_depth` / `shard_files` gauges labeled
    ///   `shard="<k>"`;
    /// * when fault injection is armed, the per-kind `fault_*` injection
    ///   counters and their `fault_injections_fired` total;
    /// * the `retry_backoff_ms` histogram and anything else components
    ///   recorded into the shared registry along the way.
    pub fn export_metrics(&self) -> Snapshot {
        let reg = &self.obs.registry;
        let mut queued = 0;
        let mut shard_queue = vec![0i64; self.server.shard_count()];
        for (idx, slot) in self.slots.iter().enumerate() {
            let id = format!("{}", idx + 1);
            let label = Some(("client", id.as_str()));
            slot.link.stats().export_counters(reg, "traffic", label);
            slot.fs.stats().export_counters(reg, "io", label);
            slot.client.cost().export_counters(reg, "delta_cost", label);
            reg.counter_labeled(
                "retry_retransmissions",
                "retransmissions the courier performed",
                label,
            )
            .set(slot.courier.retries());
            reg.counter_labeled(
                "retry_groups_given_up",
                "groups parked after exhausting the retry budget",
                label,
            )
            .set(slot.courier.given_up().len() as u64);
            reg.counter_labeled(
                "forward_chunks",
                "chunk frames streamed to this client (forward/download direction)",
                label,
            )
            .set(slot.forward_chunks);
            reg.counter_labeled(
                "forward_groups",
                "chunk-streamed groups committed on this client",
                label,
            )
            .set(slot.forward_groups);
            reg.gauge_labeled(
                "forward_max_frame_bytes",
                "largest single chunk frame on this client's downlink",
                label,
            )
            .set(slot.forward_max_frame_bytes as i64);
            reg.gauge_labeled(
                "forward_staged_groups",
                "forwarded groups staged but not yet committed",
                label,
            )
            .set(slot.forward.staged_groups() as i64);
            let hstats = slot.client.hierarchy_stats();
            reg.counter_labeled(
                "hierarchy_levels_matched",
                "spans the hierarchical matcher accepted wholesale (prescan + shingle levels)",
                label,
            )
            .set(hstats.levels_matched());
            reg.counter_labeled(
                "hierarchy_bytes_skipped",
                "new-file bytes fast-forwarded inside wholesale-matched spans",
                label,
            )
            .set(hstats.bytes_skipped);
            reg.counter_labeled(
                "hierarchy_leaf_walk_bytes",
                "new-file bytes left to the byte-level leaf walk",
                label,
            )
            .set(hstats.leaf_walk_bytes);
            queued += slot.client.queued_nodes() as i64;
            shard_queue[slot.home_shard] += slot.client.queued_nodes() as i64;
        }
        reg.gauge("sync_queue_depth", "nodes waiting in sync queues")
            .set(queued);
        for (s, depth) in shard_queue.iter().enumerate() {
            let id = format!("{s}");
            let label = Some(("shard", id.as_str()));
            reg.gauge_labeled(
                "shard_queue_depth",
                "sync-queue nodes waiting on clients homed on this shard",
                label,
            )
            .set(*depth);
            reg.gauge_labeled("shard_files", "files currently stored on this shard", label)
                .set(self.server.shard_file_count(s) as i64);
        }
        self.server.cost().export_counters(reg, "server_cost", None);
        reg.counter(
            "server_duplicates_ignored",
            "uploads the idempotency index absorbed",
        )
        .set(self.server.duplicates_ignored());
        reg.counter(
            "server_cross_shard_groups",
            "transaction groups dispatched through the cross-shard path",
        )
        .set(self.server.cross_shard_groups());
        if let Some(stats) = self.fault_stats() {
            stats.export_counters(reg, "fault", None);
            reg.counter(
                "fault_injections_fired",
                "fault injections that actually fired",
            )
            .set(stats.total_fired());
        }
        reg.counter(
            "trace_events_dropped",
            "flight-recorder events dropped because the ring was full",
        )
        .set(self.obs.tracer.dropped());
        if !self.obs.spans.is_empty() {
            self.profiler().export(reg);
        }
        reg.snapshot()
    }

    /// A critical-path profiler over the span table recorded so far
    /// (requires [`HubConfig::with_profiling`] / an
    /// [`Obs::with_profiling`] bundle — otherwise the table is empty).
    pub fn profiler(&self) -> Profiler {
        Profiler::new(self.obs.spans.records())
    }

    /// Simulates a crash of client `idx`: the volatile sync queue and
    /// in-flight retransmissions are lost, then the client rebuilds its
    /// upload state from the durable undo log
    /// (see [`DeltaCfsClient::restart_from_undo_log`]).
    ///
    /// Returns the paths the restarted client re-queued.
    pub fn crash_and_restart_client(&mut self, idx: usize) -> Vec<String> {
        // Interception is synchronous: operations that completed before
        // the crash already reached the engine (and its undo logs).
        let events = self.slots[idx].fs.drain_events();
        for e in &events {
            let slot = &mut self.slots[idx];
            slot.client.handle_event(e, &slot.fs);
        }
        self.slots[idx].courier.clear();
        // In-flight forwarded chunk streams die with the process: a
        // staged (uncommitted) group is volatile by design, so nothing
        // half-applied can survive the restart. Settle re-converges the
        // client through anti-entropy.
        self.slots[idx].forward.clear();
        let server = &self.server;
        let slot = &mut self.slots[idx];
        slot.client
            .restart_from_undo_log(&slot.fs, |p| server.version(p))
    }

    /// Forwarded groups currently staged — received in part, not yet
    /// committed — on client `idx`. Non-zero after a forward stream was
    /// cut mid-group by a lost downlink.
    pub fn forward_stage_depth(&self, idx: usize) -> usize {
        self.slots[idx].forward.staged_groups()
    }
}

/// What one pump lane produced, merged into the hub in lane order.
#[derive(Default)]
struct LaneOutput {
    outcomes: Vec<ApplyOutcome>,
    conflicts: Vec<(usize, RemoteConflict)>,
}

/// One parallel-pump lane: the slots homed on one shard, pumped in index
/// order exactly like the sequential path (events → tick/flush → upload →
/// apply → forward to same-namespace lane peers).
fn run_lane(
    server: &ShardedServer,
    obs: &Obs,
    now: SimTime,
    lane: &mut [(usize, Slot)],
    flush: bool,
    hist: Option<&Histogram>,
) -> LaneOutput {
    let mut out = LaneOutput::default();
    for i in 0..lane.len() {
        let groups = {
            let (_, slot) = &mut lane[i];
            let events = slot.fs.drain_events();
            for e in &events {
                slot.client.handle_event(e, &slot.fs);
            }
            if flush {
                slot.client.flush(&slot.fs)
            } else {
                slot.client.tick(&slot.fs)
            }
        };
        let from = lane[i].0;
        let ns = lane[i].1.namespace.clone();
        for group in groups {
            let wire: u64 = group.iter().map(UpdateMsg::wire_size).sum();
            obs.tracer
                .event(now.as_millis(), &actor_name(from), "wire.upload", || {
                    format!("group of {} msgs, {wire} wire bytes", group.len())
                });
            let busy_before = lane[i].1.link.upload_busy_until();
            let arrival = lane[i].1.link.upload(wire, now);
            let gkey = group
                .iter()
                .find_map(|m| m.group)
                .filter(|_| obs.spans.enabled())
                .map(|g| g.span_key());
            if let Some(key) = gkey {
                obs.spans.record(
                    key,
                    "link",
                    "wire.upload",
                    now.max(busy_before).as_millis(),
                    arrival.as_millis(),
                    None,
                    || format!("group of {} msgs, {wire} wire bytes", group.len()),
                );
            }
            let t0 = hist.map(|_| Instant::now());
            let outcomes = server.apply_txn(&group);
            if let (Some(h), Some(t0)) = (hist, t0) {
                h.observe(t0.elapsed().as_micros() as u64);
            }
            let all_applied = outcomes.iter().all(|o| *o == ApplyOutcome::Applied);
            obs.tracer
                .event(now.as_millis(), "server", "server.apply", || {
                    format!(
                        "group from {}: {} msgs, all_applied={all_applied}",
                        actor_name(from),
                        group.len()
                    )
                });
            if let Some(key) = gkey {
                let at = arrival.as_millis();
                obs.spans.record(key, "server", "server.apply", at, at, None, || {
                    format!("{} outcome(s), all_applied={all_applied}", outcomes.len())
                });
            }
            out.outcomes.extend(outcomes);
            lane[i].1.link.download(ACK_WIRE_BYTES, now);
            if all_applied {
                for (j, (peer_idx, peer)) in lane.iter_mut().enumerate() {
                    if j == i || peer.namespace != ns {
                        continue;
                    }
                    forward_group_to_peer(
                        server,
                        obs,
                        now,
                        from,
                        *peer_idx,
                        peer,
                        &group,
                        &mut None,
                        &mut out.conflicts,
                    );
                }
            }
        }
    }
    out
}

/// Delivers one group to one peer — the per-peer forward batch shared by
/// the sequential pump and the parallel lanes. Messages outside the
/// peer's namespace are filtered; the rest keep the per-message
/// divergence check (a diverged peer gets materialized Full content, an
/// in-sync peer the verbatim incremental data), resolved up front by
/// [`plan_forward_group`] so the whole batch streams through the
/// chunked download pipeline and commits atomically on the peer.
#[allow(clippy::too_many_arguments)]
fn forward_group_to_peer(
    server: &ShardedServer,
    obs: &Obs,
    now: SimTime,
    from: usize,
    peer_idx: usize,
    peer: &mut Slot,
    group: &[UpdateMsg],
    fault: &mut Option<&mut FaultTopology>,
    conflicts: &mut Vec<(usize, RemoteConflict)>,
) {
    let planned = plan_forward_group(server, peer, group);
    if planned.is_empty() {
        return;
    }
    let gid = group
        .iter()
        .find_map(|m| m.group)
        .expect("upload groups are stamped");
    obs.tracer
        .event(now.as_millis(), "server", "wire.forward", || {
            format!(
                "forwarding group of {} msgs from {} to {}",
                planned.len(),
                actor_name(from),
                actor_name(peer_idx)
            )
        });
    let plan = fault.as_mut().map(|topo| topo.plan_for(peer_idx));
    deliver_group_streaming(obs, now, peer_idx, peer, gid, &planned, plan, conflicts);
}

/// Plans what one peer receives for a forwarded group: messages outside
/// the peer's namespace are dropped, and each survivor's divergence
/// check resolves against a virtual version view that tracks how the
/// *earlier planned messages* will move the peer's version table once
/// the stream commits — the same decisions the old message-at-a-time
/// delivery made interleaved with application, now computable up front.
///
/// The paper's key multi-client property (§III-D): "the same
/// incremental data can be directly sent to client B without additional
/// computation". A delta is forwarded verbatim when the peer's base
/// matches (it applies it to its own copy of the base path); only a
/// diverged peer — e.g. one holding unsynced local edits, which is
/// about to conflict anyway, or one that missed an earlier forward on a
/// lost downlink — receives the materialized content, which also heals
/// the earlier gap. An ops batch likewise assumes the peer holds the
/// base the uploader built on; a stale peer would otherwise silently
/// apply the ops to the wrong content.
fn plan_forward_group(server: &ShardedServer, peer: &Slot, group: &[UpdateMsg]) -> Vec<UpdateMsg> {
    // `None` entries are tombstones (unlinked / renamed away); absent
    // paths fall back to the peer's real version table.
    let mut view: HashMap<String, Option<Version>> = HashMap::new();
    let ver = |view: &HashMap<String, Option<Version>>, path: &str| -> Option<Version> {
        match view.get(path) {
            Some(v) => *v,
            None => peer.client.version_of(path),
        }
    };
    let mut planned = Vec::new();
    for msg in group {
        if !msg_visible(&peer.namespace, msg) {
            continue;
        }
        let peer_diverged = match &msg.payload {
            UpdatePayload::Delta { base_path, .. } => ver(&view, base_path) != msg.base,
            UpdatePayload::Ops(_) => ver(&view, &msg.path) != msg.base,
            _ => false,
        };
        let forwarded = if peer_diverged {
            let content = server
                .file(&msg.path)
                .map(Payload::from)
                .unwrap_or_default();
            UpdateMsg {
                payload: UpdatePayload::Full(content),
                ..msg.clone()
            }
        } else {
            msg.clone()
        };
        // Mirror `apply_remote`'s version bookkeeping exactly: the
        // payload moves versions (rename rekeys src→dst when src had
        // one, unlink removes), then a versioned message stamps
        // `msg.path` — the rename *source*, matching the client.
        match &forwarded.payload {
            UpdatePayload::Rename { to } => {
                let moved = ver(&view, &forwarded.path);
                view.insert(forwarded.path.clone(), None);
                if moved.is_some() {
                    view.insert(to.clone(), moved);
                }
            }
            UpdatePayload::Unlink => {
                view.insert(forwarded.path.clone(), None);
            }
            _ => {}
        }
        if let Some(v) = forwarded.version {
            view.insert(forwarded.path.clone(), Some(v));
        }
        planned.push(forwarded);
    }
    planned
}

/// Streams one planned group to one receiving client as bounded chunk
/// frames — the forward/download mirror of the upload pipeline. Each
/// frame occupies the peer's downlink as a part
/// ([`Link::download_part`]), the per-message latency settles once per
/// group ([`Link::download_end_msg`]), and the peer stages frames in
/// its [`ChunkStager`], committing the whole group atomically when the
/// final frame lands (idempotently: a group id the peer has already
/// committed is not applied twice).
///
/// In fault mode each message draws its loss verdict from the peer's
/// own plan exactly as the unframed path did — one draw per message, in
/// message order, draws continuing after a loss so pinned-seed
/// schedules are unchanged — but a single lost message now cuts the
/// stream: the remaining frames still occupy the wire (the server did
/// transmit them), nothing commits, and the partially staged group sits
/// in the peer's stager until a fresh stream resets it or a client
/// crash drops it. The old path could apply the tail of a group whose
/// head was lost; whole-group atomicity removes that hazard class.
#[allow(clippy::too_many_arguments)]
fn deliver_group_streaming(
    obs: &Obs,
    now: SimTime,
    peer_idx: usize,
    peer: &mut Slot,
    gid: GroupId,
    msgs: &[UpdateMsg],
    mut plan: Option<&mut FaultPlan>,
    conflicts: &mut Vec<(usize, RemoteConflict)>,
) {
    if msgs.is_empty() {
        return;
    }
    // Restamp with the stream's group id so every frame keys one stage
    // (synthetic streams — full sync, anti-entropy — carry no group id
    // of their own).
    let stamped: Vec<UpdateMsg> = msgs
        .iter()
        .map(|m| UpdateMsg {
            group: Some(gid),
            ..m.clone()
        })
        .collect();
    let budget = peer.client.config().chunk_budget;
    let mut lost = false;
    let mut committed: Option<Vec<UpdateMsg>> = None;
    // The forward span covers the whole download-direction delivery —
    // from when the peer's downlink picks the stream up to the commit
    // of its final frame. A stream a fault plan cuts leaves the span
    // open on purpose: the profile shows the delivery that never
    // committed.
    let fwd_span = if obs.spans.enabled() {
        Some(obs.spans.start(
            gid.span_key(),
            &actor_name(peer_idx),
            "forward",
            now.max(peer.link.download_busy_until()).as_millis(),
            None,
        ))
    } else {
        None
    };
    let Slot {
        link,
        forward,
        forward_chunks,
        forward_max_frame_bytes,
        forward_codec,
        ..
    } = peer;
    frame_group(&stamped, budget, |frame| {
        let frame = forward_codec.encode_frame(frame, now.as_millis());
        if frame.chunk_idx == 0 {
            // One loss draw per message, in message order — the same
            // RNG consumption as the old per-message delivery, so
            // pinned fault seeds fire identical schedules.
            if let Some(plan) = plan.as_deref_mut() {
                if plan.download_lost(peer_idx, now) {
                    lost = true;
                }
            }
        }
        link.download_part_codec(frame.accounted, frame.compressed_from(), now);
        *forward_chunks += 1;
        *forward_max_frame_bytes = (*forward_max_frame_bytes).max(frame.byte_len());
        obs.tracer
            .event(now.as_millis(), "server", "wire.forward.chunk", || {
                format!(
                    "msg {} chunk {}{} to {}: {} bytes",
                    frame.msg_idx,
                    frame.chunk_idx,
                    if frame.last_in_group { " [group end]" } else { "" },
                    actor_name(peer_idx),
                    frame.byte_len(),
                )
            });
        if !lost {
            if let Some(group_msgs) = forward
                .accept(&frame)
                .expect("in-process chunk stream cannot be malformed")
            {
                committed = Some(group_msgs);
            }
        }
    });
    let delivered = link.download_end_msg(now);
    if committed.is_some() {
        if let Some(span) = fwd_span {
            let n = stamped.len();
            obs.spans.end_detail(span, delivered.as_millis(), || {
                format!("group of {n} msgs committed on {}", actor_name(peer_idx))
            });
        }
    }
    let Some(group_msgs) = committed else {
        return;
    };
    peer.forward_groups += 1;
    if !peer.forward_seen.insert(gid) {
        // Duplicate stream: the commit record absorbs it, exactly like
        // the server's replay index on the upload direction.
        return;
    }
    for msg in &group_msgs {
        if let Some(conflict) = peer.client.apply_remote(msg, &mut peer.fs) {
            conflicts.push((peer_idx, conflict));
        }
    }
}

/// Whether `path` lies inside namespace `ns` (the `/<ns>` subtree).
fn path_in_namespace(ns: &str, path: &str) -> bool {
    path.strip_prefix('/')
        .and_then(|rest| rest.strip_prefix(ns))
        .is_some_and(|rest| rest.is_empty() || rest.starts_with('/'))
}

/// Whether a forwarded message is visible to a client in namespace `ns`
/// (root sees everything; otherwise the message must touch the
/// namespace's subtree).
fn msg_visible(ns: &str, msg: &UpdateMsg) -> bool {
    if ns.is_empty() {
        return true;
    }
    path_in_namespace(ns, &msg.path)
        || match &msg.payload {
            UpdatePayload::Rename { to } | UpdatePayload::Link { to } => path_in_namespace(ns, to),
            _ => false,
        }
}

/// Mixes the fault seed and the slot index into one courier seed.
fn courier_seed(fault_seed: u64, idx: usize) -> u64 {
    fault_seed ^ (idx as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Trace actor name of the client in slot `idx` — matches the engine's
/// own `client-<CliID>` naming.
fn actor_name(idx: usize) -> String {
    format!("client-{}", idx + 1)
}

const BACKOFF_HELP: &str = "courier retransmission backoff delays (ms)";

const APPLY_LATENCY_HELP: &str = "server-side group apply latency (µs)";

/// Bucket bounds for `hub_apply_latency_us` (µs).
const APPLY_LATENCY_BUCKETS_US: [u64; 12] = [
    10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
];

#[cfg(test)]
mod tests {
    use super::*;

    fn hub_with_two_clients() -> (SyncHub, SimClock) {
        let clock = SimClock::new();
        let mut hub = SyncHub::new(clock.clone());
        hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
        hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
        (hub, clock)
    }

    #[test]
    fn update_propagates_to_peer() {
        let (mut hub, clock) = hub_with_two_clients();
        hub.fs_mut(0).create("/shared.txt").unwrap();
        hub.fs_mut(0)
            .write("/shared.txt", 0, b"from client 0")
            .unwrap();
        hub.pump(); // ingest events
        clock.advance(4000);
        hub.pump(); // upload aged nodes
        assert_eq!(
            hub.server().file("/shared.txt").as_deref(),
            Some(&b"from client 0"[..])
        );
        assert_eq!(hub.fs(1).peek_all("/shared.txt").unwrap(), b"from client 0");
        assert!(hub.conflicts().is_empty());
    }

    #[test]
    fn incremental_edit_propagates() {
        let (mut hub, clock) = hub_with_two_clients();
        hub.fs_mut(0).create("/f").unwrap();
        hub.fs_mut(0).write("/f", 0, b"0123456789").unwrap();
        hub.pump(); // ingest events
        clock.advance(4000);
        hub.pump(); // upload aged nodes
        hub.fs_mut(0).write("/f", 2, b"XY").unwrap();
        hub.pump(); // ingest events
        clock.advance(4000);
        hub.pump(); // upload aged nodes
        assert_eq!(hub.fs(1).peek_all("/f").unwrap(), b"01XY456789");
    }

    #[test]
    fn concurrent_edit_conflicts_first_write_wins() {
        let (mut hub, clock) = hub_with_two_clients();
        hub.fs_mut(0).create("/doc").unwrap();
        hub.fs_mut(0).write("/doc", 0, b"base").unwrap();
        hub.pump(); // ingest events
        clock.advance(4000);
        hub.pump(); // upload aged nodes
                    // Both clients edit concurrently.
        hub.fs_mut(0).write("/doc", 0, b"AAAA").unwrap();
        hub.fs_mut(1).write("/doc", 0, b"BBBB").unwrap();
        hub.pump(); // ingest events
        clock.advance(4000);
        hub.pump(); // upload aged nodes
        hub.flush();
        // Client 0 pumped first: its version is the cloud's latest.
        assert_eq!(hub.server().file("/doc").as_deref(), Some(&b"AAAA"[..]));
        // Client 1's edit survived somewhere (conflict copy on cloud or
        // local conflict file).
        let cloud_conflict = hub.server().paths().iter().any(|p| p.contains(".conflict"));
        let local_conflict = !hub.conflicts().is_empty();
        assert!(cloud_conflict || local_conflict);
    }

    #[test]
    fn three_clients_all_converge() {
        let clock = SimClock::new();
        let mut hub = SyncHub::new(clock.clone());
        for _ in 0..3 {
            hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
        }
        hub.fs_mut(2).create("/from2").unwrap();
        hub.fs_mut(2).write("/from2", 0, b"hello all").unwrap();
        hub.pump(); // ingest events
        clock.advance(4000);
        hub.pump(); // upload aged nodes
        for idx in 0..3 {
            assert_eq!(
                hub.fs(idx).peek_all("/from2").unwrap(),
                b"hello all",
                "client {idx}"
            );
        }
    }

    #[test]
    fn deltas_forward_as_deltas_not_full_content() {
        // §III-D: the peer receives the same incremental data the cloud
        // did — a transactional save of a 100 KB file must not push
        // 100 KB to the peer.
        let (mut hub, clock) = hub_with_two_clients();
        hub.fs_mut(0).create("/doc").unwrap();
        hub.fs_mut(0).write("/doc", 0, &vec![4u8; 100_000]).unwrap();
        hub.pump();
        clock.advance(4000);
        hub.pump();
        let peer_down_before = {
            // Reach through the slot's link stats via the report of a
            // fresh pump: measure through fs state instead.
            hub.slots[1].link.stats().bytes_down
        };
        // Word-style save on client 0, one byte changed.
        let mut doc = hub.fs(0).peek_all("/doc").unwrap();
        doc[50_000] = 5;
        hub.fs_mut(0).rename("/doc", "/doc.bak").unwrap();
        hub.pump();
        hub.fs_mut(0).create("/doc.tmp").unwrap();
        hub.pump();
        hub.fs_mut(0).write("/doc.tmp", 0, &doc).unwrap();
        hub.pump();
        hub.fs_mut(0).close_path("/doc.tmp").unwrap();
        hub.pump();
        hub.fs_mut(0).rename("/doc.tmp", "/doc").unwrap();
        hub.pump();
        hub.fs_mut(0).unlink("/doc.bak").unwrap();
        hub.pump();
        clock.advance(4000);
        hub.pump();
        hub.flush();
        // The peer converged...
        assert_eq!(hub.fs(1).peek_all("/doc").unwrap(), doc);
        // ...from an incremental download, not a re-materialized file.
        let peer_down = hub.slots[1].link.stats().bytes_down - peer_down_before;
        assert!(
            peer_down < 20_000,
            "peer downloaded {peer_down} bytes for a 1-byte edit"
        );
    }

    #[test]
    fn late_joining_device_catches_up_via_full_sync() {
        let clock = SimClock::new();
        let mut hub = SyncHub::new(clock.clone());
        let first = hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
        hub.fs_mut(first).mkdir_all("/photos").unwrap();
        hub.fs_mut(first).create("/photos/cat.jpg").unwrap();
        hub.fs_mut(first)
            .write("/photos/cat.jpg", 0, &vec![9u8; 10_000])
            .unwrap();
        hub.pump();
        clock.advance(4_000);
        hub.pump();

        // A new phone joins later and performs the initial sync.
        let phone = hub.add_client(DeltaCfsConfig::new(), LinkSpec::mobile());
        hub.full_sync(phone);
        assert_eq!(
            hub.fs(phone).peek_all("/photos/cat.jpg").unwrap(),
            vec![9u8; 10_000]
        );
        // And from then on participates in incremental sync.
        hub.fs_mut(first)
            .write("/photos/cat.jpg", 0, b"update")
            .unwrap();
        hub.pump();
        clock.advance(4_000);
        hub.pump();
        assert_eq!(
            &hub.fs(phone).peek_all("/photos/cat.jpg").unwrap()[..6],
            b"update"
        );
    }

    #[test]
    fn rename_propagates() {
        let (mut hub, clock) = hub_with_two_clients();
        hub.fs_mut(0).create("/old").unwrap();
        hub.fs_mut(0).write("/old", 0, b"x").unwrap();
        hub.pump(); // ingest events
        clock.advance(4000);
        hub.pump(); // upload aged nodes
        hub.fs_mut(0).rename("/old", "/new").unwrap();
        hub.pump(); // ingest events
        clock.advance(4000);
        hub.pump(); // upload aged nodes
        assert!(hub.fs(1).exists("/new"));
        assert!(!hub.fs(1).exists("/old"));
    }

    #[test]
    fn namespaced_tenants_are_isolated() {
        let clock = SimClock::new();
        let mut hub = SyncHub::with_shards(clock.clone(), 4);
        let a1 = hub.add_client_in("t1", DeltaCfsConfig::new(), LinkSpec::pc());
        let a2 = hub.add_client_in("t1", DeltaCfsConfig::new(), LinkSpec::pc());
        let b1 = hub.add_client_in("t2", DeltaCfsConfig::new(), LinkSpec::pc());
        hub.fs_mut(a1).mkdir_all("/t1").unwrap();
        hub.fs_mut(a1).create("/t1/doc").unwrap();
        hub.fs_mut(a1).write("/t1/doc", 0, b"tenant one").unwrap();
        hub.pump();
        clock.advance(4000);
        hub.pump();
        // The same-namespace peer converged; the other tenant saw nothing.
        assert_eq!(hub.fs(a2).peek_all("/t1/doc").unwrap(), b"tenant one");
        assert!(!hub.fs(b1).exists("/t1/doc"));
        assert_eq!(hub.traffic(b1).bytes_down, 0, "no fan-out to tenant 2");
    }

    #[test]
    fn parallel_pump_matches_sequential_for_namespaced_tenants() {
        let mk = |parallel: bool| {
            let clock = SimClock::new();
            let mut hub = SyncHub::with_shards(clock.clone(), 4);
            let mut idxs = Vec::new();
            for t in 0..6 {
                let ns = format!("t{t}");
                idxs.push(hub.add_client_in(&ns, DeltaCfsConfig::new(), LinkSpec::pc()));
                idxs.push(hub.add_client_in(&ns, DeltaCfsConfig::new(), LinkSpec::pc()));
            }
            for t in 0..6 {
                let writer = idxs[t * 2];
                let dir = format!("/t{t}");
                let path = format!("/t{t}/file");
                hub.fs_mut(writer).mkdir_all(&dir).unwrap();
                hub.fs_mut(writer).create(&path).unwrap();
                hub.fs_mut(writer)
                    .write(&path, 0, format!("payload-{t}").as_bytes())
                    .unwrap();
            }
            if parallel {
                hub.pump_parallel();
                clock.advance(4000);
                hub.pump_parallel();
            } else {
                hub.pump();
                clock.advance(4000);
                hub.pump();
            }
            hub
        };
        let seq = mk(false);
        let par = mk(true);
        assert_eq!(seq.server().paths(), par.server().paths());
        for path in seq.server().paths() {
            assert_eq!(seq.server().file(&path), par.server().file(&path), "{path}");
        }
        for idx in 0..seq.client_count() {
            assert_eq!(
                seq.traffic(idx).bytes_down,
                par.traffic(idx).bytes_down,
                "client {idx} downstream traffic"
            );
        }
    }
}
